#include "sql/fingerprint.h"

#include <cctype>

#include "common/strings.h"
#include "sql/block_scan.h"
#include "sql/lexer.h"
#include "sql/lexer_detail.h"

namespace sqlcheck::sql {

namespace {

/// Appends `text` wrapped in `quote` with embedded quotes doubled, so quoted
/// payloads can never collide with the token separator or with each other
/// (e.g. the one string `a' 'b` renders as 'a'' ''b', distinct from the two
/// strings 'a' 'b').
void AppendQuoted(std::string* out, char quote, std::string_view text) {
  out->push_back(quote);
  for (char c : text) {
    if (c == quote) out->push_back(quote);
    out->push_back(c);
  }
  out->push_back(quote);
}

using lexer_detail::IsDigit;
using lexer_detail::IsIdentChar;
using lexer_detail::IsIdentStart;
using lexer_detail::LexClass;

char LowerChar(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

/// Streaming canonicalizer: one allocation-free pass over the raw SQL that
/// produces the same canonical string as CanonicalizeTokens(Lex(sql)) without
/// materializing a token vector. The dedup cache canonicalizes every
/// statement in the workload, so this path is deliberately tuned; a lockstep
/// test (FingerprintTest.StreamingCanonicalizerMatchesTokenPath) keeps it in
/// agreement with the lexer.
class StreamingCanonicalizer {
 public:
  StreamingCanonicalizer(std::string_view sql, const FingerprintOptions& options)
      : sql_(sql), options_(options) {}

  std::string Run() {
    out_.reserve(sql_.size());
    // Same leading-byte dispatch and blockscan span walks as the lexer's Run
    // loop (lexer.cc) — one shared ClassOf table, so the two passes cannot
    // disagree on what a byte starts.
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      switch (lexer_detail::ClassOf(c)) {
        case LexClass::kWord:
          EmitWord();
          break;
        case LexClass::kSpace:
          pos_ = blockscan::SpaceRunEnd(sql_, pos_ + 1);
          break;
        case LexClass::kDigit:
          EmitNumber();
          break;
        case LexClass::kDot:
          if (IsDigit(Peek(1))) {
            EmitNumber();
          } else {
            EmitOperatorOrPunct();
          }
          break;
        case LexClass::kDash:
          if (Peek(1) == '-') {
            SkipLineComment();
          } else {
            EmitOperatorOrPunct();
          }
          break;
        case LexClass::kHash:
          if (Peek(1) != '>') {
            SkipLineComment();
          } else {
            EmitOperatorOrPunct();
          }
          break;
        case LexClass::kSlash:
          if (Peek(1) == '*') {
            SkipBlockComment();
          } else {
            EmitOperatorOrPunct();
          }
          break;
        case LexClass::kSQuote:
          EmitSingleQuoted();
          break;
        case LexClass::kIdQuote:
          EmitQuotedIdentifier(c);
          break;
        case LexClass::kBracket:
          EmitBracketIdentifier();
          break;
        case LexClass::kDollar:
          if (Peek(1) == '$' || IsIdentStart(Peek(1))) {
            if (EmitDollarQuoted()) break;
            // Not a dollar quote: `$` lexes as a single-character operator.
            Emit(sql_.substr(pos_, 1));
            ++pos_;
            break;
          }
          if (IsDigit(Peek(1))) {
            size_t start = pos_;
            pos_ = blockscan::DigitRunEnd(sql_, pos_ + 1);
            EmitParam(sql_.substr(start, pos_ - start));
            break;
          }
          EmitOperatorOrPunct();
          break;
        case LexClass::kQuestion:
          EmitParam("?");
          ++pos_;
          break;
        case LexClass::kPercent:
          if (Peek(1) == 's' && !IsIdentChar(Peek(2))) {
            EmitParam("%s");
            pos_ += 2;
          } else {
            EmitOperatorOrPunct();
          }
          break;
        case LexClass::kColon:
          if (IsIdentStart(Peek(1))) {
            size_t start = pos_;
            pos_ = blockscan::IdentRunEnd(sql_, pos_ + 1);
            EmitParam(sql_.substr(start, pos_ - start));
          } else {
            EmitOperatorOrPunct();
          }
          break;
        case LexClass::kOther:
          EmitOperatorOrPunct();
          break;
      }
    }
    return std::move(out_);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < sql_.size() ? sql_[pos_ + ahead] : '\0';
  }

  void Separator() {
    if (!out_.empty()) out_.push_back(' ');
  }

  void Emit(std::string_view text) {
    Separator();
    out_.append(text);
  }

  void EmitParam(std::string_view text) {
    if (options_.collapse_params) {
      Emit("?");
    } else {
      Emit(text);
    }
  }

  void SkipLineComment() { pos_ = blockscan::FindByte(sql_, pos_, '\n'); }

  void SkipBlockComment() {
    pos_ += 2;
    int depth = 1;
    while (depth > 0) {
      pos_ = blockscan::FindEither(sql_, pos_, '*', '/');
      if (pos_ >= sql_.size()) break;
      if (sql_[pos_] == '/' && Peek(1) == '*') {
        ++depth;
        pos_ += 2;
      } else if (sql_[pos_] == '*' && Peek(1) == '/') {
        --depth;
        pos_ += 2;
      } else {
        ++pos_;
      }
    }
  }

  /// Mirrors the lexer's escape handling (`''` and `\'` both produce a quote
  /// in the token text), re-quoting the payload with doubled quotes exactly
  /// as AppendQuoted does.
  void EmitSingleQuoted() {
    ++pos_;  // opening quote
    if (options_.collapse_literals) {
      SkipSingleQuotedBody</*emit=*/false>();
      Emit("?");
      return;
    }
    Separator();
    out_.push_back('\'');
    SkipSingleQuotedBody</*emit=*/true>();
    out_.push_back('\'');
  }

  template <bool emit>
  void SkipSingleQuotedBody() {
    while (pos_ < sql_.size()) {
      // Bulk-step over the ordinary bytes between escapes/closers.
      size_t next = blockscan::FindStringSpecial(sql_, pos_);
      if constexpr (emit) out_.append(sql_.data() + pos_, next - pos_);
      pos_ = next;
      if (pos_ >= sql_.size()) break;
      char c = sql_[pos_];
      if (c == '\\' && pos_ + 1 < sql_.size()) {
        if constexpr (emit) {
          if (sql_[pos_ + 1] == '\'') out_.push_back('\'');
          out_.push_back(sql_[pos_ + 1]);
        }
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        if (Peek(1) == '\'') {
          if constexpr (emit) {
            out_.push_back('\'');
            out_.push_back('\'');
          }
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      // A lone trailing backslash: an ordinary body byte.
      if constexpr (emit) out_.push_back(c);
      ++pos_;
    }
  }

  void EmitQuotedIdentifier(char quote) {
    ++pos_;
    Separator();
    out_.push_back('"');
    while (pos_ < sql_.size()) {
      size_t next = quote == '"' ? blockscan::FindByte(sql_, pos_, '"')
                                 : blockscan::FindEither(sql_, pos_, quote, '"');
      out_.append(sql_.data() + pos_, next - pos_);
      pos_ = next;
      if (pos_ >= sql_.size()) break;
      char c = sql_[pos_];
      if (c == quote) {
        if (Peek(1) == quote) {
          if (quote == '"') out_.push_back('"');
          out_.push_back(quote);
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      // A `"` inside a `-quoted identifier: doubled on re-quoting.
      out_.push_back('"');
      out_.push_back('"');
      ++pos_;
    }
    out_.push_back('"');
  }

  void EmitBracketIdentifier() {
    ++pos_;
    Separator();
    out_.push_back('"');
    while (pos_ < sql_.size() && sql_[pos_] != ']') {
      size_t next = blockscan::FindEither(sql_, pos_, ']', '"');
      out_.append(sql_.data() + pos_, next - pos_);
      pos_ = next;
      if (pos_ < sql_.size() && sql_[pos_] == '"') {
        out_.push_back('"');
        out_.push_back('"');
        ++pos_;
      }
    }
    if (pos_ < sql_.size()) ++pos_;  // closing bracket
    out_.push_back('"');
  }

  bool EmitDollarQuoted() {
    size_t tag_end = pos_ + 1;
    while (tag_end < sql_.size() && IsIdentChar(sql_[tag_end]) && sql_[tag_end] != '$') {
      ++tag_end;
    }
    if (tag_end >= sql_.size() || sql_[tag_end] != '$') return false;
    std::string_view tag = sql_.substr(pos_, tag_end - pos_ + 1);
    size_t body_start = tag_end + 1;
    size_t close = sql_.find(tag, body_start);
    std::string_view body = close == std::string_view::npos
                                ? sql_.substr(body_start)
                                : sql_.substr(body_start, close - body_start);
    pos_ = close == std::string_view::npos ? sql_.size() : close + tag.size();
    if (options_.collapse_literals) {
      Emit("?");
    } else {
      Separator();
      AppendQuoted(&out_, '\'', body);
    }
    return true;
  }

  void EmitNumber() {
    size_t start = pos_;
    bool seen_dot = false;
    bool seen_exp = false;
    pos_ = blockscan::DigitRunEnd(sql_, pos_);
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '.' && !seen_dot && !seen_exp) {
        seen_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !seen_exp && pos_ > start &&
                 (IsDigit(Peek(1)) ||
                  ((Peek(1) == '+' || Peek(1) == '-') && IsDigit(Peek(2))))) {
        seen_exp = true;
        pos_ += (Peek(1) == '+' || Peek(1) == '-') ? 2 : 1;
      } else {
        break;
      }
      pos_ = blockscan::DigitRunEnd(sql_, pos_);
    }
    if (options_.collapse_literals) {
      Emit("?");
    } else {
      Emit(sql_.substr(start, pos_ - start));
    }
  }

  void EmitWord() {
    size_t start = pos_;
    pos_ = blockscan::IdentRunEnd(sql_, pos_ + 1);  // start byte pre-classified
    std::string_view word = sql_.substr(start, pos_ - start);
    if (IsSqlKeyword(word)) {
      Separator();
      for (char c : word) out_.push_back(LowerChar(c));
    } else {
      Emit(word);
    }
  }

  void EmitOperatorOrPunct() {
    if (int m = lexer_detail::MatchMultiCharOperator(sql_.substr(pos_))) {
      std::string_view op = lexer_detail::kMultiCharOperators[m - 1];
      Emit(op);
      pos_ += op.size();
      return;
    }
    Emit(sql_.substr(pos_, 1));
    ++pos_;
  }

  std::string_view sql_;
  FingerprintOptions options_;
  std::string out_;
  size_t pos_ = 0;
};

}  // namespace

std::string CanonicalizeTokens(const std::vector<Token>& tokens,
                               const FingerprintOptions& options) {
  std::string out;
  out.reserve(tokens.size() * 6);
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kComment || t.kind == TokenKind::kEnd) continue;
    if (!out.empty()) out.push_back(' ');
    switch (t.kind) {
      case TokenKind::kKeyword:
        out.append(ToLower(t.text));
        break;
      case TokenKind::kString:
        if (options.collapse_literals) {
          out.push_back('?');
        } else {
          AppendQuoted(&out, '\'', t.text);
        }
        break;
      case TokenKind::kNumber:
        if (options.collapse_literals) {
          out.push_back('?');
        } else {
          out.append(t.text);
        }
        break;
      case TokenKind::kParam:
        if (options.collapse_params) {
          out.push_back('?');
        } else {
          out.append(t.text);
        }
        break;
      case TokenKind::kQuotedIdentifier:
        // Re-quoted so `"select"` (an identifier) can't collide with the
        // keyword, and `"a b"` can't collide with two bare identifiers.
        AppendQuoted(&out, '"', t.text);
        break;
      default:
        // Identifiers keep their case: the analyzer reports table/column
        // names as written, so case differences are semantically visible.
        out.append(t.text);
        break;
    }
  }
  return out;
}

std::string CanonicalizeSql(std::string_view sql, const FingerprintOptions& options) {
  return StreamingCanonicalizer(sql, options).Run();
}

uint64_t FingerprintCanonical(std::string_view canonical) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

uint64_t FingerprintTokens(const std::vector<Token>& tokens,
                           const FingerprintOptions& options) {
  return FingerprintCanonical(CanonicalizeTokens(tokens, options));
}

uint64_t FingerprintSql(std::string_view sql, const FingerprintOptions& options) {
  return FingerprintCanonical(CanonicalizeSql(sql, options));
}

ScanFingerprints FingerprintForScan(std::string_view sql, std::string* exact_canonical) {
  *exact_canonical = CanonicalizeSql(sql, FingerprintOptions::Exact());
  ScanFingerprints fp;
  fp.exact = FingerprintCanonical(*exact_canonical);
  fp.tmpl = FingerprintSql(*exact_canonical, FingerprintOptions::Template());
  return fp;
}

}  // namespace sqlcheck::sql
