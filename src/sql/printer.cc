#include "sql/printer.h"

#include "common/strings.h"

namespace sqlcheck::sql {

namespace {

std::string QuoteString(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

/// Identifiers are emitted bare unless they need quoting.
std::string PrintName(std::string_view name) {
  bool needs_quotes = name.empty();
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) needs_quotes = true;
  }
  if (needs_quotes) return "\"" + std::string(name) + "\"";
  return std::string(name);
}

std::string PrintSelectBody(const SelectStatement& s);

std::string PrintTableRef(const TableRef& ref) {
  std::string out;
  if (ref.subquery) {
    out = "(" + PrintSelectBody(*ref.subquery) + ")";
  } else {
    out = PrintName(ref.name);
  }
  if (!ref.alias.empty()) out += " AS " + PrintName(ref.alias);
  return out;
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner: return "JOIN";
    case JoinType::kLeft: return "LEFT JOIN";
    case JoinType::kRight: return "RIGHT JOIN";
    case JoinType::kFull: return "FULL JOIN";
    case JoinType::kCross: return "CROSS JOIN";
  }
  return "JOIN";
}

std::string PrintExprImpl(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNullLiteral:
      return "NULL";
    case ExprKind::kBoolLiteral:
      return e.text == "true" ? "TRUE" : "FALSE";
    case ExprKind::kNumberLiteral:
      return std::string(e.text);
    case ExprKind::kStringLiteral:
      return QuoteString(e.text);
    case ExprKind::kParam:
      return std::string(e.text);
    case ExprKind::kColumnRef: {
      std::vector<std::string> parts;
      for (const auto& p : e.name_parts) parts.push_back(PrintName(p));
      return Join(parts, ".");
    }
    case ExprKind::kStar:
      if (!e.name_parts.empty()) return PrintName(e.name_parts.back()) + ".*";
      return "*";
    case ExprKind::kUnary:
      if (EqualsIgnoreCase(e.text, "not")) return "NOT (" + PrintExprImpl(*e.children[0]) + ")";
      return std::string(e.text) + PrintExprImpl(*e.children[0]);
    case ExprKind::kBinary:
      return "(" + PrintExprImpl(*e.children[0]) + " " + std::string(e.text) + " " +
             PrintExprImpl(*e.children[1]) + ")";
    case ExprKind::kLike:
      return "(" + PrintExprImpl(*e.children[0]) + (e.negated ? " NOT " : " ") +
             std::string(e.text) + " " + PrintExprImpl(*e.children[1]) + ")";
    case ExprKind::kIsNull:
      return "(" + PrintExprImpl(*e.children[0]) + (e.negated ? " IS NOT NULL" : " IS NULL") +
             ")";
    case ExprKind::kIn: {
      std::string out = "(" + PrintExprImpl(*e.children[0]) + (e.negated ? " NOT IN (" : " IN (");
      if (e.subquery) {
        out += PrintSelectBody(*e.subquery);
      } else {
        for (size_t i = 1; i < e.children.size(); ++i) {
          if (i > 1) out += ", ";
          out += PrintExprImpl(*e.children[i]);
        }
      }
      return out + "))";
    }
    case ExprKind::kBetween:
      return "(" + PrintExprImpl(*e.children[0]) + (e.negated ? " NOT BETWEEN " : " BETWEEN ") +
             PrintExprImpl(*e.children[1]) + " AND " + PrintExprImpl(*e.children[2]) + ")";
    case ExprKind::kFunction: {
      std::string out = ToUpper(e.text) + "(";
      if (e.distinct_arg) out += "DISTINCT ";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += PrintExprImpl(*e.children[i]);
      }
      return out + ")";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      bool has_operand = e.text == "operand";
      if (has_operand) {
        out += " " + PrintExprImpl(*e.children[i++]);
      }
      size_t remaining = e.children.size() - i;
      bool has_else = e.negated;
      size_t pairs = (remaining - (has_else ? 1 : 0)) / 2;
      for (size_t p = 0; p < pairs; ++p) {
        out += " WHEN " + PrintExprImpl(*e.children[i]) + " THEN " +
               PrintExprImpl(*e.children[i + 1]);
        i += 2;
      }
      if (has_else) out += " ELSE " + PrintExprImpl(*e.children[i]);
      return out + " END";
    }
    case ExprKind::kExists:
      return "EXISTS (" + (e.subquery ? PrintSelectBody(*e.subquery) : "") + ")";
    case ExprKind::kSubquery:
      return "(" + (e.subquery ? PrintSelectBody(*e.subquery) : "") + ")";
    case ExprKind::kCast:
      return "CAST(" + PrintExprImpl(*e.children[0]) + " AS " + std::string(e.text) + ")";
    case ExprKind::kRaw:
      // Non-validating placeholder: parse failures fall back to
      // UnknownStatement (printed from raw_sql), so kRaw has no payload.
      return "";
  }
  return "";
}

std::string PrintSelectBody(const SelectStatement& s) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += PrintExprImpl(*s.items[i].expr);
    if (!s.items[i].alias.empty()) out += " AS " + PrintName(s.items[i].alias);
  }
  if (!s.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < s.from.size(); ++i) {
      if (i > 0) out += ", ";
      out += PrintTableRef(s.from[i]);
    }
  }
  for (const auto& j : s.joins) {
    out += std::string(" ") + JoinTypeName(j.type) + " " + PrintTableRef(j.table);
    if (j.on) {
      out += " ON " + PrintExprImpl(*j.on);
    } else if (!j.using_columns.empty()) {
      std::vector<std::string> cols;
      for (const auto& c : j.using_columns) cols.push_back(PrintName(c));
      out += " USING (" + Join(cols, ", ") + ")";
    }
  }
  if (s.where) out += " WHERE " + PrintExprImpl(*s.where);
  if (!s.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += PrintExprImpl(*s.group_by[i]);
    }
  }
  if (s.having) out += " HAVING " + PrintExprImpl(*s.having);
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += PrintExprImpl(*s.order_by[i].expr);
      if (s.order_by[i].descending) out += " DESC";
    }
  }
  if (s.limit.has_value()) out += " LIMIT " + std::to_string(*s.limit);
  if (s.offset.has_value()) out += " OFFSET " + std::to_string(*s.offset);
  return out;
}

std::string PrintColumnDef(const ColumnDefAst& col) {
  std::string out = PrintName(col.name) + " " + col.type.ToString();
  if (col.primary_key) out += " PRIMARY KEY";
  if (col.auto_increment) out += " AUTO_INCREMENT";
  if (col.not_null) out += " NOT NULL";
  if (col.unique) out += " UNIQUE";
  if (col.default_value) out += " DEFAULT " + PrintExprImpl(*col.default_value);
  if (col.check) out += " CHECK (" + PrintExprImpl(*col.check) + ")";
  if (col.references.has_value()) {
    out += " REFERENCES " + PrintName(col.references->table);
    if (!col.references->columns.empty()) {
      std::vector<std::string> cols;
      for (const auto& c : col.references->columns) cols.push_back(PrintName(c));
      out += "(" + Join(cols, ", ") + ")";
    }
    if (col.references->on_delete_cascade) out += " ON DELETE CASCADE";
  }
  return out;
}

std::string PrintTableConstraint(const TableConstraintAst& c) {
  std::string out;
  if (!c.name.empty()) out += "CONSTRAINT " + PrintName(c.name) + " ";
  std::vector<std::string> cols;
  for (const auto& col : c.columns) cols.push_back(PrintName(col));
  switch (c.kind) {
    case TableConstraintKind::kPrimaryKey:
      out += "PRIMARY KEY (" + Join(cols, ", ") + ")";
      break;
    case TableConstraintKind::kForeignKey: {
      out += "FOREIGN KEY (" + Join(cols, ", ") + ") REFERENCES " +
             PrintName(c.reference.table);
      if (!c.reference.columns.empty()) {
        std::vector<std::string> ref_cols;
        for (const auto& rc : c.reference.columns) ref_cols.push_back(PrintName(rc));
        out += "(" + Join(ref_cols, ", ") + ")";
      }
      if (c.reference.on_delete_cascade) out += " ON DELETE CASCADE";
      break;
    }
    case TableConstraintKind::kUnique:
      out += "UNIQUE (" + Join(cols, ", ") + ")";
      break;
    case TableConstraintKind::kCheck:
      out += "CHECK (" + (c.check ? PrintExprImpl(*c.check) : "") + ")";
      break;
  }
  return out;
}

}  // namespace

std::string PrintExpr(const Expr& expr) { return PrintExprImpl(expr); }

std::string PrintStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return PrintSelectBody(static_cast<const SelectStatement&>(stmt)) + ";";
    case StatementKind::kInsert: {
      const auto& s = static_cast<const InsertStatement&>(stmt);
      std::string out = s.or_replace ? "REPLACE INTO " : "INSERT INTO ";
      out += PrintName(s.table);
      if (!s.columns.empty()) {
        std::vector<std::string> cols;
        for (const auto& c : s.columns) cols.push_back(PrintName(c));
        out += " (" + Join(cols, ", ") + ")";
      }
      if (s.select) {
        out += " " + PrintSelectBody(*s.select);
      } else {
        out += " VALUES ";
        for (size_t r = 0; r < s.rows.size(); ++r) {
          if (r > 0) out += ", ";
          out += "(";
          for (size_t i = 0; i < s.rows[r].size(); ++i) {
            if (i > 0) out += ", ";
            out += PrintExprImpl(*s.rows[r][i]);
          }
          out += ")";
        }
      }
      return out + ";";
    }
    case StatementKind::kUpdate: {
      const auto& s = static_cast<const UpdateStatement&>(stmt);
      std::string out = "UPDATE " + PrintName(s.table);
      if (!s.alias.empty()) out += " AS " + PrintName(s.alias);
      out += " SET ";
      for (size_t i = 0; i < s.assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += PrintName(s.assignments[i].first) + " = " +
               PrintExprImpl(*s.assignments[i].second);
      }
      if (s.where) out += " WHERE " + PrintExprImpl(*s.where);
      return out + ";";
    }
    case StatementKind::kDelete: {
      const auto& s = static_cast<const DeleteStatement&>(stmt);
      std::string out = "DELETE FROM " + PrintName(s.table);
      if (s.where) out += " WHERE " + PrintExprImpl(*s.where);
      return out + ";";
    }
    case StatementKind::kCreateTable: {
      const auto& s = static_cast<const CreateTableStatement&>(stmt);
      std::string out = "CREATE TABLE ";
      if (s.if_not_exists) out += "IF NOT EXISTS ";
      out += PrintName(s.table) + " (";
      bool first = true;
      for (const auto& c : s.columns) {
        if (!first) out += ", ";
        first = false;
        out += PrintColumnDef(c);
      }
      for (const auto& c : s.constraints) {
        if (!first) out += ", ";
        first = false;
        out += PrintTableConstraint(c);
      }
      return out + ");";
    }
    case StatementKind::kCreateIndex: {
      const auto& s = static_cast<const CreateIndexStatement&>(stmt);
      std::string out = s.unique ? "CREATE UNIQUE INDEX " : "CREATE INDEX ";
      if (s.if_not_exists) out += "IF NOT EXISTS ";
      out += PrintName(s.index) + " ON " + PrintName(s.table) + " (";
      std::vector<std::string> cols;
      for (const auto& c : s.columns) cols.push_back(PrintName(c));
      return out + Join(cols, ", ") + ");";
    }
    case StatementKind::kAlterTable: {
      const auto& s = static_cast<const AlterTableStatement&>(stmt);
      std::string out = "ALTER TABLE " + PrintName(s.table) + " ";
      switch (s.action) {
        case AlterAction::kAddColumn:
          out += "ADD COLUMN " + PrintColumnDef(s.column);
          break;
        case AlterAction::kDropColumn:
          out += "DROP COLUMN ";
          if (s.if_exists) out += "IF EXISTS ";
          out += PrintName(s.target_name);
          break;
        case AlterAction::kAddConstraint:
          out += "ADD " + PrintTableConstraint(s.constraint);
          break;
        case AlterAction::kDropConstraint:
          out += "DROP CONSTRAINT ";
          if (s.if_exists) out += "IF EXISTS ";
          out += PrintName(s.target_name);
          break;
        case AlterAction::kAlterColumnType:
          out += "ALTER COLUMN " + PrintName(s.column.name) + " TYPE " +
                 s.column.type.ToString();
          break;
        case AlterAction::kRenameTable:
          out += "RENAME TO " + PrintName(s.new_name);
          break;
        case AlterAction::kRenameColumn:
          out += "RENAME COLUMN " + PrintName(s.target_name) + " TO " + PrintName(s.new_name);
          break;
        case AlterAction::kUnknown:
          break;
      }
      return out + ";";
    }
    case StatementKind::kDropTable: {
      const auto& s = static_cast<const DropTableStatement&>(stmt);
      return std::string("DROP TABLE ") + (s.if_exists ? "IF EXISTS " : "") +
             PrintName(s.table) + ";";
    }
    case StatementKind::kDropIndex: {
      const auto& s = static_cast<const DropIndexStatement&>(stmt);
      return std::string("DROP INDEX ") + (s.if_exists ? "IF EXISTS " : "") +
             PrintName(s.index) + ";";
    }
    case StatementKind::kUnknown:
      return std::string(stmt.raw_sql);
  }
  return std::string(stmt.raw_sql);
}

}  // namespace sqlcheck::sql
