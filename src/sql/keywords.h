#pragma once

#include <cstdint>
#include <string_view>

namespace sqlcheck::sql {

/// \brief Dense ids for the SQL keyword table, precomputed by the lexer so
/// keyword dispatch in the parser/splitter is one integer compare instead of
/// a case-insensitive string compare per probe. `kNoKeyword` marks tokens
/// that are not keywords.
///
/// The set spans the dialects sqlcheck targets (PostgreSQL, MySQL, SQLite,
/// SQL Server) and is exactly the word list grammar rules key off — the
/// lexer is non-validating, so unknown words simply lex as identifiers.
enum class KeywordId : uint8_t {
  kNoKeyword = 0,
  kSelect, kFrom, kWhere, kGroup, kBy,
  kHaving, kOrder, kLimit, kOffset, kInsert,
  kInto, kValues, kUpdate, kSet, kDelete,
  kCreate, kTable, kIndex, kView, kDrop,
  kAlter, kAdd, kColumn, kConstraint, kPrimary,
  kKey, kForeign, kReferences, kUnique, kCheck,
  kNot, kNull, kDefault, kAnd, kOr,
  kIn, kBetween, kLike, kIlike, kRegexp,
  kRlike, kSimilar, kIs, kAs, kOn,
  kJoin, kInner, kLeft, kRight, kFull,
  kOuter, kCross, kNatural, kUsing, kUnion,
  kAll, kDistinct, kExists, kCase, kWhen,
  kThen, kElse, kEnd, kAsc, kDesc,
  kIf, kCascade, kRestrict, kTrue, kFalse,
  kEnum, kAutoIncrement, kAutoincrement, kSerial,
  kTemporary, kTemp, kEscape, kCollate, kRename,
  kTo, kType, kModify, kChange, kWith,
  kRecursive, kReturning, kConflict, kReplace, kIgnore,
  kExplain, kAnalyze, kVacuum, kBegin, kCommit,
  kRollback, kTransaction, kGrant, kRevoke, kTruncate,
  kIntersect, kExcept, kAny, kSome, kCast,
};

/// \brief Keyword id for `word` (ASCII-case-insensitive), or `kNoKeyword`.
/// Allocation-free.
KeywordId LookupKeyword(std::string_view word);

/// \brief The canonical (lowercase) spelling of a keyword id.
std::string_view KeywordSpelling(KeywordId id);

}  // namespace sqlcheck::sql
