#include "sql/splitter.h"

#include "common/strings.h"
#include "sql/lexer.h"

namespace sqlcheck::sql {

std::vector<std::string> SplitStatements(std::string_view script) {
  // Lexing handles all the quoting/comment subtleties; we just cut the raw
  // text at top-level semicolon token offsets.
  LexerOptions options;
  options.keep_comments = true;
  std::vector<Token> tokens = Lex(script, options);

  std::vector<std::string> out;
  size_t piece_start = 0;
  for (const Token& t : tokens) {
    if (t.Is(TokenKind::kSemicolon)) {
      std::string_view piece = script.substr(piece_start, t.offset - piece_start);
      if (!Trim(piece).empty()) out.emplace_back(Trim(piece));
      piece_start = t.offset + 1;
    }
  }
  if (piece_start < script.size()) {
    std::string_view piece = script.substr(piece_start);
    if (!Trim(piece).empty()) out.emplace_back(Trim(piece));
  }
  return out;
}

}  // namespace sqlcheck::sql
