#include "sql/splitter.h"

#include "common/strings.h"

namespace sqlcheck::sql {

namespace {

using Kw = KeywordId;

/// Next non-comment token after `idx`, or nullptr at the end of the stream.
const Token* NextCodeToken(const std::vector<Token>& tokens, size_t idx) {
  for (size_t j = idx + 1; j < tokens.size(); ++j) {
    if (!tokens[j].Is(TokenKind::kComment)) return &tokens[j];
  }
  return nullptr;
}

}  // namespace

std::vector<std::string_view> SplitStatements(std::string_view script, bool* complete,
                                              TokenBuffer* buffer) {
  // Lexing handles all the quoting/comment subtleties; we cut the raw text at
  // semicolon token offsets, but only outside BEGIN...END / CASE...END
  // compound bodies so trigger/procedure scripts survive in one piece.
  LexerOptions options;
  options.keep_comments = true;
  TokenBuffer local;
  TokenBuffer& buf = buffer != nullptr ? *buffer : local;
  const std::vector<Token>& tokens = Lex(script, buf, options);

  std::vector<std::string_view> out;
  size_t piece_start = 0;
  int block_depth = 0;  ///< Open BEGIN/CASE blocks at the current token.
  const Token* prev_code = nullptr;  ///< Last non-comment token seen.
  for (size_t ti = 0; ti < tokens.size(); ++ti) {
    const Token& t = tokens[ti];
    if (t.Is(TokenKind::kKeyword)) {
      if (t.IsKeyword(Kw::kBegin)) {
        // Transaction-control BEGIN (`BEGIN;`, `BEGIN WORK/TRANSACTION`,
        // `BEGIN ISOLATION/READ ...`, SQLite's `BEGIN
        // DEFERRED/IMMEDIATE/EXCLUSIVE`) is a complete statement, not a
        // block opener.
        const Token* next = NextCodeToken(tokens, ti);
        bool transactional = next == nullptr || next->Is(TokenKind::kSemicolon) ||
                             next->Is(TokenKind::kEnd) ||
                             next->IsKeyword(Kw::kTransaction) ||
                             EqualsIgnoreCase(next->text, "work") ||
                             EqualsIgnoreCase(next->text, "tran") ||
                             EqualsIgnoreCase(next->text, "isolation") ||
                             EqualsIgnoreCase(next->text, "read") ||
                             EqualsIgnoreCase(next->text, "deferred") ||
                             EqualsIgnoreCase(next->text, "immediate") ||
                             EqualsIgnoreCase(next->text, "exclusive");
        if (!transactional) ++block_depth;
      } else if (t.IsKeyword(Kw::kCase)) {
        // The CASE in `END CASE` closes a block (handled at the END token);
        // it must not count as opening a new one.
        if (prev_code == nullptr || !prev_code->IsKeyword(Kw::kEnd)) ++block_depth;
      } else if (t.IsKeyword(Kw::kEnd)) {
        // `END IF` / `END LOOP` / `END WHILE` / `END REPEAT` close constructs
        // we never counted (their openers are ambiguous with functions and
        // `IF EXISTS`); only bare END and `END CASE` close a tracked block.
        const Token* next = NextCodeToken(tokens, ti);
        bool closes_untracked =
            next != nullptr &&
            (next->IsKeyword(Kw::kIf) || EqualsIgnoreCase(next->text, "loop") ||
             EqualsIgnoreCase(next->text, "while") ||
             EqualsIgnoreCase(next->text, "repeat"));
        if (!closes_untracked && block_depth > 0) --block_depth;
      }
    }
    if (t.Is(TokenKind::kSemicolon) && block_depth == 0) {
      std::string_view piece = script.substr(piece_start, t.offset - piece_start);
      piece = Trim(piece);
      if (!piece.empty()) out.push_back(piece);
      piece_start = t.offset + 1;
    }
    if (!t.Is(TokenKind::kComment)) prev_code = &t;
  }
  bool has_trailing_fragment = false;
  if (piece_start < script.size()) {
    std::string_view piece = Trim(script.substr(piece_start));
    if (!piece.empty()) {
      out.push_back(piece);
      has_trailing_fragment = true;
    }
  }
  if (complete != nullptr) *complete = !has_trailing_fragment;
  return out;
}

}  // namespace sqlcheck::sql
