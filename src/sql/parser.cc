#include "sql/parser.h"

#include <cstdlib>

#include "common/strings.h"
#include "sql/lexer.h"
#include "sql/splitter.h"

namespace sqlcheck::sql {

namespace {

/// Recursive-descent parser over the lexed token stream. `ok_` latches false
/// on the first construct we cannot handle; the caller then falls back to an
/// UnknownStatement so detection rules degrade gracefully instead of erroring.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatementPtr Parse(std::string_view raw) {
    StatementPtr stmt = ParseStatementTop();
    // Trailing semicolon is fine; anything else unparsed means we mis-read.
    Match(TokenKind::kSemicolon);
    if (!ok_ || stmt == nullptr || !Peek().Is(TokenKind::kEnd)) {
      auto unknown = std::make_unique<UnknownStatement>();
      unknown->tokens = tokens_;
      unknown->raw_sql = std::string(Trim(raw));
      return unknown;
    }
    stmt->raw_sql = std::string(Trim(raw));
    return stmt;
  }

 private:
  // ------------------------------ plumbing --------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool Match(TokenKind kind) {
    if (Peek().Is(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchOperator(std::string_view op) {
    if (Peek().IsOperator(op)) {
      Advance();
      return true;
    }
    return false;
  }
  void Expect(TokenKind kind) {
    if (!Match(kind)) ok_ = false;
  }
  void ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) ok_ = false;
  }

  /// Accepts identifiers, quoted identifiers, and (dialect-tolerantly) any
  /// keyword used as a name (e.g. a column called "type" or "key").
  std::string ParseName() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kIdentifier) || t.Is(TokenKind::kQuotedIdentifier) ||
        t.Is(TokenKind::kKeyword)) {
      return Advance().text;
    }
    ok_ = false;
    return "";
  }

  /// Strict variant: keywords are NOT acceptable (used where a keyword is a
  /// legitimate clause boundary, e.g. after a table name).
  std::string ParseStrictName() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kIdentifier) || t.Is(TokenKind::kQuotedIdentifier)) {
      return Advance().text;
    }
    ok_ = false;
    return "";
  }

  std::optional<int64_t> ParseIntLiteral() {
    if (Peek().Is(TokenKind::kNumber)) {
      return std::strtoll(Advance().text.c_str(), nullptr, 10);
    }
    return std::nullopt;
  }

  // ----------------------------- statements -------------------------------
  StatementPtr ParseStatementTop() {
    const Token& t = Peek();
    if (t.IsKeyword("select")) return ParseSelect();
    if (t.IsKeyword("insert") || t.IsKeyword("replace")) return ParseInsert();
    if (t.IsKeyword("update")) return ParseUpdate();
    if (t.IsKeyword("delete")) return ParseDelete();
    if (t.IsKeyword("create")) return ParseCreate();
    if (t.IsKeyword("alter")) return ParseAlter();
    if (t.IsKeyword("drop")) return ParseDrop();
    ok_ = false;
    return nullptr;
  }

  std::unique_ptr<SelectStatement> ParseSelect() {
    ExpectKeyword("select");
    auto stmt = std::make_unique<SelectStatement>();
    if (MatchKeyword("distinct")) stmt->distinct = true;
    MatchKeyword("all");

    // Select list.
    do {
      SelectItem item;
      item.expr = ParseExpr();
      if (MatchKeyword("as")) {
        item.alias = ParseName();
      } else if (Peek().Is(TokenKind::kIdentifier) || Peek().Is(TokenKind::kQuotedIdentifier)) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
    } while (Match(TokenKind::kComma));

    if (MatchKeyword("from")) {
      stmt->from.push_back(ParseTableRef());
      while (true) {
        if (Match(TokenKind::kComma)) {
          stmt->from.push_back(ParseTableRef());
          continue;
        }
        std::optional<JoinType> jt = TryParseJoinPrefix();
        if (!jt.has_value()) break;
        JoinClause join;
        join.type = *jt;
        join.table = ParseTableRef();
        if (MatchKeyword("on")) {
          join.on = ParseExpr();
        } else if (MatchKeyword("using")) {
          Expect(TokenKind::kLeftParen);
          do {
            join.using_columns.push_back(ParseName());
          } while (Match(TokenKind::kComma));
          Expect(TokenKind::kRightParen);
        }
        stmt->joins.push_back(std::move(join));
      }
    }

    if (MatchKeyword("where")) stmt->where = ParseExpr();
    if (MatchKeyword("group")) {
      ExpectKeyword("by");
      do {
        stmt->group_by.push_back(ParseExpr());
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("having")) stmt->having = ParseExpr();
    if (MatchKeyword("order")) {
      ExpectKeyword("by");
      do {
        OrderItem item;
        item.expr = ParseExpr();
        if (MatchKeyword("desc")) {
          item.descending = true;
        } else {
          MatchKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword("limit")) {
      stmt->limit = ParseIntLiteral();
      if (Match(TokenKind::kComma)) {  // MySQL LIMIT off, count
        stmt->offset = stmt->limit;
        stmt->limit = ParseIntLiteral();
      }
    }
    if (MatchKeyword("offset")) stmt->offset = ParseIntLiteral();
    return stmt;
  }

  std::optional<JoinType> TryParseJoinPrefix() {
    size_t save = pos_;
    JoinType type = JoinType::kInner;
    if (MatchKeyword("inner")) {
      type = JoinType::kInner;
    } else if (MatchKeyword("left")) {
      MatchKeyword("outer");
      type = JoinType::kLeft;
    } else if (MatchKeyword("right")) {
      MatchKeyword("outer");
      type = JoinType::kRight;
    } else if (MatchKeyword("full")) {
      MatchKeyword("outer");
      type = JoinType::kFull;
    } else if (MatchKeyword("cross")) {
      type = JoinType::kCross;
    }
    if (MatchKeyword("join")) return type;
    pos_ = save;
    return std::nullopt;
  }

  TableRef ParseTableRef() {
    TableRef ref;
    if (Match(TokenKind::kLeftParen)) {
      if (Peek().IsKeyword("select")) {
        ref.subquery = ParseSelect();
        Expect(TokenKind::kRightParen);
      } else {
        ok_ = false;
        return ref;
      }
    } else {
      ref.name = ParseStrictName();
      while (Match(TokenKind::kDot)) {
        // schema-qualified: keep only the last component as the table name.
        ref.name = ParseStrictName();
      }
    }
    if (MatchKeyword("as")) {
      ref.alias = ParseName();
    } else if (Peek().Is(TokenKind::kIdentifier) || Peek().Is(TokenKind::kQuotedIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  std::unique_ptr<InsertStatement> ParseInsert() {
    auto stmt = std::make_unique<InsertStatement>();
    if (MatchKeyword("replace")) {
      stmt->or_replace = true;
    } else {
      ExpectKeyword("insert");
      if (MatchKeyword("or")) {
        if (MatchKeyword("replace")) stmt->or_replace = true;
        else MatchKeyword("ignore");
      }
      MatchKeyword("ignore");
    }
    MatchKeyword("into");
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();

    if (Peek().Is(TokenKind::kLeftParen)) {
      // Could be a column list or directly a SELECT subquery.
      size_t save = pos_;
      Advance();
      if (Peek().IsKeyword("select")) {
        pos_ = save;
      } else {
        do {
          stmt->columns.push_back(ParseName());
        } while (Match(TokenKind::kComma));
        Expect(TokenKind::kRightParen);
      }
    }

    if (MatchKeyword("values")) {
      do {
        Expect(TokenKind::kLeftParen);
        std::vector<ExprPtr> row;
        if (!Peek().Is(TokenKind::kRightParen)) {
          do {
            row.push_back(ParseExpr());
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRightParen);
        stmt->rows.push_back(std::move(row));
      } while (Match(TokenKind::kComma));
    } else if (Peek().IsKeyword("select")) {
      stmt->select = ParseSelect();
    } else if (Match(TokenKind::kLeftParen)) {
      if (Peek().IsKeyword("select")) {
        stmt->select = ParseSelect();
        Expect(TokenKind::kRightParen);
      } else {
        ok_ = false;
      }
    } else {
      ok_ = false;
    }
    // ON CONFLICT / RETURNING etc. — tolerated by skipping to end.
    SkipToStatementEnd();
    return stmt;
  }

  std::unique_ptr<UpdateStatement> ParseUpdate() {
    ExpectKeyword("update");
    auto stmt = std::make_unique<UpdateStatement>();
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();
    if (MatchKeyword("as")) {
      stmt->alias = ParseName();
    } else if (Peek().Is(TokenKind::kIdentifier)) {
      stmt->alias = Advance().text;
    }
    ExpectKeyword("set");
    do {
      std::string col = ParseName();
      while (Match(TokenKind::kDot)) col = ParseName();
      if (!MatchOperator("=")) ok_ = false;
      stmt->assignments.emplace_back(std::move(col), ParseExpr());
    } while (Match(TokenKind::kComma));
    if (MatchKeyword("where")) stmt->where = ParseExpr();
    SkipToStatementEnd();
    return stmt;
  }

  std::unique_ptr<DeleteStatement> ParseDelete() {
    ExpectKeyword("delete");
    ExpectKeyword("from");
    auto stmt = std::make_unique<DeleteStatement>();
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();
    if (MatchKeyword("where")) stmt->where = ParseExpr();
    SkipToStatementEnd();
    return stmt;
  }

  StatementPtr ParseCreate() {
    ExpectKeyword("create");
    MatchKeyword("temporary");
    MatchKeyword("temp");
    bool unique = MatchKeyword("unique");
    if (MatchKeyword("index")) return ParseCreateIndex(unique);
    if (unique) {
      ok_ = false;
      return nullptr;
    }
    if (MatchKeyword("table")) return ParseCreateTable();
    ok_ = false;  // CREATE VIEW / TRIGGER / ... -> Unknown fallback.
    return nullptr;
  }

  std::unique_ptr<CreateIndexStatement> ParseCreateIndex(bool unique) {
    auto stmt = std::make_unique<CreateIndexStatement>();
    stmt->unique = unique;
    if (MatchKeyword("if")) {
      ExpectKeyword("not");
      ExpectKeyword("exists");
      stmt->if_not_exists = true;
    }
    stmt->index = ParseStrictName();
    ExpectKeyword("on");
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();
    Expect(TokenKind::kLeftParen);
    do {
      stmt->columns.push_back(ParseName());
      MatchKeyword("asc");
      MatchKeyword("desc");
    } while (Match(TokenKind::kComma));
    Expect(TokenKind::kRightParen);
    SkipToStatementEnd();
    return stmt;
  }

  std::unique_ptr<CreateTableStatement> ParseCreateTable() {
    auto stmt = std::make_unique<CreateTableStatement>();
    if (MatchKeyword("if")) {
      ExpectKeyword("not");
      ExpectKeyword("exists");
      stmt->if_not_exists = true;
    }
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();
    Expect(TokenKind::kLeftParen);
    do {
      if (IsTableConstraintStart()) {
        stmt->constraints.push_back(ParseTableConstraint());
      } else {
        stmt->columns.push_back(ParseColumnDef());
      }
    } while (Match(TokenKind::kComma));
    Expect(TokenKind::kRightParen);
    SkipToStatementEnd();  // engine=..., WITHOUT ROWID, etc.
    return stmt;
  }

  bool IsTableConstraintStart() const {
    const Token& t = Peek();
    if (t.IsKeyword("constraint")) return true;
    if (t.IsKeyword("primary") && Peek(1).IsKeyword("key")) return true;
    if (t.IsKeyword("foreign") && Peek(1).IsKeyword("key")) return true;
    if (t.IsKeyword("unique") && Peek(1).Is(TokenKind::kLeftParen)) return true;
    if (t.IsKeyword("check") && Peek(1).Is(TokenKind::kLeftParen)) return true;
    return false;
  }

  TableConstraintAst ParseTableConstraint() {
    TableConstraintAst c;
    if (MatchKeyword("constraint")) c.name = ParseName();
    if (MatchKeyword("primary")) {
      ExpectKeyword("key");
      c.kind = TableConstraintKind::kPrimaryKey;
      Expect(TokenKind::kLeftParen);
      do {
        c.columns.push_back(ParseName());
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    } else if (MatchKeyword("foreign")) {
      ExpectKeyword("key");
      c.kind = TableConstraintKind::kForeignKey;
      Expect(TokenKind::kLeftParen);
      do {
        c.columns.push_back(ParseName());
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
      ExpectKeyword("references");
      c.reference = ParseForeignKeyTarget();
    } else if (MatchKeyword("unique")) {
      c.kind = TableConstraintKind::kUnique;
      Expect(TokenKind::kLeftParen);
      do {
        c.columns.push_back(ParseName());
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    } else if (MatchKeyword("check")) {
      c.kind = TableConstraintKind::kCheck;
      Expect(TokenKind::kLeftParen);
      c.check = ParseExpr();
      Expect(TokenKind::kRightParen);
    } else {
      ok_ = false;
    }
    return c;
  }

  ForeignKeyRefAst ParseForeignKeyTarget() {
    ForeignKeyRefAst ref;
    ref.table = ParseStrictName();
    while (Match(TokenKind::kDot)) ref.table = ParseStrictName();
    if (Match(TokenKind::kLeftParen)) {
      do {
        ref.columns.push_back(ParseName());
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    }
    while (MatchKeyword("on")) {
      if (MatchKeyword("delete")) {
        if (MatchKeyword("cascade")) {
          ref.on_delete_cascade = true;
        } else {
          Advance();  // SET NULL / RESTRICT / NO ACTION — skip one word...
          MatchKeyword("null");
          MatchKeyword("action");
        }
      } else if (MatchKeyword("update")) {
        MatchKeyword("cascade") || (Advance(), MatchKeyword("null"), MatchKeyword("action"));
      } else {
        break;
      }
    }
    return ref;
  }

  ColumnDefAst ParseColumnDef() {
    ColumnDefAst col;
    col.name = ParseStrictName();
    col.type = ParseTypeName();
    // Column options in any order.
    while (true) {
      if (MatchKeyword("not")) {
        ExpectKeyword("null");
        col.not_null = true;
      } else if (MatchKeyword("null")) {
        // explicit NULLable
      } else if (MatchKeyword("primary")) {
        ExpectKeyword("key");
        col.primary_key = true;
      } else if (MatchKeyword("unique")) {
        col.unique = true;
      } else if (MatchKeyword("auto_increment") || MatchKeyword("autoincrement")) {
        col.auto_increment = true;
      } else if (MatchKeyword("default")) {
        col.default_value = ParsePrimary();
      } else if (MatchKeyword("references")) {
        col.references = ParseForeignKeyTarget();
      } else if (MatchKeyword("check")) {
        Expect(TokenKind::kLeftParen);
        col.check = ParseExpr();
        Expect(TokenKind::kRightParen);
      } else if (MatchKeyword("collate")) {
        ParseName();
      } else if (MatchKeyword("constraint")) {
        ParseName();  // named inline constraint; the kind follows next loop.
      } else {
        break;
      }
    }
    return col;
  }

  TypeName ParseTypeName() {
    TypeName type;
    const Token& t = Peek();
    if (!(t.Is(TokenKind::kIdentifier) || t.Is(TokenKind::kKeyword))) {
      ok_ = false;
      return type;
    }
    type.name = Advance().text;
    // Multi-word types: DOUBLE PRECISION, CHARACTER VARYING, TIMESTAMP WITH(OUT) TIME ZONE.
    if (EqualsIgnoreCase(type.name, "double") && Peek().Is(TokenKind::kIdentifier) &&
        EqualsIgnoreCase(Peek().text, "precision")) {
      type.name += " " + Advance().text;
    }
    if (EqualsIgnoreCase(type.name, "character") && Peek().Is(TokenKind::kIdentifier) &&
        EqualsIgnoreCase(Peek().text, "varying")) {
      type.name += " " + Advance().text;
    }
    if (EqualsIgnoreCase(type.name, "enum") && Peek().Is(TokenKind::kLeftParen)) {
      Advance();
      do {
        if (Peek().Is(TokenKind::kString)) {
          type.enum_values.push_back(Advance().text);
        } else {
          ok_ = false;
          break;
        }
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    } else if (Match(TokenKind::kLeftParen)) {
      do {
        if (Peek().Is(TokenKind::kNumber)) {
          type.params.push_back(std::strtoll(Advance().text.c_str(), nullptr, 10));
        } else {
          Advance();  // e.g. VARCHAR(MAX)
        }
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    }
    // TIMESTAMP/TIME WITH|WITHOUT TIME ZONE.
    if (Peek().IsKeyword("with") && Peek(1).Is(TokenKind::kIdentifier) &&
        EqualsIgnoreCase(Peek(1).text, "time")) {
      Advance();
      Advance();
      if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "zone")) Advance();
      type.with_time_zone = true;
    } else if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "without")) {
      Advance();
      if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "time")) Advance();
      if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "zone")) Advance();
    }
    return type;
  }

  StatementPtr ParseAlter() {
    ExpectKeyword("alter");
    ExpectKeyword("table");
    auto stmt = std::make_unique<AlterTableStatement>();
    if (MatchKeyword("if")) {
      ExpectKeyword("exists");
      stmt->if_exists = true;
    }
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();

    if (MatchKeyword("add")) {
      if (IsTableConstraintStart()) {
        stmt->action = AlterAction::kAddConstraint;
        stmt->constraint = ParseTableConstraint();
      } else {
        MatchKeyword("column");
        stmt->action = AlterAction::kAddColumn;
        stmt->column = ParseColumnDef();
      }
    } else if (MatchKeyword("drop")) {
      if (MatchKeyword("constraint")) {
        stmt->action = AlterAction::kDropConstraint;
        if (MatchKeyword("if")) {
          ExpectKeyword("exists");
          stmt->if_exists = true;
        }
        stmt->target_name = ParseName();
      } else {
        MatchKeyword("column");
        stmt->action = AlterAction::kDropColumn;
        if (MatchKeyword("if")) {
          ExpectKeyword("exists");
          stmt->if_exists = true;
        }
        stmt->target_name = ParseName();
      }
    } else if (MatchKeyword("alter")) {
      MatchKeyword("column");
      stmt->action = AlterAction::kAlterColumnType;
      stmt->column.name = ParseStrictName();
      MatchKeyword("set");  // tolerate SET DATA TYPE
      MatchKeyword("type");
      if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "data")) {
        Advance();
        MatchKeyword("type");
      }
      stmt->column.type = ParseTypeName();
    } else if (MatchKeyword("modify")) {
      MatchKeyword("column");
      stmt->action = AlterAction::kAlterColumnType;
      stmt->column.name = ParseStrictName();
      stmt->column.type = ParseTypeName();
    } else if (MatchKeyword("rename")) {
      if (MatchKeyword("column")) {
        stmt->action = AlterAction::kRenameColumn;
        stmt->target_name = ParseStrictName();
        ExpectKeyword("to");
        stmt->new_name = ParseStrictName();
      } else {
        MatchKeyword("to");
        stmt->action = AlterAction::kRenameTable;
        stmt->new_name = ParseStrictName();
      }
    } else {
      ok_ = false;
    }
    SkipToStatementEnd();
    return stmt;
  }

  StatementPtr ParseDrop() {
    ExpectKeyword("drop");
    if (MatchKeyword("table")) {
      auto stmt = std::make_unique<DropTableStatement>();
      if (MatchKeyword("if")) {
        ExpectKeyword("exists");
        stmt->if_exists = true;
      }
      stmt->table = ParseStrictName();
      SkipToStatementEnd();
      return stmt;
    }
    if (MatchKeyword("index")) {
      auto stmt = std::make_unique<DropIndexStatement>();
      if (MatchKeyword("if")) {
        ExpectKeyword("exists");
        stmt->if_exists = true;
      }
      stmt->index = ParseStrictName();
      SkipToStatementEnd();
      return stmt;
    }
    ok_ = false;
    return nullptr;
  }

  /// Tolerantly consumes any trailing clause we do not model (ENGINE=...,
  /// RETURNING, ON CONFLICT...). A lone semicolon/end stops us.
  void SkipToStatementEnd() {
    while (!Peek().Is(TokenKind::kEnd) && !Peek().Is(TokenKind::kSemicolon)) Advance();
  }

  // ---------------------------- expressions -------------------------------
  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (MatchKeyword("or")) {
      lhs = MakeBinary("OR", std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    while (MatchKeyword("and")) {
      lhs = MakeBinary("AND", std::move(lhs), ParseNot());
    }
    return lhs;
  }

  ExprPtr ParseNot() {
    if (MatchKeyword("not")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->text = "NOT";
      e->children.push_back(ParseNot());
      return e;
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseAdditive();
    while (true) {
      const Token& t = Peek();
      if (t.Is(TokenKind::kOperator) &&
          (t.text == "=" || t.text == "==" || t.text == "!=" || t.text == "<>" ||
           t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">=" ||
           t.text == "~*" || t.text == "!~" || t.text == "!~*" || t.text == "~")) {
        std::string op = Advance().text;
        lhs = MakeBinary(std::move(op), std::move(lhs), ParseAdditive());
        continue;
      }
      bool negated = false;
      size_t save = pos_;
      if (Peek().IsKeyword("not")) {
        Advance();
        negated = true;
      }
      if (MatchKeyword("like") || MatchKeyword("ilike") || MatchKeyword("regexp") ||
          MatchKeyword("rlike")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLike;
        e->text = ToUpper(tokens_[pos_ - 1].text);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->children.push_back(ParseAdditive());
        if (MatchKeyword("escape")) ParsePrimary();
        lhs = std::move(e);
        continue;
      }
      if (MatchKeyword("similar")) {
        ExpectKeyword("to");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLike;
        e->text = "SIMILAR TO";
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->children.push_back(ParseAdditive());
        lhs = std::move(e);
        continue;
      }
      if (MatchKeyword("in")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIn;
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        Expect(TokenKind::kLeftParen);
        if (Peek().IsKeyword("select")) {
          e->subquery = ParseSelect();
        } else {
          do {
            e->children.push_back(ParseExpr());
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRightParen);
        lhs = std::move(e);
        continue;
      }
      if (MatchKeyword("between")) {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kBetween;
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->children.push_back(ParseAdditive());
        ExpectKeyword("and");
        e->children.push_back(ParseAdditive());
        lhs = std::move(e);
        continue;
      }
      if (negated) {
        pos_ = save;  // NOT belonged to something else.
        break;
      }
      if (MatchKeyword("is")) {
        bool is_not = MatchKeyword("not");
        if (MatchKeyword("null")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kIsNull;
          e->negated = is_not;
          e->children.push_back(std::move(lhs));
          lhs = std::move(e);
          continue;
        }
        // IS TRUE / IS FALSE / IS DISTINCT FROM — treat as binary with "IS".
        lhs = MakeBinary(is_not ? "IS NOT" : "IS", std::move(lhs), ParseAdditive());
        continue;
      }
      break;
    }
    return lhs;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    while (true) {
      if (MatchOperator("||")) {
        lhs = MakeBinary("||", std::move(lhs), ParseMultiplicative());
      } else if (MatchOperator("+")) {
        lhs = MakeBinary("+", std::move(lhs), ParseMultiplicative());
      } else if (MatchOperator("-")) {
        lhs = MakeBinary("-", std::move(lhs), ParseMultiplicative());
      } else {
        break;
      }
    }
    return lhs;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnary();
    while (true) {
      if (MatchOperator("*")) {
        lhs = MakeBinary("*", std::move(lhs), ParseUnary());
      } else if (MatchOperator("/")) {
        lhs = MakeBinary("/", std::move(lhs), ParseUnary());
      } else if (MatchOperator("%")) {
        lhs = MakeBinary("%", std::move(lhs), ParseUnary());
      } else {
        break;
      }
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (MatchOperator("-")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->text = "-";
      e->children.push_back(ParseUnary());
      return ParsePostfix(std::move(e));
    }
    if (MatchOperator("+")) return ParseUnary();
    return ParsePostfix(ParsePrimary());
  }

  ExprPtr ParsePostfix(ExprPtr base) {
    while (MatchOperator("::")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      e->text = ParseTypeName().ToString();
      e->children.push_back(std::move(base));
      base = std::move(e);
    }
    return base;
  }

  ExprPtr ParsePrimary() {
    const Token& t = Peek();
    auto e = std::make_unique<Expr>();
    switch (t.kind) {
      case TokenKind::kNumber:
        e->kind = ExprKind::kNumberLiteral;
        e->text = Advance().text;
        return e;
      case TokenKind::kString:
        e->kind = ExprKind::kStringLiteral;
        e->text = Advance().text;
        return e;
      case TokenKind::kParam:
        e->kind = ExprKind::kParam;
        e->text = Advance().text;
        return e;
      case TokenKind::kLeftParen: {
        Advance();
        if (Peek().IsKeyword("select")) {
          e->kind = ExprKind::kSubquery;
          e->subquery = ParseSelect();
        } else {
          e = ParseExpr();
        }
        Expect(TokenKind::kRightParen);
        return e;
      }
      default:
        break;
    }

    if (t.IsKeyword("null")) {
      Advance();
      e->kind = ExprKind::kNullLiteral;
      return e;
    }
    if (t.IsKeyword("true") || t.IsKeyword("false")) {
      e->kind = ExprKind::kBoolLiteral;
      e->text = ToLower(Advance().text);
      return e;
    }
    if (t.IsKeyword("exists")) {
      Advance();
      Expect(TokenKind::kLeftParen);
      e->kind = ExprKind::kExists;
      if (Peek().IsKeyword("select")) {
        e->subquery = ParseSelect();
      } else {
        ok_ = false;
      }
      Expect(TokenKind::kRightParen);
      return e;
    }
    if (t.IsKeyword("case")) return ParseCase();
    if (t.IsKeyword("cast")) {
      Advance();
      Expect(TokenKind::kLeftParen);
      e->kind = ExprKind::kCast;
      e->children.push_back(ParseExpr());
      ExpectKeyword("as");
      e->text = ParseTypeName().ToString();
      Expect(TokenKind::kRightParen);
      return e;
    }
    if (t.IsOperator("*")) {
      Advance();
      e->kind = ExprKind::kStar;
      return e;
    }

    if (t.Is(TokenKind::kIdentifier) || t.Is(TokenKind::kQuotedIdentifier) ||
        t.Is(TokenKind::kKeyword)) {
      // Function call?
      if (Peek(1).Is(TokenKind::kLeftParen) && !t.Is(TokenKind::kQuotedIdentifier)) {
        std::string name = Advance().text;
        Advance();  // '('
        e->kind = ExprKind::kFunction;
        e->text = std::move(name);
        if (MatchKeyword("distinct")) e->distinct_arg = true;
        if (!Peek().Is(TokenKind::kRightParen)) {
          do {
            if (Peek().IsOperator("*")) {
              Advance();
              auto star = std::make_unique<Expr>();
              star->kind = ExprKind::kStar;
              e->children.push_back(std::move(star));
            } else {
              e->children.push_back(ParseExpr());
            }
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRightParen);
        return e;
      }
      // Column reference: a / a.b / a.b.c / a.* — bare keywords allowed only
      // when they cannot start a clause (non-validating leniency).
      if (t.Is(TokenKind::kKeyword) && !IsSafeKeywordAsName(t.text)) {
        ok_ = false;
        Advance();
        return e;
      }
      e->kind = ExprKind::kColumnRef;
      e->name_parts.push_back(Advance().text);
      while (Match(TokenKind::kDot)) {
        if (Peek().IsOperator("*")) {
          Advance();
          e->kind = ExprKind::kStar;
          return e;
        }
        e->name_parts.push_back(ParseName());
      }
      return e;
    }

    ok_ = false;
    Advance();
    return e;
  }

  /// Keywords commonly used as bare column names in real schemas.
  static bool IsSafeKeywordAsName(std::string_view word) {
    static constexpr std::string_view kSafe[] = {
        "key", "type", "column", "index", "view", "if", "replace", "ignore",
        "enum", "check", "default", "unique", "limit", "offset", "values",
        "begin", "end", "desc", "asc", "to",
    };
    for (std::string_view w : kSafe) {
      if (EqualsIgnoreCase(word, w)) return true;
    }
    return false;
  }

  ExprPtr ParseCase() {
    ExpectKeyword("case");
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    if (!Peek().IsKeyword("when")) {
      e->children.push_back(ParseExpr());  // CASE <operand> WHEN ...
      e->text = "operand";
    }
    while (MatchKeyword("when")) {
      e->children.push_back(ParseExpr());
      ExpectKeyword("then");
      e->children.push_back(ParseExpr());
    }
    if (MatchKeyword("else")) {
      e->children.push_back(ParseExpr());
      e->negated = true;  // repurposed: marks the presence of an ELSE arm.
    }
    ExpectKeyword("end");
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

StatementPtr ParseStatement(std::string_view sql) {
  Parser parser(Lex(sql));
  return parser.Parse(sql);
}

std::vector<StatementPtr> ParseScript(std::string_view script) {
  std::vector<StatementPtr> out;
  for (const std::string& piece : SplitStatements(script)) {
    if (Trim(piece).empty()) continue;
    out.push_back(ParseStatement(piece));
  }
  return out;
}

}  // namespace sqlcheck::sql
