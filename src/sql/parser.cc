#include "sql/parser.h"

#include <charconv>

#include "common/strings.h"
#include "sql/lexer_detail.h"
#include "sql/splitter.h"

namespace sqlcheck::sql {

namespace {

using Kw = KeywordId;
using lexer_detail::OpCode;

/// Recursive-descent parser over the lexed token stream. `ok_` latches false
/// on the first construct we cannot handle; the caller then falls back to an
/// UnknownStatement so detection rules degrade gracefully instead of erroring.
///
/// With an arena, every node (and through `std::pmr`, every node member) is
/// bump-allocated — the steady-state parse path performs zero heap
/// allocations. Without one, nodes are ordinary heap objects (used by tests
/// and one-off callers). Keyword dispatch is by precomputed KeywordId, so no
/// token comparison re-examines string bytes.
class Parser {
 public:
  Parser(const std::vector<Token>& tokens, Arena* arena)
      : tokens_(tokens),
        arena_(arena),
        mr_(arena != nullptr ? static_cast<std::pmr::memory_resource*>(arena)
                             : std::pmr::get_default_resource()) {}

  StatementPtr Parse(std::string_view raw) {
    StatementPtr stmt = ParseStatementTop();
    // Trailing semicolon is fine; anything else unparsed means we mis-read.
    Match(TokenKind::kSemicolon);
    if (!ok_ || stmt == nullptr || !Peek().Is(TokenKind::kEnd)) {
      auto unknown = NewStmt<UnknownStatement>();
      unknown->raw_sql = Trim(raw);
      unknown->AdoptTokens(tokens_, raw);
      return unknown;
    }
    stmt->raw_sql = Trim(raw);
    return stmt;
  }

 private:
  // ------------------------------ plumbing --------------------------------
  /// Places a node in the arena when present (destructor skipped — all its
  /// members draw from the arena), else on the heap.
  template <typename T>
  std::unique_ptr<T, AstDelete> NewStmt() {
    if (arena_ != nullptr) {
      T* node = arena_->New<T>(mr_);
      node->arena_managed = true;
      return std::unique_ptr<T, AstDelete>(node);
    }
    return std::unique_ptr<T, AstDelete>(new T());
  }

  ExprPtr NewExpr(ExprKind kind) {
    Expr* node;
    if (arena_ != nullptr) {
      node = arena_->New<Expr>(mr_);
      node->arena_managed = true;
    } else {
      node = new Expr();
    }
    node->kind = kind;
    return ExprPtr(node);
  }

  ExprPtr NewBinary(std::string_view op, ExprPtr lhs, ExprPtr rhs) {
    ExprPtr e = NewExpr(ExprKind::kBinary);
    e->text = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < tokens_.size() - 1) ++pos_;
    return t;
  }
  bool Match(TokenKind kind) {
    if (Peek().Is(kind)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(Kw kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchOperator(uint8_t code) {
    if (Peek().IsOperator(code)) {
      Advance();
      return true;
    }
    return false;
  }
  void Expect(TokenKind kind) {
    if (!Match(kind)) ok_ = false;
  }
  void ExpectKeyword(Kw kw) {
    if (!MatchKeyword(kw)) ok_ = false;
  }

  /// Accepts identifiers, quoted identifiers, and (dialect-tolerantly) any
  /// keyword used as a name (e.g. a column called "type" or "key"). The view
  /// borrows from the token stream — assign it into an AST string before the
  /// next Lex on the same buffer.
  std::string_view ParseName() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kIdentifier) || t.Is(TokenKind::kQuotedIdentifier) ||
        t.Is(TokenKind::kKeyword)) {
      return Advance().text;
    }
    ok_ = false;
    return {};
  }

  /// Strict variant: keywords are NOT acceptable (used where a keyword is a
  /// legitimate clause boundary, e.g. after a table name).
  std::string_view ParseStrictName() {
    const Token& t = Peek();
    if (t.Is(TokenKind::kIdentifier) || t.Is(TokenKind::kQuotedIdentifier)) {
      return Advance().text;
    }
    ok_ = false;
    return {};
  }

  static int64_t ParseInt(std::string_view text) {
    int64_t value = 0;
    std::from_chars(text.data(), text.data() + text.size(), value);
    return value;
  }

  std::optional<int64_t> ParseIntLiteral() {
    if (Peek().Is(TokenKind::kNumber)) {
      return ParseInt(Advance().text);
    }
    return std::nullopt;
  }

  // ----------------------------- statements -------------------------------
  StatementPtr ParseStatementTop() {
    const Token& t = Peek();
    if (t.IsKeyword(Kw::kSelect)) return ParseSelect();
    if (t.IsKeyword(Kw::kInsert) || t.IsKeyword(Kw::kReplace)) return ParseInsert();
    if (t.IsKeyword(Kw::kUpdate)) return ParseUpdate();
    if (t.IsKeyword(Kw::kDelete)) return ParseDelete();
    if (t.IsKeyword(Kw::kCreate)) return ParseCreate();
    if (t.IsKeyword(Kw::kAlter)) return ParseAlter();
    if (t.IsKeyword(Kw::kDrop)) return ParseDrop();
    ok_ = false;
    return nullptr;
  }

  SelectPtr ParseSelect() {
    ExpectKeyword(Kw::kSelect);
    SelectPtr stmt = NewStmt<SelectStatement>();
    if (MatchKeyword(Kw::kDistinct)) stmt->distinct = true;
    MatchKeyword(Kw::kAll);

    // Select list.
    do {
      SelectItem item(mr_);
      item.expr = ParseExpr();
      if (MatchKeyword(Kw::kAs)) {
        item.alias = ParseName();
      } else if (Peek().Is(TokenKind::kIdentifier) || Peek().Is(TokenKind::kQuotedIdentifier)) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
    } while (Match(TokenKind::kComma));

    if (MatchKeyword(Kw::kFrom)) {
      stmt->from.push_back(ParseTableRef());
      while (true) {
        if (Match(TokenKind::kComma)) {
          stmt->from.push_back(ParseTableRef());
          continue;
        }
        std::optional<JoinType> jt = TryParseJoinPrefix();
        if (!jt.has_value()) break;
        JoinClause join(mr_);
        join.type = *jt;
        join.table = ParseTableRef();
        if (MatchKeyword(Kw::kOn)) {
          join.on = ParseExpr();
        } else if (MatchKeyword(Kw::kUsing)) {
          Expect(TokenKind::kLeftParen);
          do {
            join.using_columns.emplace_back(ParseName());
          } while (Match(TokenKind::kComma));
          Expect(TokenKind::kRightParen);
        }
        stmt->joins.push_back(std::move(join));
      }
    }

    if (MatchKeyword(Kw::kWhere)) stmt->where = ParseExpr();
    if (MatchKeyword(Kw::kGroup)) {
      ExpectKeyword(Kw::kBy);
      do {
        stmt->group_by.push_back(ParseExpr());
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword(Kw::kHaving)) stmt->having = ParseExpr();
    if (MatchKeyword(Kw::kOrder)) {
      ExpectKeyword(Kw::kBy);
      do {
        OrderItem item;
        item.expr = ParseExpr();
        if (MatchKeyword(Kw::kDesc)) {
          item.descending = true;
        } else {
          MatchKeyword(Kw::kAsc);
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenKind::kComma));
    }
    if (MatchKeyword(Kw::kLimit)) {
      stmt->limit = ParseIntLiteral();
      if (Match(TokenKind::kComma)) {  // MySQL LIMIT off, count
        stmt->offset = stmt->limit;
        stmt->limit = ParseIntLiteral();
      }
    }
    if (MatchKeyword(Kw::kOffset)) stmt->offset = ParseIntLiteral();
    return stmt;
  }

  std::optional<JoinType> TryParseJoinPrefix() {
    size_t save = pos_;
    JoinType type = JoinType::kInner;
    if (MatchKeyword(Kw::kInner)) {
      type = JoinType::kInner;
    } else if (MatchKeyword(Kw::kLeft)) {
      MatchKeyword(Kw::kOuter);
      type = JoinType::kLeft;
    } else if (MatchKeyword(Kw::kRight)) {
      MatchKeyword(Kw::kOuter);
      type = JoinType::kRight;
    } else if (MatchKeyword(Kw::kFull)) {
      MatchKeyword(Kw::kOuter);
      type = JoinType::kFull;
    } else if (MatchKeyword(Kw::kCross)) {
      type = JoinType::kCross;
    }
    if (MatchKeyword(Kw::kJoin)) return type;
    pos_ = save;
    return std::nullopt;
  }

  TableRef ParseTableRef() {
    TableRef ref(mr_);
    if (Match(TokenKind::kLeftParen)) {
      if (Peek().IsKeyword(Kw::kSelect)) {
        ref.subquery = ParseSelect();
        Expect(TokenKind::kRightParen);
      } else {
        ok_ = false;
        return ref;
      }
    } else {
      ref.name = ParseStrictName();
      while (Match(TokenKind::kDot)) {
        // schema-qualified: keep only the last component as the table name.
        ref.name = ParseStrictName();
      }
    }
    if (MatchKeyword(Kw::kAs)) {
      ref.alias = ParseName();
    } else if (Peek().Is(TokenKind::kIdentifier) || Peek().Is(TokenKind::kQuotedIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  std::unique_ptr<InsertStatement, AstDelete> ParseInsert() {
    auto stmt = NewStmt<InsertStatement>();
    if (MatchKeyword(Kw::kReplace)) {
      stmt->or_replace = true;
    } else {
      ExpectKeyword(Kw::kInsert);
      if (MatchKeyword(Kw::kOr)) {
        if (MatchKeyword(Kw::kReplace)) stmt->or_replace = true;
        else MatchKeyword(Kw::kIgnore);
      }
      MatchKeyword(Kw::kIgnore);
    }
    MatchKeyword(Kw::kInto);
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();

    if (Peek().Is(TokenKind::kLeftParen)) {
      // Could be a column list or directly a SELECT subquery.
      size_t save = pos_;
      Advance();
      if (Peek().IsKeyword(Kw::kSelect)) {
        pos_ = save;
      } else {
        do {
          stmt->columns.emplace_back(ParseName());
        } while (Match(TokenKind::kComma));
        Expect(TokenKind::kRightParen);
      }
    }

    if (MatchKeyword(Kw::kValues)) {
      do {
        Expect(TokenKind::kLeftParen);
        AstVector<ExprPtr> row(mr_);
        if (!Peek().Is(TokenKind::kRightParen)) {
          do {
            row.push_back(ParseExpr());
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRightParen);
        stmt->rows.push_back(std::move(row));
      } while (Match(TokenKind::kComma));
    } else if (Peek().IsKeyword(Kw::kSelect)) {
      stmt->select = ParseSelect();
    } else if (Match(TokenKind::kLeftParen)) {
      if (Peek().IsKeyword(Kw::kSelect)) {
        stmt->select = ParseSelect();
        Expect(TokenKind::kRightParen);
      } else {
        ok_ = false;
      }
    } else {
      ok_ = false;
    }
    // ON CONFLICT / RETURNING etc. — tolerated by skipping to end.
    SkipToStatementEnd();
    return stmt;
  }

  std::unique_ptr<UpdateStatement, AstDelete> ParseUpdate() {
    ExpectKeyword(Kw::kUpdate);
    auto stmt = NewStmt<UpdateStatement>();
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();
    if (MatchKeyword(Kw::kAs)) {
      stmt->alias = ParseName();
    } else if (Peek().Is(TokenKind::kIdentifier)) {
      stmt->alias = Advance().text;
    }
    ExpectKeyword(Kw::kSet);
    do {
      std::string_view col = ParseName();
      while (Match(TokenKind::kDot)) col = ParseName();
      if (!MatchOperator(OpCode("="))) ok_ = false;
      ExprPtr value = ParseExpr();
      stmt->assignments.emplace_back(col, std::move(value));
    } while (Match(TokenKind::kComma));
    if (MatchKeyword(Kw::kWhere)) stmt->where = ParseExpr();
    SkipToStatementEnd();
    return stmt;
  }

  std::unique_ptr<DeleteStatement, AstDelete> ParseDelete() {
    ExpectKeyword(Kw::kDelete);
    ExpectKeyword(Kw::kFrom);
    auto stmt = NewStmt<DeleteStatement>();
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();
    if (MatchKeyword(Kw::kWhere)) stmt->where = ParseExpr();
    SkipToStatementEnd();
    return stmt;
  }

  StatementPtr ParseCreate() {
    ExpectKeyword(Kw::kCreate);
    MatchKeyword(Kw::kTemporary);
    MatchKeyword(Kw::kTemp);
    bool unique = MatchKeyword(Kw::kUnique);
    if (MatchKeyword(Kw::kIndex)) return ParseCreateIndex(unique);
    if (unique) {
      ok_ = false;
      return nullptr;
    }
    if (MatchKeyword(Kw::kTable)) return ParseCreateTable();
    ok_ = false;  // CREATE VIEW / TRIGGER / ... -> Unknown fallback.
    return nullptr;
  }

  std::unique_ptr<CreateIndexStatement, AstDelete> ParseCreateIndex(bool unique) {
    auto stmt = NewStmt<CreateIndexStatement>();
    stmt->unique = unique;
    if (MatchKeyword(Kw::kIf)) {
      ExpectKeyword(Kw::kNot);
      ExpectKeyword(Kw::kExists);
      stmt->if_not_exists = true;
    }
    stmt->index = ParseStrictName();
    ExpectKeyword(Kw::kOn);
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();
    Expect(TokenKind::kLeftParen);
    do {
      stmt->columns.emplace_back(ParseName());
      MatchKeyword(Kw::kAsc);
      MatchKeyword(Kw::kDesc);
    } while (Match(TokenKind::kComma));
    Expect(TokenKind::kRightParen);
    SkipToStatementEnd();
    return stmt;
  }

  std::unique_ptr<CreateTableStatement, AstDelete> ParseCreateTable() {
    auto stmt = NewStmt<CreateTableStatement>();
    if (MatchKeyword(Kw::kIf)) {
      ExpectKeyword(Kw::kNot);
      ExpectKeyword(Kw::kExists);
      stmt->if_not_exists = true;
    }
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();
    Expect(TokenKind::kLeftParen);
    do {
      if (IsTableConstraintStart()) {
        stmt->constraints.push_back(ParseTableConstraint());
      } else {
        stmt->columns.push_back(ParseColumnDef());
      }
    } while (Match(TokenKind::kComma));
    Expect(TokenKind::kRightParen);
    SkipToStatementEnd();  // engine=..., WITHOUT ROWID, etc.
    return stmt;
  }

  bool IsTableConstraintStart() const {
    const Token& t = Peek();
    if (t.IsKeyword(Kw::kConstraint)) return true;
    if (t.IsKeyword(Kw::kPrimary) && Peek(1).IsKeyword(Kw::kKey)) return true;
    if (t.IsKeyword(Kw::kForeign) && Peek(1).IsKeyword(Kw::kKey)) return true;
    if (t.IsKeyword(Kw::kUnique) && Peek(1).Is(TokenKind::kLeftParen)) return true;
    if (t.IsKeyword(Kw::kCheck) && Peek(1).Is(TokenKind::kLeftParen)) return true;
    return false;
  }

  TableConstraintAst ParseTableConstraint() {
    TableConstraintAst c(mr_);
    if (MatchKeyword(Kw::kConstraint)) c.name = ParseName();
    if (MatchKeyword(Kw::kPrimary)) {
      ExpectKeyword(Kw::kKey);
      c.kind = TableConstraintKind::kPrimaryKey;
      Expect(TokenKind::kLeftParen);
      do {
        c.columns.emplace_back(ParseName());
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    } else if (MatchKeyword(Kw::kForeign)) {
      ExpectKeyword(Kw::kKey);
      c.kind = TableConstraintKind::kForeignKey;
      Expect(TokenKind::kLeftParen);
      do {
        c.columns.emplace_back(ParseName());
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
      ExpectKeyword(Kw::kReferences);
      c.reference = ParseForeignKeyTarget();
    } else if (MatchKeyword(Kw::kUnique)) {
      c.kind = TableConstraintKind::kUnique;
      Expect(TokenKind::kLeftParen);
      do {
        c.columns.emplace_back(ParseName());
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    } else if (MatchKeyword(Kw::kCheck)) {
      c.kind = TableConstraintKind::kCheck;
      Expect(TokenKind::kLeftParen);
      c.check = ParseExpr();
      Expect(TokenKind::kRightParen);
    } else {
      ok_ = false;
    }
    return c;
  }

  ForeignKeyRefAst ParseForeignKeyTarget() {
    ForeignKeyRefAst ref(mr_);
    ref.table = ParseStrictName();
    while (Match(TokenKind::kDot)) ref.table = ParseStrictName();
    if (Match(TokenKind::kLeftParen)) {
      do {
        ref.columns.emplace_back(ParseName());
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    }
    while (MatchKeyword(Kw::kOn)) {
      if (MatchKeyword(Kw::kDelete)) {
        if (MatchKeyword(Kw::kCascade)) {
          ref.on_delete_cascade = true;
        } else {
          Advance();  // SET NULL / RESTRICT / NO ACTION — skip one word...
          MatchKeyword(Kw::kNull);  // ("action" lexes as an identifier; the
                                    // trailing word is tolerated by skip-to-end)
        }
      } else if (MatchKeyword(Kw::kUpdate)) {
        if (!MatchKeyword(Kw::kCascade)) {
          Advance();
          MatchKeyword(Kw::kNull);
        }
      } else {
        break;
      }
    }
    return ref;
  }

  ColumnDefAst ParseColumnDef() {
    ColumnDefAst col(mr_);
    col.name = ParseStrictName();
    col.type = ParseTypeName();
    // Column options in any order.
    while (true) {
      if (MatchKeyword(Kw::kNot)) {
        ExpectKeyword(Kw::kNull);
        col.not_null = true;
      } else if (MatchKeyword(Kw::kNull)) {
        // explicit NULLable
      } else if (MatchKeyword(Kw::kPrimary)) {
        ExpectKeyword(Kw::kKey);
        col.primary_key = true;
      } else if (MatchKeyword(Kw::kUnique)) {
        col.unique = true;
      } else if (MatchKeyword(Kw::kAutoIncrement) || MatchKeyword(Kw::kAutoincrement)) {
        col.auto_increment = true;
      } else if (MatchKeyword(Kw::kDefault)) {
        col.default_value = ParsePrimary();
      } else if (MatchKeyword(Kw::kReferences)) {
        col.references = ParseForeignKeyTarget();
      } else if (MatchKeyword(Kw::kCheck)) {
        Expect(TokenKind::kLeftParen);
        col.check = ParseExpr();
        Expect(TokenKind::kRightParen);
      } else if (MatchKeyword(Kw::kCollate)) {
        ParseName();
      } else if (MatchKeyword(Kw::kConstraint)) {
        ParseName();  // named inline constraint; the kind follows next loop.
      } else {
        break;
      }
    }
    return col;
  }

  TypeName ParseTypeName() {
    TypeName type(mr_);
    const Token& t = Peek();
    if (!(t.Is(TokenKind::kIdentifier) || t.Is(TokenKind::kKeyword))) {
      ok_ = false;
      return type;
    }
    type.name = Advance().text;
    // Multi-word types: DOUBLE PRECISION, CHARACTER VARYING, TIMESTAMP WITH(OUT) TIME ZONE.
    if (EqualsIgnoreCase(type.name, "double") && Peek().Is(TokenKind::kIdentifier) &&
        EqualsIgnoreCase(Peek().text, "precision")) {
      type.name += ' ';
      type.name += Advance().text;
    }
    if (EqualsIgnoreCase(type.name, "character") && Peek().Is(TokenKind::kIdentifier) &&
        EqualsIgnoreCase(Peek().text, "varying")) {
      type.name += ' ';
      type.name += Advance().text;
    }
    if (EqualsIgnoreCase(type.name, "enum") && Peek().Is(TokenKind::kLeftParen)) {
      Advance();
      do {
        if (Peek().Is(TokenKind::kString)) {
          type.enum_values.emplace_back(Advance().text);
        } else {
          ok_ = false;
          break;
        }
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    } else if (Match(TokenKind::kLeftParen)) {
      do {
        if (Peek().Is(TokenKind::kNumber)) {
          type.params.push_back(ParseInt(Advance().text));
        } else {
          Advance();  // e.g. VARCHAR(MAX)
        }
      } while (Match(TokenKind::kComma));
      Expect(TokenKind::kRightParen);
    }
    // TIMESTAMP/TIME WITH|WITHOUT TIME ZONE.
    if (Peek().IsKeyword(Kw::kWith) && Peek(1).Is(TokenKind::kIdentifier) &&
        EqualsIgnoreCase(Peek(1).text, "time")) {
      Advance();
      Advance();
      if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "zone")) Advance();
      type.with_time_zone = true;
    } else if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "without")) {
      Advance();
      if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "time")) Advance();
      if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "zone")) Advance();
    }
    return type;
  }

  StatementPtr ParseAlter() {
    ExpectKeyword(Kw::kAlter);
    ExpectKeyword(Kw::kTable);
    auto stmt = NewStmt<AlterTableStatement>();
    if (MatchKeyword(Kw::kIf)) {
      ExpectKeyword(Kw::kExists);
      stmt->if_exists = true;
    }
    stmt->table = ParseStrictName();
    while (Match(TokenKind::kDot)) stmt->table = ParseStrictName();

    if (MatchKeyword(Kw::kAdd)) {
      if (IsTableConstraintStart()) {
        stmt->action = AlterAction::kAddConstraint;
        stmt->constraint = ParseTableConstraint();
      } else {
        MatchKeyword(Kw::kColumn);
        stmt->action = AlterAction::kAddColumn;
        stmt->column = ParseColumnDef();
      }
    } else if (MatchKeyword(Kw::kDrop)) {
      if (MatchKeyword(Kw::kConstraint)) {
        stmt->action = AlterAction::kDropConstraint;
        if (MatchKeyword(Kw::kIf)) {
          ExpectKeyword(Kw::kExists);
          stmt->if_exists = true;
        }
        stmt->target_name = ParseName();
      } else {
        MatchKeyword(Kw::kColumn);
        stmt->action = AlterAction::kDropColumn;
        if (MatchKeyword(Kw::kIf)) {
          ExpectKeyword(Kw::kExists);
          stmt->if_exists = true;
        }
        stmt->target_name = ParseName();
      }
    } else if (MatchKeyword(Kw::kAlter)) {
      MatchKeyword(Kw::kColumn);
      stmt->action = AlterAction::kAlterColumnType;
      stmt->column.name = ParseStrictName();
      MatchKeyword(Kw::kSet);  // tolerate SET DATA TYPE
      MatchKeyword(Kw::kType);
      if (Peek().Is(TokenKind::kIdentifier) && EqualsIgnoreCase(Peek().text, "data")) {
        Advance();
        MatchKeyword(Kw::kType);
      }
      stmt->column.type = ParseTypeName();
    } else if (MatchKeyword(Kw::kModify)) {
      MatchKeyword(Kw::kColumn);
      stmt->action = AlterAction::kAlterColumnType;
      stmt->column.name = ParseStrictName();
      stmt->column.type = ParseTypeName();
    } else if (MatchKeyword(Kw::kRename)) {
      if (MatchKeyword(Kw::kColumn)) {
        stmt->action = AlterAction::kRenameColumn;
        stmt->target_name = ParseStrictName();
        ExpectKeyword(Kw::kTo);
        stmt->new_name = ParseStrictName();
      } else {
        MatchKeyword(Kw::kTo);
        stmt->action = AlterAction::kRenameTable;
        stmt->new_name = ParseStrictName();
      }
    } else {
      ok_ = false;
    }
    SkipToStatementEnd();
    return stmt;
  }

  StatementPtr ParseDrop() {
    ExpectKeyword(Kw::kDrop);
    if (MatchKeyword(Kw::kTable)) {
      auto stmt = NewStmt<DropTableStatement>();
      if (MatchKeyword(Kw::kIf)) {
        ExpectKeyword(Kw::kExists);
        stmt->if_exists = true;
      }
      stmt->table = ParseStrictName();
      SkipToStatementEnd();
      return stmt;
    }
    if (MatchKeyword(Kw::kIndex)) {
      auto stmt = NewStmt<DropIndexStatement>();
      if (MatchKeyword(Kw::kIf)) {
        ExpectKeyword(Kw::kExists);
        stmt->if_exists = true;
      }
      stmt->index = ParseStrictName();
      SkipToStatementEnd();
      return stmt;
    }
    ok_ = false;
    return nullptr;
  }

  /// Tolerantly consumes any trailing clause we do not model (ENGINE=...,
  /// RETURNING, ON CONFLICT...). A lone semicolon/end stops us.
  void SkipToStatementEnd() {
    while (!Peek().Is(TokenKind::kEnd) && !Peek().Is(TokenKind::kSemicolon)) Advance();
  }

  // ---------------------------- expressions -------------------------------
  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (MatchKeyword(Kw::kOr)) {
      lhs = NewBinary("OR", std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    while (MatchKeyword(Kw::kAnd)) {
      lhs = NewBinary("AND", std::move(lhs), ParseNot());
    }
    return lhs;
  }

  ExprPtr ParseNot() {
    if (MatchKeyword(Kw::kNot)) {
      ExprPtr e = NewExpr(ExprKind::kUnary);
      e->text = "NOT";
      e->children.push_back(ParseNot());
      return e;
    }
    return ParseComparison();
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseAdditive();
    while (true) {
      const Token& t = Peek();
      if (t.Is(TokenKind::kOperator) && IsComparisonOp(t.op)) {
        std::string_view op = Advance().text;
        lhs = NewBinary(op, std::move(lhs), ParseAdditive());
        continue;
      }
      bool negated = false;
      size_t save = pos_;
      if (Peek().IsKeyword(Kw::kNot)) {
        Advance();
        negated = true;
      }
      if (MatchKeyword(Kw::kLike) || MatchKeyword(Kw::kIlike) ||
          MatchKeyword(Kw::kRegexp) || MatchKeyword(Kw::kRlike)) {
        ExprPtr e = NewExpr(ExprKind::kLike);
        e->text = ToUpper(tokens_[pos_ - 1].text);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->children.push_back(ParseAdditive());
        if (MatchKeyword(Kw::kEscape)) ParsePrimary();
        lhs = std::move(e);
        continue;
      }
      if (MatchKeyword(Kw::kSimilar)) {
        ExpectKeyword(Kw::kTo);
        ExprPtr e = NewExpr(ExprKind::kLike);
        e->text = "SIMILAR TO";
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->children.push_back(ParseAdditive());
        lhs = std::move(e);
        continue;
      }
      if (MatchKeyword(Kw::kIn)) {
        ExprPtr e = NewExpr(ExprKind::kIn);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        Expect(TokenKind::kLeftParen);
        if (Peek().IsKeyword(Kw::kSelect)) {
          e->subquery = ParseSelect();
        } else {
          do {
            e->children.push_back(ParseExpr());
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRightParen);
        lhs = std::move(e);
        continue;
      }
      if (MatchKeyword(Kw::kBetween)) {
        ExprPtr e = NewExpr(ExprKind::kBetween);
        e->negated = negated;
        e->children.push_back(std::move(lhs));
        e->children.push_back(ParseAdditive());
        ExpectKeyword(Kw::kAnd);
        e->children.push_back(ParseAdditive());
        lhs = std::move(e);
        continue;
      }
      if (negated) {
        pos_ = save;  // NOT belonged to something else.
        break;
      }
      if (MatchKeyword(Kw::kIs)) {
        bool is_not = MatchKeyword(Kw::kNot);
        if (MatchKeyword(Kw::kNull)) {
          ExprPtr e = NewExpr(ExprKind::kIsNull);
          e->negated = is_not;
          e->children.push_back(std::move(lhs));
          lhs = std::move(e);
          continue;
        }
        // IS TRUE / IS FALSE / IS DISTINCT FROM — treat as binary with "IS".
        lhs = NewBinary(is_not ? "IS NOT" : "IS", std::move(lhs), ParseAdditive());
        continue;
      }
      break;
    }
    return lhs;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    while (true) {
      if (MatchOperator(OpCode("||"))) {
        lhs = NewBinary("||", std::move(lhs), ParseMultiplicative());
      } else if (MatchOperator(OpCode("+"))) {
        lhs = NewBinary("+", std::move(lhs), ParseMultiplicative());
      } else if (MatchOperator(OpCode("-"))) {
        lhs = NewBinary("-", std::move(lhs), ParseMultiplicative());
      } else {
        break;
      }
    }
    return lhs;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnary();
    while (true) {
      if (MatchOperator(OpCode("*"))) {
        lhs = NewBinary("*", std::move(lhs), ParseUnary());
      } else if (MatchOperator(OpCode("/"))) {
        lhs = NewBinary("/", std::move(lhs), ParseUnary());
      } else if (MatchOperator(OpCode("%"))) {
        lhs = NewBinary("%", std::move(lhs), ParseUnary());
      } else {
        break;
      }
    }
    return lhs;
  }

  ExprPtr ParseUnary() {
    if (MatchOperator(OpCode("-"))) {
      ExprPtr e = NewExpr(ExprKind::kUnary);
      e->text = "-";
      e->children.push_back(ParseUnary());
      return ParsePostfix(std::move(e));
    }
    if (MatchOperator(OpCode("+"))) return ParseUnary();
    return ParsePostfix(ParsePrimary());
  }

  ExprPtr ParsePostfix(ExprPtr base) {
    while (MatchOperator(OpCode("::"))) {
      ExprPtr e = NewExpr(ExprKind::kCast);
      e->text = ParseTypeName().ToString();
      e->children.push_back(std::move(base));
      base = std::move(e);
    }
    return base;
  }

  ExprPtr ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kNumber: {
        ExprPtr e = NewExpr(ExprKind::kNumberLiteral);
        e->text = Advance().text;
        return e;
      }
      case TokenKind::kString: {
        ExprPtr e = NewExpr(ExprKind::kStringLiteral);
        e->text = Advance().text;
        return e;
      }
      case TokenKind::kParam: {
        ExprPtr e = NewExpr(ExprKind::kParam);
        e->text = Advance().text;
        return e;
      }
      case TokenKind::kLeftParen: {
        Advance();
        ExprPtr e;
        if (Peek().IsKeyword(Kw::kSelect)) {
          e = NewExpr(ExprKind::kSubquery);
          e->subquery = ParseSelect();
        } else {
          e = ParseExpr();
        }
        Expect(TokenKind::kRightParen);
        return e;
      }
      default:
        break;
    }

    if (t.IsKeyword(Kw::kNull)) {
      Advance();
      return NewExpr(ExprKind::kNullLiteral);
    }
    if (t.IsKeyword(Kw::kTrue) || t.IsKeyword(Kw::kFalse)) {
      ExprPtr e = NewExpr(ExprKind::kBoolLiteral);
      e->text = ToLower(Advance().text);
      return e;
    }
    if (t.IsKeyword(Kw::kExists)) {
      Advance();
      Expect(TokenKind::kLeftParen);
      ExprPtr e = NewExpr(ExprKind::kExists);
      if (Peek().IsKeyword(Kw::kSelect)) {
        e->subquery = ParseSelect();
      } else {
        ok_ = false;
      }
      Expect(TokenKind::kRightParen);
      return e;
    }
    if (t.IsKeyword(Kw::kCase)) return ParseCase();
    if (t.IsKeyword(Kw::kCast)) {
      Advance();
      Expect(TokenKind::kLeftParen);
      ExprPtr e = NewExpr(ExprKind::kCast);
      e->children.push_back(ParseExpr());
      ExpectKeyword(Kw::kAs);
      e->text = ParseTypeName().ToString();
      Expect(TokenKind::kRightParen);
      return e;
    }
    if (t.IsOperator(OpCode("*"))) {
      Advance();
      return NewExpr(ExprKind::kStar);
    }

    if (t.Is(TokenKind::kIdentifier) || t.Is(TokenKind::kQuotedIdentifier) ||
        t.Is(TokenKind::kKeyword)) {
      // Function call?
      if (Peek(1).Is(TokenKind::kLeftParen) && !t.Is(TokenKind::kQuotedIdentifier)) {
        std::string_view name = Advance().text;
        Advance();  // '('
        ExprPtr e = NewExpr(ExprKind::kFunction);
        e->text = name;
        if (MatchKeyword(Kw::kDistinct)) e->distinct_arg = true;
        if (!Peek().Is(TokenKind::kRightParen)) {
          do {
            if (Peek().IsOperator(OpCode("*"))) {
              Advance();
              e->children.push_back(NewExpr(ExprKind::kStar));
            } else {
              e->children.push_back(ParseExpr());
            }
          } while (Match(TokenKind::kComma));
        }
        Expect(TokenKind::kRightParen);
        return e;
      }
      // Column reference: a / a.b / a.b.c / a.* — bare keywords allowed only
      // when they cannot start a clause (non-validating leniency).
      if (t.Is(TokenKind::kKeyword) && !IsSafeKeywordAsName(t.keyword)) {
        ok_ = false;
        Advance();
        return NewExpr(ExprKind::kRaw);
      }
      ExprPtr e = NewExpr(ExprKind::kColumnRef);
      e->name_parts.emplace_back(Advance().text);
      while (Match(TokenKind::kDot)) {
        if (Peek().IsOperator(OpCode("*"))) {
          Advance();
          e->kind = ExprKind::kStar;
          return e;
        }
        e->name_parts.emplace_back(ParseName());
      }
      return e;
    }

    ok_ = false;
    Advance();
    return NewExpr(ExprKind::kRaw);
  }

  static bool IsComparisonOp(uint8_t op) {
    switch (op) {
      case OpCode("="):
      case OpCode("=="):
      case OpCode("!="):
      case OpCode("<>"):
      case OpCode("<"):
      case OpCode(">"):
      case OpCode("<="):
      case OpCode(">="):
      case OpCode("~*"):
      case OpCode("!~"):
      case OpCode("!~*"):
      case OpCode("~"):
        return true;
      default:
        return false;
    }
  }

  /// Keywords commonly used as bare column names in real schemas.
  static bool IsSafeKeywordAsName(KeywordId kw) {
    switch (kw) {
      case Kw::kKey:
      case Kw::kType:
      case Kw::kColumn:
      case Kw::kIndex:
      case Kw::kView:
      case Kw::kIf:
      case Kw::kReplace:
      case Kw::kIgnore:
      case Kw::kEnum:
      case Kw::kCheck:
      case Kw::kDefault:
      case Kw::kUnique:
      case Kw::kLimit:
      case Kw::kOffset:
      case Kw::kValues:
      case Kw::kBegin:
      case Kw::kEnd:
      case Kw::kDesc:
      case Kw::kAsc:
      case Kw::kTo:
        return true;
      default:
        return false;
    }
  }

  ExprPtr ParseCase() {
    ExpectKeyword(Kw::kCase);
    ExprPtr e = NewExpr(ExprKind::kCase);
    if (!Peek().IsKeyword(Kw::kWhen)) {
      e->children.push_back(ParseExpr());  // CASE <operand> WHEN ...
      e->text = "operand";
    }
    while (MatchKeyword(Kw::kWhen)) {
      e->children.push_back(ParseExpr());
      ExpectKeyword(Kw::kThen);
      e->children.push_back(ParseExpr());
    }
    if (MatchKeyword(Kw::kElse)) {
      e->children.push_back(ParseExpr());
      e->negated = true;  // repurposed: marks the presence of an ELSE arm.
    }
    ExpectKeyword(Kw::kEnd);
    return e;
  }

  const std::vector<Token>& tokens_;
  Arena* arena_;
  std::pmr::memory_resource* mr_;
  size_t pos_ = 0;
  bool ok_ = true;
};

StatementPtr ParseWithBuffer(std::string_view sql, Arena* arena, TokenBuffer& buffer) {
  const std::vector<Token>& tokens = Lex(sql, buffer);
  Parser parser(tokens, arena);
  return parser.Parse(sql);
}

}  // namespace

StatementPtr ParseStatement(std::string_view sql) {
  TokenBuffer buffer;
  return ParseWithBuffer(sql, nullptr, buffer);
}

StatementPtr ParseStatement(std::string_view sql, Arena* arena, TokenBuffer* buffer) {
  if (buffer != nullptr) return ParseWithBuffer(sql, arena, *buffer);
  TokenBuffer local;
  return ParseWithBuffer(sql, arena, local);
}

std::vector<StatementPtr> ParseScript(std::string_view script) {
  return ParseScript(script, nullptr, nullptr);
}

std::vector<StatementPtr> ParseScript(std::string_view script, Arena* arena,
                                      TokenBuffer* buffer) {
  TokenBuffer local;
  TokenBuffer& buf = buffer != nullptr ? *buffer : local;
  std::vector<StatementPtr> out;
  for (std::string_view piece : SplitStatements(script, nullptr, &buf)) {
    if (Trim(piece).empty()) continue;
    out.push_back(ParseWithBuffer(piece, arena, buf));
  }
  return out;
}

}  // namespace sqlcheck::sql
