#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "sql/token.h"

namespace sqlcheck::sql {

using sqlcheck::Arena;

/// \brief Options controlling lexing behaviour.
struct LexerOptions {
  bool keep_comments = false;  ///< Emit kComment tokens instead of skipping.
};

/// \brief Reusable token storage for the zero-copy lexer: the token vector
/// plus a side arena holding the rare normalized payloads (escape-stripped
/// strings/identifiers) that cannot be views into the source. Reusing one
/// buffer across statements makes the steady-state lex path allocation-free:
/// the vector's capacity and the arena's chunk are recycled by `Clear()`.
///
/// Tokens returned by `Lex` view the source buffer and this TokenBuffer;
/// they are invalidated by the next `Lex`/`Clear` on the same buffer.
class TokenBuffer {
 public:
  const std::vector<Token>& tokens() const { return tokens_; }

  void Clear() {
    tokens_.clear();
    // Normalized payloads are rare (escape-stripped strings only), so the
    // arena is almost always untouched — skipping the out-of-line Reset()
    // keeps the steady-state per-statement cost to two size stores.
    if (norm_.bytes_used() != 0) norm_.Reset();
    scratch_.clear();
  }

  /// Heap bytes this buffer holds onto between Lex() calls (token vector
  /// capacity, normalization arena reservation, escape workspace). Grows to
  /// the largest statement ever lexed — which is why long-lived sessions
  /// call Trim().
  size_t reserved_bytes() const {
    return tokens_.capacity() * sizeof(Token) + norm_.bytes_reserved() +
           scratch_.capacity();
  }

  /// Releases high-water scratch memory: the normalization arena trims to
  /// `keep_bytes` and the token vector / workspace drop their capacity. One
  /// pathological statement must not pin megabytes for the rest of a
  /// session's life. Invalidates any outstanding tokens — only call between
  /// Lex() rounds.
  void Trim(size_t keep_bytes = 0) {
    tokens_.clear();
    tokens_.shrink_to_fit();
    norm_.Reset();
    norm_.Trim(keep_bytes);
    scratch_.clear();
    scratch_.shrink_to_fit();
  }

 private:
  friend const std::vector<Token>& Lex(std::string_view, TokenBuffer&,
                                       const LexerOptions&);

  std::vector<Token> tokens_;
  Arena norm_{4 * 1024};  ///< Normalized payload bytes.
  std::string scratch_;   ///< Escape-stripping workspace (capacity reused).
};

/// \brief Dialect-tolerant, non-validating SQL lexer.
///
/// Accepts PostgreSQL / MySQL / SQLite / SQL Server flavored input: all four
/// identifier-quoting styles, `--` / `#` / `/* */` comments, dollar-quoted
/// strings, and the common bind-parameter spellings (`?`, `%s`, `:name`,
/// `$1`). Never fails: unknown bytes lex as single-character operators so the
/// parser always has a token stream to work with.
///
/// Zero-copy: clears `buffer` and fills it with tokens whose `text` views
/// `sql` (or the buffer's side arena for normalized payloads). `sql` must
/// stay alive and unmodified while the tokens are in use. Returns
/// `buffer.tokens()` for convenience.
const std::vector<Token>& Lex(std::string_view sql, TokenBuffer& buffer,
                              const LexerOptions& options = {});

}  // namespace sqlcheck::sql
