#pragma once

#include <string_view>
#include <vector>

#include "sql/token.h"

namespace sqlcheck::sql {

/// \brief Options controlling lexing behaviour.
struct LexerOptions {
  bool keep_comments = false;  ///< Emit kComment tokens instead of skipping.
};

/// \brief Dialect-tolerant, non-validating SQL lexer.
///
/// Accepts PostgreSQL / MySQL / SQLite / SQL Server flavored input: all four
/// identifier-quoting styles, `--` / `#` / `/* */` comments, dollar-quoted
/// strings, and the common bind-parameter spellings (`?`, `%s`, `:name`,
/// `$1`). Never fails: unknown bytes lex as single-character operators so the
/// parser always has a token stream to work with.
std::vector<Token> Lex(std::string_view sql, const LexerOptions& options = {});

}  // namespace sqlcheck::sql
