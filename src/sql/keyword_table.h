#pragma once

#include <cstdint>
#include <string_view>

#include "sql/keywords.h"

// Keyword probe table shared by LookupKeyword (token.cc) and the lexer's
// in-register word fast path (lexer.cc). Spellings are packed as case-folded
// u64 lanes so a probe is one or two integer compares — no memcmp, no
// per-byte loop — and the whole table is constexpr, so there is no
// static-init guard on the hot path.
//
// Fold rule: OR 0x20 into every byte. On the identifier-character alphabet a
// word token can contain ({A-Z a-z 0-9 _ $}) this maps A-Z onto a-z and is
// otherwise injective (digits and `$` already have the bit set; `_` folds to
// 0x7F, which no other identifier character folds to), so fold-equality is
// exactly ASCII-case-insensitive equality. Byte i of a spelling sits at bits
// [8i, 8i+8) with zero padding above the length — the same layout a
// little-endian u64 load of the source produces, which is what lets the
// lexer reuse its SWAR scan register as the probe key.
namespace sqlcheck::sql::keyword_table {

/// Canonical spellings, indexed by KeywordId value (kNoKeyword at 0).
inline constexpr std::string_view kSpellings[] = {
    "",
    "select", "from", "where", "group", "by",
    "having", "order", "limit", "offset", "insert",
    "into", "values", "update", "set", "delete",
    "create", "table", "index", "view", "drop",
    "alter", "add", "column", "constraint", "primary",
    "key", "foreign", "references", "unique", "check",
    "not", "null", "default", "and", "or",
    "in", "between", "like", "ilike", "regexp",
    "rlike", "similar", "is", "as", "on",
    "join", "inner", "left", "right", "full",
    "outer", "cross", "natural", "using", "union",
    "all", "distinct", "exists", "case", "when",
    "then", "else", "end", "asc", "desc",
    "if", "cascade", "restrict", "true", "false",
    "enum", "auto_increment", "autoincrement", "serial",
    "temporary", "temp", "escape", "collate", "rename",
    "to", "type", "modify", "change", "with",
    "recursive", "returning", "conflict", "replace", "ignore",
    "explain", "analyze", "vacuum", "begin", "commit",
    "rollback", "transaction", "grant", "revoke", "truncate",
    "intersect", "except", "any", "some", "cast",
};
inline constexpr size_t kKeywordCount = sizeof(kSpellings) / sizeof(kSpellings[0]);
static_assert(static_cast<size_t>(KeywordId::kCast) + 1 == kKeywordCount,
              "KeywordId enum and spelling table must stay in lockstep");

// The longest keyword is "auto_increment" (14 bytes); longer words can skip
// the probe entirely.
inline constexpr size_t kMaxKeywordLength = 14;

// Probes accept lengths up to 16 (the lexer's 16-byte scan block): the extra
// buckets are simply empty, which spares the hot path a length-range branch.
inline constexpr size_t kMaxProbeLength = 16;

constexpr uint64_t FoldLane(char c) {
  return static_cast<uint64_t>(static_cast<unsigned char>(c)) | 0x20u;
}

struct FoldedSpelling {
  uint64_t lo = 0, hi = 0;
  KeywordId id = KeywordId::kNoKeyword;
};

// A folded (lo, hi) pair identifies its spelling *including length*: bytes
// above the length are zero, and no identifier byte folds to zero, so two
// words of different lengths can never share a key. That lets the probe
// hash the key pair alone — no bucket loop and no length parameter. A
// strictly perfect (1-entry) hash would need a far larger table (birthday
// bound), so slots hold two entries and the probe is two straight-line
// compares. 256 slots is the smallest power of two for which the
// multiplier family below still packs ~104 keys two-per-slot (verified at
// compile time); smaller tables mean fewer L1 lines fighting the input
// stream, and the probe runs for every word token.
inline constexpr size_t kHashBits = 8;  // 256 slots x 2 entries for ~104 keys
inline constexpr size_t kHashSlots = size_t{1} << kHashBits;

constexpr uint64_t HashKey(uint64_t lo, uint64_t hi, uint64_t mult) {
  // One multiply, not two: xor-merging hi before the mix costs nothing on
  // the common <= 8-byte word (hi == 0) and the slot search below verifies
  // the weaker mix still packs two-per-slot.
  return ((lo ^ hi) * mult) >> (64 - kHashBits);
}

constexpr FoldedSpelling FoldSpelling(size_t i) {
  std::string_view w = kSpellings[i];
  FoldedSpelling e;
  e.id = static_cast<KeywordId>(i);
  for (size_t j = 0; j < w.size() && j < 8; ++j) e.lo |= FoldLane(w[j]) << (8 * j);
  for (size_t j = 8; j < w.size(); ++j) e.hi |= FoldLane(w[j]) << (8 * (j - 8));
  return e;
}

/// Probe keys split from their KeywordIds (structure-of-arrays): a slot's
/// two 16-byte keys are 32 contiguous bytes whose pair offset (32 * h) never
/// straddles a cache line, so the compare path — which runs and *misses* for
/// every plain identifier — touches exactly one key line. The id array is
/// 2 * kHashSlots single bytes (all of it fits in a handful of lines) and is
/// only read on a hit.
struct ProbeKey {
  uint64_t lo = 0, hi = 0;
};

struct HashTable {
  alignas(64) ProbeKey key[2 * kHashSlots] = {};  ///< entries 2h and 2h+1
  KeywordId id[2 * kHashSlots] = {};
  uint64_t mult = 0;  ///< 0 = no overflow-free multiplier found
};

/// Searches a family of odd multipliers (a splitmix64-style sequence) for
/// one that maps no more than two keyword keys to any slot. At 256 slots
/// roughly one multiplier in twenty qualifies, so a few hundred candidates
/// make the compile-time search effectively certain to land. Empty entries
/// keep lo == 0, which no real key can equal.
constexpr HashTable MakeHashTable() {
  HashTable t;
  uint64_t seed = 0x9E3779B97F4A7C15ull;
  for (int attempt = 0; attempt < 1024; ++attempt) {
    // splitmix64 step: well-mixed, and | 1 keeps the multiplier odd.
    seed += 0x9E3779B97F4A7C15ull;
    uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    const uint64_t mult = (z ^ (z >> 31)) | 1;
    bool ok = true;
    for (auto& k : t.key) k = ProbeKey{};
    for (auto& d : t.id) d = KeywordId::kNoKeyword;
    for (size_t i = 1; i < kKeywordCount && ok; ++i) {
      FoldedSpelling e = FoldSpelling(i);
      uint64_t h = HashKey(e.lo, e.hi, mult);
      if (t.key[2 * h].lo == 0) {
        t.key[2 * h] = ProbeKey{e.lo, e.hi};
        t.id[2 * h] = e.id;
      } else if (t.key[2 * h + 1].lo == 0) {
        t.key[2 * h + 1] = ProbeKey{e.lo, e.hi};
        t.id[2 * h + 1] = e.id;
      } else {
        ok = false;
      }
    }
    if (ok) {
      t.mult = mult;
      return t;
    }
  }
  return t;
}

inline constexpr HashTable kHash = MakeHashTable();
static_assert(kHash.mult != 0, "no overflow-free keyword hash multiplier found");

/// Keep-masks for a probe key of `len` bytes: key = (raw | 0x20 lanes) masked
/// by kLoMask/kHiMask. Table lookups instead of data-dependent shifts and a
/// `len < 8` branch — word lengths mix freely, so that branch mispredicts.
struct KeyMasks {
  uint64_t lo[kMaxProbeLength + 1] = {};
  uint64_t hi[kMaxProbeLength + 1] = {};
};
constexpr KeyMasks MakeKeyMasks() {
  KeyMasks m;
  for (size_t len = 0; len <= kMaxProbeLength; ++len) {
    for (size_t j = 0; j < len && j < 8; ++j) m.lo[len] |= 0xFFull << (8 * j);
    for (size_t j = 8; j < len && j < 16; ++j) m.hi[len] |= 0xFFull << (8 * (j - 8));
  }
  return m;
}
inline constexpr KeyMasks kKeyMasks = MakeKeyMasks();

/// Probe with a pre-folded key: byte i of the word at bits [8i, 8i+8) of
/// lo/hi, OR 0x20 applied, zero padding above the word length (1 to
/// kMaxProbeLength bytes). Words longer than kMaxProbeLength must not be
/// probed — their truncated key could alias a shorter word's key.
inline KeywordId LookupFolded(uint64_t lo, uint64_t hi) {
  const size_t h = 2 * HashKey(lo, hi, kHash.mult);
  const ProbeKey* k = &kHash.key[h];
  KeywordId id = (k[0].lo == lo && k[0].hi == hi) ? kHash.id[h] : KeywordId::kNoKeyword;
  return (k[1].lo == lo && k[1].hi == hi) ? kHash.id[h + 1] : id;
}

}  // namespace sqlcheck::sql::keyword_table
