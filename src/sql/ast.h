#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sql/token.h"

namespace sqlcheck::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// \brief Discriminant for the single-struct expression tree.
///
/// A flat tagged struct (rather than a class hierarchy) keeps cloning,
/// printing, and rule-side pattern matching simple — the same trade-off the
/// paper's annotated `sqlparse` tree makes.
enum class ExprKind {
  kNullLiteral,
  kBoolLiteral,    ///< text is "true"/"false".
  kNumberLiteral,  ///< text is the literal spelling.
  kStringLiteral,  ///< text is the unquoted payload.
  kParam,          ///< text is the placeholder spelling (?, :x, $1, %s).
  kColumnRef,      ///< name_parts holds the qualifier chain (t, col).
  kStar,           ///< `*` or `t.*` (qualifier in name_parts).
  kUnary,          ///< text is the operator (NOT, -); one child.
  kBinary,         ///< text is the operator; children[0] op children[1].
  kLike,           ///< children[0] LIKE children[1]; text is LIKE/ILIKE/REGEXP/...
  kIsNull,         ///< children[0] IS [NOT] NULL (negated flag).
  kIn,             ///< children[0] IN (children[1..]); or subquery child.
  kBetween,        ///< children[0] BETWEEN children[1] AND children[2].
  kFunction,       ///< text is the function name; children are args.
  kCase,           ///< children: [operand?], then WHEN/THEN pairs, then ELSE?.
  kExists,         ///< EXISTS (subquery).
  kSubquery,       ///< Scalar subquery.
  kCast,           ///< CAST(children[0] AS text) or children[0]::text.
  kRaw,            ///< Unparsed token run — non-validating fallback.
};

struct SelectStatement;  // forward

/// \brief One node of the expression tree.
struct Expr {
  ExprKind kind = ExprKind::kRaw;
  std::string text;                    ///< Operator / function name / literal payload.
  std::vector<std::string> name_parts; ///< Column qualifier chain for kColumnRef/kStar.
  std::vector<std::unique_ptr<Expr>> children;
  std::unique_ptr<SelectStatement> subquery;  ///< For kSubquery/kExists/kIn-subquery.
  bool negated = false;        ///< NOT LIKE / NOT IN / NOT BETWEEN / IS NOT NULL.
  bool distinct_arg = false;   ///< COUNT(DISTINCT x) style.
  std::vector<Token> raw_tokens;  ///< For kRaw.

  Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Deep copy (fix rules transform copies, never the originals).
  std::unique_ptr<Expr> Clone() const;

  /// Unqualified column name ("" when not a column ref).
  std::string ColumnName() const;
  /// Table qualifier for a column ref ("" when unqualified).
  std::string TableQualifier() const;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Convenience constructors used by the parser, fix engine, and tests.
ExprPtr MakeColumnRef(std::vector<std::string> name_parts);
ExprPtr MakeStringLiteral(std::string value);
ExprPtr MakeNumberLiteral(std::string value);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);

/// \brief Depth-first visit of an expression tree (including subquery
/// boundaries when `enter_subqueries` is set).
void VisitExpr(const Expr& expr, bool enter_subqueries,
               const std::function<void(const Expr&)>& fn);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kAlterTable,
  kDropTable,
  kDropIndex,
  kUnknown,
};

const char* StatementKindName(StatementKind kind);

enum class JoinType { kInner, kLeft, kRight, kFull, kCross };

struct TableRef {
  std::string name;   ///< Empty when this is a subquery source.
  std::string alias;  ///< Empty when not aliased.
  std::unique_ptr<SelectStatement> subquery;

  TableRef() = default;
  TableRef(TableRef&&) = default;
  TableRef& operator=(TableRef&&) = default;

  TableRef Clone() const;
  /// The name queries refer to this source by (alias if set, else name).
  const std::string& EffectiveName() const { return alias.empty() ? name : alias; }
};

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr on;                          ///< Null for CROSS / USING joins.
  std::vector<std::string> using_columns;

  JoinClause Clone() const;
};

struct SelectItem {
  ExprPtr expr;
  std::string alias;

  SelectItem Clone() const;
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;

  OrderItem Clone() const;
};

/// \brief Base statement. Concrete statements derive and carry their clauses.
struct Statement {
  StatementKind kind = StatementKind::kUnknown;
  std::string raw_sql;  ///< Original text (trimmed), kept for reporting.

  explicit Statement(StatementKind k) : kind(k) {}
  virtual ~Statement() = default;

  virtual std::unique_ptr<Statement> CloneStatement() const = 0;

  template <typename T>
  const T* As() const {
    return kind == T::kKind ? static_cast<const T*>(this) : nullptr;
  }
  template <typename T>
  T* As() {
    return kind == T::kKind ? static_cast<T*>(this) : nullptr;
  }
};

using StatementPtr = std::unique_ptr<Statement>;

struct SelectStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kSelect;
  SelectStatement() : Statement(kKind) {}

  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  ///< Comma-separated sources (implicit cross join).
  std::vector<JoinClause> joins;
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;

  std::unique_ptr<SelectStatement> CloneSelect() const;
  StatementPtr CloneStatement() const override { return CloneSelect(); }

  /// All source names (tables + join tables), in syntactic order.
  std::vector<std::string> ReferencedTables() const;
  /// Total number of JOIN clauses (explicit joins + implicit comma joins).
  int JoinCount() const;
};

struct InsertStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kInsert;
  InsertStatement() : Statement(kKind) {}

  std::string table;
  std::vector<std::string> columns;  ///< Empty => implicit column list (an AP!).
  std::vector<std::vector<ExprPtr>> rows;
  std::unique_ptr<SelectStatement> select;  ///< INSERT ... SELECT form.
  bool or_replace = false;

  StatementPtr CloneStatement() const override;
};

struct UpdateStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kUpdate;
  UpdateStatement() : Statement(kKind) {}

  std::string table;
  std::string alias;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;

  StatementPtr CloneStatement() const override;
};

struct DeleteStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kDelete;
  DeleteStatement() : Statement(kKind) {}

  std::string table;
  ExprPtr where;

  StatementPtr CloneStatement() const override;
};

// --------------------------------- DDL ------------------------------------

/// \brief Type name as written (resolution to catalog types happens later).
struct TypeName {
  std::string name;               ///< Upper/lower as written; compare case-insensitively.
  std::vector<int64_t> params;    ///< VARCHAR(30) -> {30}; NUMERIC(10,2) -> {10,2}.
  std::vector<std::string> enum_values;  ///< ENUM('a','b') members.
  bool with_time_zone = false;    ///< TIMESTAMP WITH TIME ZONE / TIMESTAMPTZ.

  std::string ToString() const;
};

struct ForeignKeyRefAst {
  std::string table;
  std::vector<std::string> columns;  ///< May be empty (references PK implicitly).
  bool on_delete_cascade = false;
};

struct ColumnDefAst {
  std::string name;
  TypeName type;
  bool not_null = false;
  bool primary_key = false;
  bool unique = false;
  bool auto_increment = false;
  ExprPtr default_value;
  ExprPtr check;  ///< Column-level CHECK expression.
  std::optional<ForeignKeyRefAst> references;

  ColumnDefAst Clone() const;
};

enum class TableConstraintKind { kPrimaryKey, kForeignKey, kUnique, kCheck };

struct TableConstraintAst {
  TableConstraintKind kind = TableConstraintKind::kPrimaryKey;
  std::string name;  ///< CONSTRAINT <name>, may be empty.
  std::vector<std::string> columns;
  ForeignKeyRefAst reference;  ///< For kForeignKey.
  ExprPtr check;               ///< For kCheck.

  TableConstraintAst Clone() const;
};

struct CreateTableStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kCreateTable;
  CreateTableStatement() : Statement(kKind) {}

  std::string table;
  bool if_not_exists = false;
  std::vector<ColumnDefAst> columns;
  std::vector<TableConstraintAst> constraints;

  StatementPtr CloneStatement() const override;

  const ColumnDefAst* FindColumn(std::string_view name) const;
  bool HasPrimaryKey() const;
  bool HasForeignKey() const;
};

struct CreateIndexStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kCreateIndex;
  CreateIndexStatement() : Statement(kKind) {}

  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
  bool if_not_exists = false;

  StatementPtr CloneStatement() const override;
};

enum class AlterAction {
  kAddColumn,
  kDropColumn,
  kAddConstraint,
  kDropConstraint,
  kAlterColumnType,
  kRenameTable,
  kRenameColumn,
  kUnknown,
};

struct AlterTableStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kAlterTable;
  AlterTableStatement() : Statement(kKind) {}

  std::string table;
  AlterAction action = AlterAction::kUnknown;
  ColumnDefAst column;            ///< For add-column / alter-type.
  std::string target_name;        ///< Column or constraint being dropped/renamed.
  std::string new_name;           ///< For renames.
  TableConstraintAst constraint;  ///< For add-constraint.
  bool if_exists = false;

  StatementPtr CloneStatement() const override;
};

struct DropTableStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kDropTable;
  DropTableStatement() : Statement(kKind) {}

  std::string table;
  bool if_exists = false;

  StatementPtr CloneStatement() const override;
};

struct DropIndexStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kDropIndex;
  DropIndexStatement() : Statement(kKind) {}

  std::string index;
  bool if_exists = false;

  StatementPtr CloneStatement() const override;
};

/// \brief Non-validating fallback: the token run of an unparseable statement.
struct UnknownStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kUnknown;
  UnknownStatement() : Statement(kKind) {}

  std::vector<Token> tokens;

  StatementPtr CloneStatement() const override;
};

}  // namespace sqlcheck::sql
