#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <memory_resource>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sql/token.h"

namespace sqlcheck::sql {

// ---------------------------------------------------------------------------
// Allocation model
// ---------------------------------------------------------------------------
//
// AST nodes live in one of two tiers:
//
//  * Arena tier (the hot path): the parser places nodes in a Context-owned
//    Arena and every string/vector member draws from the same arena through
//    `std::pmr`. Nothing is heap-allocated per node, and nothing is freed
//    per node either — `AstDelete` sees `arena_managed` and skips the
//    destructor entirely; the arena reclaims everything wholesale. This is
//    only safe because arena nodes never own heap memory, which is why every
//    member below is a pmr type or a trivially-destructible value.
//
//  * Heap tier (tests, fix-engine clones, hand-built trees): default-
//    constructed nodes use the default memory resource (new/delete) and
//    `AstDelete` runs the normal destructor. Semantics are exactly the
//    pre-arena ones.
//
// The two tiers share one node type; `ExprPtr`/`StatementPtr` carry the
// stateless `AstDelete` so ownership code is identical in both. Do not mix
// tiers inside one tree: a tree is uniformly arena (parser-built with an
// arena) or uniformly heap (everything else).

/// String/vector member types for AST nodes. `AstString` keeps short
/// payloads inline (SSO) and spills long ones to the node's memory resource;
/// it converts implicitly to `std::string_view` and assigns from any
/// string-like, so most call sites read like plain `std::string`.
using AstString = std::pmr::string;
template <typename T>
using AstVector = std::pmr::vector<T>;

struct Expr;
struct Statement;
struct SelectStatement;

/// Copies an AST string list into owned std::strings — the boundary helper
/// for layers (catalog, facts, reports) that keep their own storage.
std::vector<std::string> ToStringVector(const AstVector<AstString>& v);

/// \brief Deleter shared by all AST owning pointers: deletes heap-tier
/// nodes, leaves arena-tier nodes for their arena to reclaim.
struct AstDelete {
  void operator()(Expr* e) const;
  void operator()(Statement* s) const;
};

using ExprPtr = std::unique_ptr<Expr, AstDelete>;
using StatementPtr = std::unique_ptr<Statement, AstDelete>;
using SelectPtr = std::unique_ptr<SelectStatement, AstDelete>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

/// \brief Discriminant for the single-struct expression tree.
///
/// A flat tagged struct (rather than a class hierarchy) keeps cloning,
/// printing, and rule-side pattern matching simple — the same trade-off the
/// paper's annotated `sqlparse` tree makes.
enum class ExprKind {
  kNullLiteral,
  kBoolLiteral,    ///< text is "true"/"false".
  kNumberLiteral,  ///< text is the literal spelling.
  kStringLiteral,  ///< text is the unquoted payload.
  kParam,          ///< text is the placeholder spelling (?, :x, $1, %s).
  kColumnRef,      ///< name_parts holds the qualifier chain (t, col).
  kStar,           ///< `*` or `t.*` (qualifier in name_parts).
  kUnary,          ///< text is the operator (NOT, -); one child.
  kBinary,         ///< text is the operator; children[0] op children[1].
  kLike,           ///< children[0] LIKE children[1]; text is LIKE/ILIKE/REGEXP/...
  kIsNull,         ///< children[0] IS [NOT] NULL (negated flag).
  kIn,             ///< children[0] IN (children[1..]); or subquery child.
  kBetween,        ///< children[0] BETWEEN children[1] AND children[2].
  kFunction,       ///< text is the function name; children are args.
  kCase,           ///< children: [operand?], then WHEN/THEN pairs, then ELSE?.
  kExists,         ///< EXISTS (subquery).
  kSubquery,       ///< Scalar subquery.
  kCast,           ///< CAST(children[0] AS text) or children[0]::text.
  kRaw,            ///< Unparsed fallback — non-validating placeholder.
};

/// \brief One node of the expression tree.
struct Expr {
  ExprKind kind = ExprKind::kRaw;
  bool negated = false;        ///< NOT LIKE / NOT IN / NOT BETWEEN / IS NOT NULL.
  bool distinct_arg = false;   ///< COUNT(DISTINCT x) style.
  bool arena_managed = false;  ///< Set by the parser for arena-tier nodes.
  AstString text;                    ///< Operator / function name / literal payload.
  AstVector<AstString> name_parts;   ///< Column qualifier chain for kColumnRef/kStar.
  AstVector<ExprPtr> children;
  SelectPtr subquery;                ///< For kSubquery/kExists/kIn-subquery.

  Expr() = default;
  explicit Expr(std::pmr::memory_resource* mr)
      : text(mr), name_parts(mr), children(mr) {}
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  /// Deep copy onto the heap tier (fix rules transform copies, never the
  /// originals; clones of arena nodes safely outlive the arena).
  ExprPtr Clone() const;

  /// Unqualified column name ("" when not a column ref). The view borrows
  /// from this node.
  std::string_view ColumnName() const;
  /// Table qualifier for a column ref ("" when unqualified).
  std::string_view TableQualifier() const;
};

/// Convenience constructors used by the parser, fix engine, and tests.
/// Always heap-tier.
ExprPtr MakeExpr(ExprKind kind);
ExprPtr MakeColumnRef(std::vector<std::string> name_parts);
ExprPtr MakeStringLiteral(std::string value);
ExprPtr MakeNumberLiteral(std::string value);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeFunction(std::string name, std::vector<ExprPtr> args);

/// \brief Depth-first visit of an expression tree (including subquery
/// boundaries when `enter_subqueries` is set).
void VisitExpr(const Expr& expr, bool enter_subqueries,
               const std::function<void(const Expr&)>& fn);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kAlterTable,
  kDropTable,
  kDropIndex,
  kUnknown,
};

const char* StatementKindName(StatementKind kind);

enum class JoinType { kInner, kLeft, kRight, kFull, kCross };

struct TableRef {
  AstString name;   ///< Empty when this is a subquery source.
  AstString alias;  ///< Empty when not aliased.
  SelectPtr subquery;

  TableRef() = default;
  explicit TableRef(std::pmr::memory_resource* mr) : name(mr), alias(mr) {}
  TableRef(TableRef&&) = default;
  TableRef& operator=(TableRef&&) = default;

  TableRef Clone() const;
  /// The name queries refer to this source by (alias if set, else name).
  const AstString& EffectiveName() const { return alias.empty() ? name : alias; }
};

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr on;                          ///< Null for CROSS / USING joins.
  AstVector<AstString> using_columns;

  JoinClause() = default;
  explicit JoinClause(std::pmr::memory_resource* mr) : table(mr), using_columns(mr) {}

  JoinClause Clone() const;
};

struct SelectItem {
  ExprPtr expr;
  AstString alias;

  SelectItem() = default;
  explicit SelectItem(std::pmr::memory_resource* mr) : alias(mr) {}

  SelectItem Clone() const;
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;

  OrderItem Clone() const;
};

/// \brief Base statement. Concrete statements derive and carry their clauses.
struct Statement {
  StatementKind kind = StatementKind::kUnknown;
  bool arena_managed = false;  ///< Set by the parser for arena-tier nodes.
  AstString raw_sql;  ///< Original text (trimmed), kept for reporting. Owned
                      ///< by the statement; stable for the statement's life.

  explicit Statement(StatementKind k) : kind(k) {}
  Statement(StatementKind k, std::pmr::memory_resource* mr) : kind(k), raw_sql(mr) {}
  Statement(const Statement&) = delete;
  Statement& operator=(const Statement&) = delete;
  virtual ~Statement() = default;

  /// Deep copy onto the heap tier.
  virtual StatementPtr CloneStatement() const = 0;

  template <typename T>
  const T* As() const {
    return kind == T::kKind ? static_cast<const T*>(this) : nullptr;
  }
  template <typename T>
  T* As() {
    return kind == T::kKind ? static_cast<T*>(this) : nullptr;
  }
};

struct SelectStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kSelect;
  SelectStatement() : Statement(kKind) {}
  explicit SelectStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), items(mr), from(mr), joins(mr), group_by(mr), order_by(mr) {}

  bool distinct = false;
  AstVector<SelectItem> items;
  AstVector<TableRef> from;  ///< Comma-separated sources (implicit cross join).
  AstVector<JoinClause> joins;
  ExprPtr where;
  AstVector<ExprPtr> group_by;
  ExprPtr having;
  AstVector<OrderItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;

  SelectPtr CloneSelect() const;
  StatementPtr CloneStatement() const override;

  /// All source names (tables + join tables), in syntactic order.
  std::vector<std::string> ReferencedTables() const;
  /// View-based variant for hot paths: appends instead of allocating a
  /// fresh vector; views borrow from this statement.
  void CollectReferencedTables(std::vector<std::string_view>* out) const;
  /// Total number of JOIN clauses (explicit joins + implicit comma joins).
  int JoinCount() const;
};

struct InsertStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kInsert;
  InsertStatement() : Statement(kKind) {}
  explicit InsertStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), table(mr), columns(mr), rows(mr) {}

  AstString table;
  AstVector<AstString> columns;  ///< Empty => implicit column list (an AP!).
  AstVector<AstVector<ExprPtr>> rows;
  SelectPtr select;  ///< INSERT ... SELECT form.
  bool or_replace = false;

  StatementPtr CloneStatement() const override;
};

struct UpdateStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kUpdate;
  UpdateStatement() : Statement(kKind) {}
  explicit UpdateStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), table(mr), alias(mr), assignments(mr) {}

  AstString table;
  AstString alias;
  AstVector<std::pair<AstString, ExprPtr>> assignments;
  ExprPtr where;

  StatementPtr CloneStatement() const override;
};

struct DeleteStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kDelete;
  DeleteStatement() : Statement(kKind) {}
  explicit DeleteStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), table(mr) {}

  AstString table;
  ExprPtr where;

  StatementPtr CloneStatement() const override;
};

// --------------------------------- DDL ------------------------------------

/// \brief Type name as written (resolution to catalog types happens later).
struct TypeName {
  AstString name;               ///< Upper/lower as written; compare case-insensitively.
  AstVector<int64_t> params;    ///< VARCHAR(30) -> {30}; NUMERIC(10,2) -> {10,2}.
  AstVector<AstString> enum_values;  ///< ENUM('a','b') members.
  bool with_time_zone = false;  ///< TIMESTAMP WITH TIME ZONE / TIMESTAMPTZ.

  TypeName() = default;
  explicit TypeName(std::pmr::memory_resource* mr)
      : name(mr), params(mr), enum_values(mr) {}
  TypeName(TypeName&&) = default;
  TypeName& operator=(TypeName&&) = default;
  TypeName(const TypeName&) = default;
  TypeName& operator=(const TypeName&) = default;

  std::string ToString() const;
};

struct ForeignKeyRefAst {
  AstString table;
  AstVector<AstString> columns;  ///< May be empty (references PK implicitly).
  bool on_delete_cascade = false;

  ForeignKeyRefAst() = default;
  explicit ForeignKeyRefAst(std::pmr::memory_resource* mr) : table(mr), columns(mr) {}
};

struct ColumnDefAst {
  AstString name;
  TypeName type;
  bool not_null = false;
  bool primary_key = false;
  bool unique = false;
  bool auto_increment = false;
  ExprPtr default_value;
  ExprPtr check;  ///< Column-level CHECK expression.
  std::optional<ForeignKeyRefAst> references;

  ColumnDefAst() = default;
  explicit ColumnDefAst(std::pmr::memory_resource* mr) : name(mr), type(mr) {}

  ColumnDefAst Clone() const;
};

enum class TableConstraintKind { kPrimaryKey, kForeignKey, kUnique, kCheck };

struct TableConstraintAst {
  TableConstraintKind kind = TableConstraintKind::kPrimaryKey;
  AstString name;  ///< CONSTRAINT <name>, may be empty.
  AstVector<AstString> columns;
  ForeignKeyRefAst reference;  ///< For kForeignKey.
  ExprPtr check;               ///< For kCheck.

  TableConstraintAst() = default;
  explicit TableConstraintAst(std::pmr::memory_resource* mr)
      : name(mr), columns(mr), reference(mr) {}

  TableConstraintAst Clone() const;
};

struct CreateTableStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kCreateTable;
  CreateTableStatement() : Statement(kKind) {}
  explicit CreateTableStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), table(mr), columns(mr), constraints(mr) {}

  AstString table;
  bool if_not_exists = false;
  AstVector<ColumnDefAst> columns;
  AstVector<TableConstraintAst> constraints;

  StatementPtr CloneStatement() const override;

  const ColumnDefAst* FindColumn(std::string_view name) const;
  bool HasPrimaryKey() const;
  bool HasForeignKey() const;
};

struct CreateIndexStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kCreateIndex;
  CreateIndexStatement() : Statement(kKind) {}
  explicit CreateIndexStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), index(mr), table(mr), columns(mr) {}

  AstString index;
  AstString table;
  AstVector<AstString> columns;
  bool unique = false;
  bool if_not_exists = false;

  StatementPtr CloneStatement() const override;
};

enum class AlterAction {
  kAddColumn,
  kDropColumn,
  kAddConstraint,
  kDropConstraint,
  kAlterColumnType,
  kRenameTable,
  kRenameColumn,
  kUnknown,
};

struct AlterTableStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kAlterTable;
  AlterTableStatement() : Statement(kKind) {}
  explicit AlterTableStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr),
        table(mr),
        column(mr),
        target_name(mr),
        new_name(mr),
        constraint(mr) {}

  AstString table;
  AlterAction action = AlterAction::kUnknown;
  ColumnDefAst column;            ///< For add-column / alter-type.
  AstString target_name;          ///< Column or constraint being dropped/renamed.
  AstString new_name;             ///< For renames.
  TableConstraintAst constraint;  ///< For add-constraint.
  bool if_exists = false;

  StatementPtr CloneStatement() const override;
};

struct DropTableStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kDropTable;
  DropTableStatement() : Statement(kKind) {}
  explicit DropTableStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), table(mr) {}

  AstString table;
  bool if_exists = false;

  StatementPtr CloneStatement() const override;
};

struct DropIndexStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kDropIndex;
  DropIndexStatement() : Statement(kKind) {}
  explicit DropIndexStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), index(mr) {}

  AstString index;
  bool if_exists = false;

  StatementPtr CloneStatement() const override;
};

/// \brief Non-validating fallback: the token run of an unparseable statement.
///
/// The stored tokens are self-contained: `AdoptTokens` rebases every view
/// onto this statement's own `raw_sql` (or `owned_texts` for normalized
/// payloads), so they stay valid for the statement's lifetime regardless of
/// what happens to the lex-time source buffer or TokenBuffer.
struct UnknownStatement : Statement {
  static constexpr StatementKind kKind = StatementKind::kUnknown;
  UnknownStatement() : Statement(kKind) {}
  explicit UnknownStatement(std::pmr::memory_resource* mr)
      : Statement(kKind, mr), tokens(mr), owned_texts(mr) {}

  AstVector<Token> tokens;
  AstVector<AstString> owned_texts;  ///< Normalized payloads, in token order.

  /// Copies `source_tokens` (lexed from `lex_source`, of which `raw_sql`
  /// must be the trimmed substring) and rebases every text view onto
  /// `raw_sql`/`owned_texts`. Call after `raw_sql` is set, never mutate
  /// `raw_sql`/`owned_texts` afterwards.
  void AdoptTokens(const std::vector<Token>& source_tokens, std::string_view lex_source);

  StatementPtr CloneStatement() const override;
};

}  // namespace sqlcheck::sql
