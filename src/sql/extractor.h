#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sqlcheck::sql {

/// \brief One embedded SQL statement recovered from application source code.
struct EmbeddedSql {
  std::string sql;
  size_t offset = 0;  ///< Byte offset of the host string literal.
};

/// \brief Extracts string-quoted embedded SQL statements from application
/// source code (Python/Java/PHP/JS-style), mirroring the paper's GitHub
/// pipeline (§8.1): scan for string literals, keep the ones that start with a
/// SQL verb, and split multi-statement strings.
std::vector<EmbeddedSql> ExtractEmbeddedSql(std::string_view source);

}  // namespace sqlcheck::sql
