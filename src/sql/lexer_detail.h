#pragma once

#include <cstdint>
#include <string_view>

namespace sqlcheck::sql::lexer_detail {

// Character classes and the multi-character operator table shared by the
// lexer and the streaming canonicalizer in fingerprint.cc. Keeping them in
// one place guarantees the two passes tokenize identically — a divergence
// would let the dedup cache disagree with what the analyzer sees.
//
// The classes are ASCII-only by construction (SQL identifiers/keywords), so
// they are a branch-free table lookup rather than locale-aware <cctype>
// calls — this loop runs for every byte of every statement.

inline constexpr uint8_t kAlpha = 1 << 0;
inline constexpr uint8_t kDigitClass = 1 << 1;
inline constexpr uint8_t kSpaceClass = 1 << 2;

namespace detail {
struct CharClassTable {
  uint8_t v[256] = {};
};
constexpr CharClassTable MakeCharClassTable() {
  CharClassTable t;
  for (int c = 'a'; c <= 'z'; ++c) t.v[c] |= kAlpha;
  for (int c = 'A'; c <= 'Z'; ++c) t.v[c] |= kAlpha;
  for (int c = '0'; c <= '9'; ++c) t.v[c] |= kDigitClass;
  for (unsigned char c : {' ', '\t', '\n', '\v', '\f', '\r'}) t.v[c] |= kSpaceClass;
  return t;
}
inline constexpr CharClassTable kCharClass = MakeCharClassTable();
}  // namespace detail

inline bool IsIdentStart(char c) {
  return (detail::kCharClass.v[static_cast<unsigned char>(c)] & kAlpha) != 0 || c == '_';
}
inline bool IsIdentChar(char c) {
  return (detail::kCharClass.v[static_cast<unsigned char>(c)] &
          (kAlpha | kDigitClass)) != 0 ||
         c == '_' || c == '$';
}
inline bool IsDigit(char c) {
  return (detail::kCharClass.v[static_cast<unsigned char>(c)] & kDigitClass) != 0;
}
/// ASCII whitespace — matches what std::isspace in the "C" locale accepts.
inline bool IsSpace(char c) {
  return (detail::kCharClass.v[static_cast<unsigned char>(c)] & kSpaceClass) != 0;
}

/// Dispatch class of a token's leading byte. The lexer's Run loop and the
/// streaming canonicalizer in fingerprint.cc both switch on this (instead of
/// replicating a chain of character compares), so a byte can never start a
/// different construct in the two passes. Derived from kCharClass above —
/// the identifier/digit/whitespace charsets live in exactly one place, and
/// the block scanner (sql/block_scan.h) mirrors them under lockstep tests.
enum class LexClass : uint8_t {
  kOther = 0,  ///< operator / punctuation fallthrough
  kWord,       ///< A-Z a-z _  (identifier or keyword start)
  kSpace,      ///< ' ' \t \n \v \f \r
  kDigit,      ///< 0-9
  kDot,        ///< '.'  (number when a digit follows, else punctuation)
  kSQuote,     ///< '\''
  kIdQuote,    ///< '"' or '`'
  kBracket,    ///< '['  (SQL Server quoted identifier)
  kDollar,     ///< '$'  (dollar quote, numbered param, or operator)
  kQuestion,   ///< '?'  (positional param)
  kPercent,    ///< '%'  (%s param or modulo)
  kColon,      ///< ':'  (named param or :: operator)
  kDash,       ///< '-'  (line comment or operator)
  kHash,       ///< '#'  (line comment or #> operator)
  kSlash,      ///< '/'  (block comment or operator)
};

namespace detail {
struct LexClassTable {
  LexClass v[256] = {};
};
constexpr LexClassTable MakeLexClassTable() {
  LexClassTable t;
  for (int c = 0; c < 256; ++c) {
    if ((kCharClass.v[c] & kAlpha) != 0) {
      t.v[c] = LexClass::kWord;
    } else if ((kCharClass.v[c] & kDigitClass) != 0) {
      t.v[c] = LexClass::kDigit;
    } else if ((kCharClass.v[c] & kSpaceClass) != 0) {
      t.v[c] = LexClass::kSpace;
    }
  }
  t.v[static_cast<unsigned char>('_')] = LexClass::kWord;
  t.v[static_cast<unsigned char>('.')] = LexClass::kDot;
  t.v[static_cast<unsigned char>('\'')] = LexClass::kSQuote;
  t.v[static_cast<unsigned char>('"')] = LexClass::kIdQuote;
  t.v[static_cast<unsigned char>('`')] = LexClass::kIdQuote;
  t.v[static_cast<unsigned char>('[')] = LexClass::kBracket;
  t.v[static_cast<unsigned char>('$')] = LexClass::kDollar;
  t.v[static_cast<unsigned char>('?')] = LexClass::kQuestion;
  t.v[static_cast<unsigned char>('%')] = LexClass::kPercent;
  t.v[static_cast<unsigned char>(':')] = LexClass::kColon;
  t.v[static_cast<unsigned char>('-')] = LexClass::kDash;
  t.v[static_cast<unsigned char>('#')] = LexClass::kHash;
  t.v[static_cast<unsigned char>('/')] = LexClass::kSlash;
  return t;
}
inline constexpr LexClassTable kLexClass = MakeLexClassTable();
}  // namespace detail

inline LexClass ClassOf(char c) {
  return detail::kLexClass.v[static_cast<unsigned char>(c)];
}

/// Multi-character operators, longest match first (a prefix must come after
/// every operator it prefixes: `<=>` before `<=`, `#>>` before `#>`).
inline constexpr std::string_view kMultiCharOperators[] = {
    "<=>", "||", "==", "!=", "<>", "<=", ">=", "::", "#>>",
    "#>",  "->>", "->", "@>", "<@", "~*", "!~*", "!~"};

/// Longest multi-character operator at the start of `rest`: 1-based index
/// into kMultiCharOperators, or 0 when none matches. A first-character
/// switch instead of a table scan — this runs for every punctuation byte.
inline int MatchMultiCharOperator(std::string_view rest) {
  auto is = [&rest](int index_1based) {
    std::string_view op = kMultiCharOperators[index_1based - 1];
    return rest.substr(0, op.size()) == op ? index_1based : 0;
  };
  if (rest.empty()) return 0;
  switch (rest[0]) {
    case '<': {
      if (int m = is(1)) return m;   // <=>
      if (int m = is(5)) return m;   // <>
      if (int m = is(6)) return m;   // <=
      return is(14);                 // <@
    }
    case '|': return is(2);          // ||
    case '=': return is(3);          // ==
    case '!': {
      if (int m = is(16)) return m;  // !~*
      if (int m = is(4)) return m;   // !=
      return is(17);                 // !~
    }
    case '>': return is(7);          // >=
    case ':': return is(8);          // ::
    case '#': {
      if (int m = is(9)) return m;   // #>>
      return is(10);                 // #>
    }
    case '-': {
      if (int m = is(11)) return m;  // ->>
      return is(12);                 // ->
    }
    case '@': return is(13);         // @>
    case '~': return is(15);         // ~*
    default: return 0;
  }
}

/// Token::op code for an operator spelling: single characters code as
/// themselves, multi-character operators as 128 + table index. 0 = not an
/// operator token.
inline constexpr uint8_t kMultiCharOpBase = 128;
constexpr uint8_t SingleCharOpCode(char c) { return static_cast<uint8_t>(c); }
constexpr uint8_t MultiCharOpCode(int index_1based) {
  return static_cast<uint8_t>(kMultiCharOpBase + index_1based - 1);
}
/// Compile-time code for an operator spelling (parser-side probes).
constexpr uint8_t OpCode(std::string_view spelling) {
  if (spelling.size() == 1) return SingleCharOpCode(spelling[0]);
  for (size_t i = 0; i < sizeof(kMultiCharOperators) / sizeof(kMultiCharOperators[0]);
       ++i) {
    if (kMultiCharOperators[i] == spelling) {
      return MultiCharOpCode(static_cast<int>(i) + 1);
    }
  }
  return 0;
}

}  // namespace sqlcheck::sql::lexer_detail
