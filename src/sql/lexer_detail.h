#pragma once

#include <cctype>
#include <string_view>

namespace sqlcheck::sql::lexer_detail {

// Character classes and the multi-character operator table shared by the
// lexer and the streaming canonicalizer in fingerprint.cc. Keeping them in
// one place guarantees the two passes tokenize identically — a divergence
// would let the dedup cache disagree with what the analyzer sees.

inline bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '$';
}
inline bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

/// Multi-character operators, longest match first (a prefix must come after
/// every operator it prefixes: `<=>` before `<=`, `#>>` before `#>`).
inline constexpr std::string_view kMultiCharOperators[] = {
    "<=>", "||", "==", "!=", "<>", "<=", ">=", "::", "#>>",
    "#>",  "->>", "->", "@>", "<@", "~*", "!~*", "!~"};

}  // namespace sqlcheck::sql::lexer_detail
