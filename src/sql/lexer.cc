#include "sql/lexer.h"

#include "common/strings.h"
#include "sql/lexer_detail.h"

namespace sqlcheck::sql {

namespace {

using lexer_detail::IsDigit;
using lexer_detail::IsIdentChar;
using lexer_detail::IsIdentStart;
using lexer_detail::IsSpace;

/// Zero-copy lexer core. Token text is a view into `sql_` wherever the
/// payload equals a source substring; only escape-stripped payloads are
/// materialized (built in `scratch_`, then copied into the TokenBuffer's
/// side arena so they survive `scratch_` reuse).
class LexerImpl {
 public:
  LexerImpl(std::string_view sql, const LexerOptions& options, std::vector<Token>& out,
            Arena& norm, std::string& scratch)
      : sql_(sql), options_(options), out_(out), norm_(norm), scratch_(scratch) {}

  void Run() {
    while (pos_ < sql_.size()) {
      size_t start = pos_;
      char c = sql_[pos_];
      // Hot cases first: words and whitespace dominate real SQL.
      if (IsIdentStart(c)) {
        LexWord(start);
        continue;
      }
      if (IsSpace(c)) {
        ++pos_;
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber(start);
        continue;
      }
      if (c == '-' && Peek(1) == '-') {
        LexLineComment(start);
        continue;
      }
      if (c == '#' && Peek(1) != '>') {
        // MySQL line comment; `#>` / `#>>` are PostgreSQL JSON path operators.
        LexLineComment(start);
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment(start);
        continue;
      }
      if (c == '\'') {
        LexSingleQuoted(start);
        continue;
      }
      if (c == '"' || c == '`') {
        LexQuotedIdentifier(start, c);
        continue;
      }
      if (c == '[') {
        LexBracketIdentifier(start);
        continue;
      }
      if (c == '$' && (Peek(1) == '$' || IsIdentStart(Peek(1)))) {
        if (LexDollarQuoted(start)) continue;
        // Fall through: not a dollar-quote after all.
      }
      if (c == '$' && IsDigit(Peek(1))) {
        LexNumberedParam(start);
        continue;
      }
      if (c == '?') {
        ++pos_;
        Emit(TokenKind::kParam, Slice(start, 1), start, 1);
        continue;
      }
      if (c == '%' && Peek(1) == 's' && !IsIdentChar(Peek(2))) {
        // Python-style bind parameter — but only when the `s` is a whole
        // word: in `id%salary` the `%` is the modulo operator.
        pos_ += 2;
        Emit(TokenKind::kParam, Slice(start, 2), start, 2);
        continue;
      }
      if (c == ':' && IsIdentStart(Peek(1))) {
        LexNamedParam(start);
        continue;
      }
      LexOperatorOrPunct(start);
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.offset = sql_.size();
    out_.push_back(end);
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < sql_.size() ? sql_[pos_ + ahead] : '\0';
  }

  std::string_view Slice(size_t start, size_t length) const {
    return sql_.substr(start, length);
  }

  Token& Emit(TokenKind kind, std::string_view text, size_t start, size_t length) {
    Token& t = out_.emplace_back();
    t.kind = kind;
    t.text = text;
    t.offset = start;
    t.length = length;
    return t;
  }

  /// Emits a token whose payload was built in `scratch_` (escape stripping):
  /// the bytes move to the side arena so the next normalized token can reuse
  /// the scratch string.
  void EmitNormalized(TokenKind kind, size_t start, size_t length) {
    Token& t = Emit(kind, norm_.Dup(scratch_), start, length);
    t.normalized = true;
    scratch_.clear();
  }

  void LexLineComment(size_t start) {
    while (pos_ < sql_.size() && sql_[pos_] != '\n') ++pos_;
    if (options_.keep_comments) {
      Emit(TokenKind::kComment, Slice(start, pos_ - start), start, pos_ - start);
    }
  }

  void LexBlockComment(size_t start) {
    pos_ += 2;
    // PostgreSQL block comments nest: `/* a /* b */ c */` is one comment.
    int depth = 1;
    while (pos_ < sql_.size() && depth > 0) {
      if (sql_[pos_] == '/' && Peek(1) == '*') {
        ++depth;
        pos_ += 2;
      } else if (sql_[pos_] == '*' && Peek(1) == '/') {
        --depth;
        pos_ += 2;
      } else {
        ++pos_;
      }
    }
    if (options_.keep_comments) {
      Emit(TokenKind::kComment, Slice(start, pos_ - start), start, pos_ - start);
    }
  }

  void LexSingleQuoted(size_t start) {
    ++pos_;  // opening quote
    // Fast path: scan for the closing quote; the payload is a pure source
    // substring unless an escape ('' doubling or backslash) intervenes.
    size_t body_start = pos_;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '\\' && pos_ + 1 < sql_.size()) break;
      if (c == '\'') {
        if (Peek(1) == '\'') break;  // doubled-quote escape
        size_t body_len = pos_ - body_start;
        ++pos_;
        Emit(TokenKind::kString, Slice(body_start, body_len), start, pos_ - start);
        return;
      }
      ++pos_;
    }
    if (pos_ >= sql_.size()) {
      // Unterminated: the rest of the input is the body.
      Emit(TokenKind::kString, Slice(body_start, pos_ - body_start), start, pos_ - start);
      return;
    }
    // Slow path: materialize the escape-stripped payload.
    scratch_.assign(sql_.data() + body_start, pos_ - body_start);
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '\\' && pos_ + 1 < sql_.size()) {
        // MySQL-style backslash escape: keep the escaped char literally.
        scratch_.push_back(sql_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        if (Peek(1) == '\'') {  // doubled-quote escape
          scratch_.push_back('\'');
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      scratch_.push_back(c);
      ++pos_;
    }
    EmitNormalized(TokenKind::kString, start, pos_ - start);
  }

  void LexQuotedIdentifier(size_t start, char quote) {
    ++pos_;
    size_t body_start = pos_;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == quote) {
        if (Peek(1) == quote) break;  // doubled-quote escape -> slow path
        size_t body_len = pos_ - body_start;
        ++pos_;
        Emit(TokenKind::kQuotedIdentifier, Slice(body_start, body_len), start,
             pos_ - start);
        return;
      }
      ++pos_;
    }
    if (pos_ >= sql_.size()) {
      Emit(TokenKind::kQuotedIdentifier, Slice(body_start, pos_ - body_start), start,
           pos_ - start);
      return;
    }
    scratch_.assign(sql_.data() + body_start, pos_ - body_start);
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == quote) {
        if (Peek(1) == quote) {
          scratch_.push_back(quote);
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      scratch_.push_back(c);
      ++pos_;
    }
    EmitNormalized(TokenKind::kQuotedIdentifier, start, pos_ - start);
  }

  void LexBracketIdentifier(size_t start) {
    ++pos_;
    size_t body_start = pos_;
    while (pos_ < sql_.size() && sql_[pos_] != ']') ++pos_;
    size_t body_len = pos_ - body_start;
    if (pos_ < sql_.size()) ++pos_;  // closing bracket
    Emit(TokenKind::kQuotedIdentifier, Slice(body_start, body_len), start, pos_ - start);
  }

  /// PostgreSQL $tag$...$tag$ strings (no escapes inside, so the body is
  /// always a pure source substring). Returns false if this is not actually
  /// a dollar quote (e.g. `$foo` used as an identifier character elsewhere).
  bool LexDollarQuoted(size_t start) {
    size_t tag_end = pos_ + 1;
    while (tag_end < sql_.size() && IsIdentChar(sql_[tag_end]) && sql_[tag_end] != '$') {
      ++tag_end;
    }
    if (tag_end >= sql_.size() || sql_[tag_end] != '$') return false;
    std::string_view tag = sql_.substr(pos_, tag_end - pos_ + 1);  // includes both $s
    size_t body_start = tag_end + 1;
    size_t close = sql_.find(tag, body_start);
    if (close == std::string_view::npos) {
      // Unterminated: take the rest of the input as the string body.
      Emit(TokenKind::kString, sql_.substr(body_start), start, sql_.size() - start);
      pos_ = sql_.size();
      return true;
    }
    Emit(TokenKind::kString, Slice(body_start, close - body_start), start,
         close + tag.size() - start);
    pos_ = close + tag.size();
    return true;
  }

  void LexNumberedParam(size_t start) {
    ++pos_;  // '$'
    while (pos_ < sql_.size() && IsDigit(sql_[pos_])) ++pos_;
    Emit(TokenKind::kParam, Slice(start, pos_ - start), start, pos_ - start);
  }

  void LexNamedParam(size_t start) {
    ++pos_;  // ':'
    while (pos_ < sql_.size() && IsIdentChar(sql_[pos_])) ++pos_;
    Emit(TokenKind::kParam, Slice(start, pos_ - start), start, pos_ - start);
  }

  void LexNumber(size_t start) {
    bool seen_dot = false;
    bool seen_exp = false;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (IsDigit(c)) {
        ++pos_;
      } else if (c == '.' && !seen_dot && !seen_exp) {
        seen_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !seen_exp && pos_ > start &&
                 (IsDigit(Peek(1)) || ((Peek(1) == '+' || Peek(1) == '-') && IsDigit(Peek(2))))) {
        seen_exp = true;
        pos_ += (Peek(1) == '+' || Peek(1) == '-') ? 2 : 1;
      } else {
        break;
      }
    }
    Emit(TokenKind::kNumber, Slice(start, pos_ - start), start, pos_ - start);
  }

  void LexWord(size_t start) {
    while (pos_ < sql_.size() && IsIdentChar(sql_[pos_])) ++pos_;
    std::string_view word = Slice(start, pos_ - start);
    KeywordId kw = LookupKeyword(word);
    if (kw == KeywordId::kNoKeyword) {
      Emit(TokenKind::kIdentifier, word, start, word.size());
    } else {
      Emit(TokenKind::kKeyword, word, start, word.size()).keyword = kw;
    }
  }

  void LexOperatorOrPunct(size_t start) {
    char c = sql_[pos_];
    TokenKind kind = TokenKind::kOperator;
    switch (c) {
      case ',': kind = TokenKind::kComma; break;
      case '(': kind = TokenKind::kLeftParen; break;
      case ')': kind = TokenKind::kRightParen; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case '.': kind = TokenKind::kDot; break;
      default: {
        if (int m = lexer_detail::MatchMultiCharOperator(sql_.substr(pos_))) {
          size_t len = lexer_detail::kMultiCharOperators[m - 1].size();
          pos_ += len;
          Emit(TokenKind::kOperator, Slice(start, len), start, len).op =
              lexer_detail::MultiCharOpCode(m);
          return;
        }
        break;
      }
    }
    ++pos_;
    Token& t = Emit(kind, Slice(start, 1), start, 1);
    if (kind == TokenKind::kOperator) t.op = lexer_detail::SingleCharOpCode(c);
  }

  std::string_view sql_;
  LexerOptions options_;
  std::vector<Token>& out_;
  Arena& norm_;
  std::string& scratch_;
  size_t pos_ = 0;
};

}  // namespace

const std::vector<Token>& Lex(std::string_view sql, TokenBuffer& buffer,
                              const LexerOptions& options) {
  buffer.Clear();
  LexerImpl(sql, options, buffer.tokens_, buffer.norm_, buffer.scratch_).Run();
  return buffer.tokens();
}

}  // namespace sqlcheck::sql
