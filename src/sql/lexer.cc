#include "sql/lexer.h"

#include "common/strings.h"
#include "sql/block_scan.h"
#include "sql/keyword_table.h"
#include "sql/lexer_detail.h"

namespace sqlcheck::sql {

// The u32-span layout is the point (token.h): the whole frontend iterates
// this array, so regressing it back past 32 bytes is a perf bug.
static_assert(sizeof(void*) != 8 || sizeof(Token) <= 32,
              "Token grew past 32 bytes on LP64 — check field packing");

namespace {

using lexer_detail::IsDigit;
using lexer_detail::IsIdentChar;
using lexer_detail::IsIdentStart;
using lexer_detail::LexClass;

/// Zero-copy lexer core. Token text is a view into `sql_` wherever the
/// payload equals a source substring; only escape-stripped payloads are
/// materialized (built in `scratch_`, then copied into the TokenBuffer's
/// side arena so they survive `scratch_` reuse).
///
/// The structure is span-oriented: every leading byte dispatches through the
/// shared lexer_detail::ClassOf table, and each handler advances over its
/// span with a blockscan:: scanner instead of a byte loop. The scalar/fast
/// decision is hoisted to one branch per Lex() call (the template
/// parameter), so span scans compile down to their tier directly with no
/// per-call mode check. The token stream is byte-identical between the two
/// instantiations — tests/test_block_scan.cc lexes hostile corpora under
/// both paths.
template <bool kScalarOnly>
class LexerImpl {
 public:
  LexerImpl(std::string_view sql, const LexerOptions& options, std::vector<Token>& out,
            Arena& norm, std::string& scratch)
      : sql_(sql), options_(options), out_(out), norm_(norm), scratch_(scratch) {}

  void Run() {
    while (pos_ < sql_.size()) {
      size_t start = pos_;
      char c = sql_[pos_];
      // Plain spaces the fused separator skips below did not eat are still
      // common enough to consume with one compare, before classifying.
      if (c == ' ') {
        ++pos_;
        continue;
      }
      LexClass cls = lexer_detail::ClassOf(c);
      // Words next: they dominate tokens, so they get a predictable direct
      // branch ahead of the jump table.
      if (cls == LexClass::kWord) {
        LexWord(start);
        // Fused separator skip: a word is almost always followed by exactly
        // one space, so consuming it here saves a dispatch round trip.
        if (pos_ < sql_.size() && sql_[pos_] == ' ') ++pos_;
        continue;
      }
      if (cls == LexClass::kOther) {
        // Punctuation is the second most common class; `, ( ) ;` and `*`
        // never prefix a multi-character operator, and `=` only prefixes
        // `==`, so the common comparisons emit with one compare chain here
        // instead of two dispatch rounds (jump table + the switch in
        // LexOperatorOrPunct).
        TokenKind k;
        uint8_t op = 0;
        if (c == ',') {
          k = TokenKind::kComma;
        } else if (c == '(') {
          k = TokenKind::kLeftParen;
        } else if (c == ')') {
          k = TokenKind::kRightParen;
        } else if (c == '=' && Peek(1) != '=') {
          k = TokenKind::kOperator;
          op = lexer_detail::SingleCharOpCode('=');
        } else if (c == '*') {
          k = TokenKind::kOperator;
          op = lexer_detail::SingleCharOpCode('*');
        } else if (c == ';') {
          k = TokenKind::kSemicolon;
        } else {
          LexOperatorOrPunct(start);
          continue;
        }
        ++pos_;
        out_.emplace_back(k, KeywordId::kNoKeyword, op, false, Slice(start, 1),
                          static_cast<uint32_t>(start), uint32_t{1});
        // ", " and ") " and "= " are pervasive: fuse the separator skip.
        if (pos_ < sql_.size() && sql_[pos_] == ' ') ++pos_;
        continue;
      }
      if (cls == LexClass::kDigit) {
        LexNumber(start);
        if (pos_ < sql_.size() && sql_[pos_] == ' ') ++pos_;
        continue;
      }
      if (cls == LexClass::kSQuote) {
        LexSingleQuoted(start);
        if (pos_ < sql_.size() && sql_[pos_] == ' ') ++pos_;
        continue;
      }
      if (cls == LexClass::kSpace) {
        // Mostly stray whitespace the fused separator skips did not eat
        // (leading indentation, newlines): check one byte before committing
        // to the block scanner.
        ++pos_;
        if (pos_ < sql_.size() && lexer_detail::IsSpace(sql_[pos_])) {
          pos_ = SpaceEnd(pos_ + 1);
        }
        continue;
      }
      switch (cls) {
        case LexClass::kWord:
        case LexClass::kSpace:
        case LexClass::kOther:
        case LexClass::kDigit:
        case LexClass::kSQuote:
          break;  // handled above
        case LexClass::kDot:
          if (IsDigit(Peek(1))) {
            LexNumber(start);
          } else {
            LexOperatorOrPunct(start);
          }
          break;
        case LexClass::kDash:
          if (Peek(1) == '-') {
            LexLineComment(start);
          } else {
            LexOperatorOrPunct(start);
          }
          break;
        case LexClass::kHash:
          // MySQL line comment; `#>` / `#>>` are PostgreSQL JSON path operators.
          if (Peek(1) != '>') {
            LexLineComment(start);
          } else {
            LexOperatorOrPunct(start);
          }
          break;
        case LexClass::kSlash:
          if (Peek(1) == '*') {
            LexBlockComment(start);
          } else {
            LexOperatorOrPunct(start);
          }
          break;
        case LexClass::kIdQuote:
          LexQuotedIdentifier(start, c);
          break;
        case LexClass::kBracket:
          LexBracketIdentifier(start);
          break;
        case LexClass::kDollar:
          if ((Peek(1) == '$' || IsIdentStart(Peek(1))) && LexDollarQuoted(start)) {
            break;  // else fall through: not a dollar-quote after all
          }
          if (IsDigit(Peek(1))) {
            LexNumberedParam(start);
          } else {
            LexOperatorOrPunct(start);
          }
          break;
        case LexClass::kQuestion:
          ++pos_;
          Emit(TokenKind::kParam, Slice(start, 1), start, 1);
          break;
        case LexClass::kPercent:
          if (Peek(1) == 's' && !IsIdentChar(Peek(2))) {
            // Python-style bind parameter — but only when the `s` is a whole
            // word: in `id%salary` the `%` is the modulo operator.
            pos_ += 2;
            Emit(TokenKind::kParam, Slice(start, 2), start, 2);
          } else {
            LexOperatorOrPunct(start);
          }
          break;
        case LexClass::kColon:
          if (IsIdentStart(Peek(1))) {
            LexNamedParam(start);
          } else {
            LexOperatorOrPunct(start);
          }
          break;
      }
    }
    out_.emplace_back(TokenKind::kEnd, KeywordId::kNoKeyword, uint8_t{0}, false,
                      std::string_view{}, static_cast<uint32_t>(sql_.size()),
                      uint32_t{0});
  }

 private:
  // Span scanners, resolved at compile time per instantiation: the scalar
  // reference loops, or the fast tier the build selected.
  static size_t IdentEnd(std::string_view s, size_t pos) {
    if constexpr (kScalarOnly) return blockscan::IdentRunEndScalar(s, pos);
    return blockscan::detail::IdentRunEndFast(s, pos);
  }
  static size_t SpaceEnd2(std::string_view s, size_t pos) {
    if constexpr (kScalarOnly) return blockscan::SpaceRunEndScalar(s, pos);
    return blockscan::detail::SpaceRunEndFast(s, pos);
  }
  size_t SpaceEnd(size_t pos) const { return SpaceEnd2(sql_, pos); }
  static size_t DigitEnd(std::string_view s, size_t pos) {
    if constexpr (kScalarOnly) return blockscan::DigitRunEndScalar(s, pos);
    return blockscan::detail::DigitRunEndFast(s, pos);
  }
  static size_t FindByteAt(std::string_view s, size_t pos, char a) {
    if constexpr (kScalarOnly) return blockscan::FindByteScalar(s, pos, a);
    return blockscan::FindByteMemchr(s, pos, a);
  }
  static size_t FindEitherAt(std::string_view s, size_t pos, char a, char b) {
    if constexpr (kScalarOnly) return blockscan::FindEitherScalar(s, pos, a, b);
    return blockscan::detail::FindEitherFast(s, pos, a, b);
  }
  static size_t StringSpecialAt(std::string_view s, size_t pos) {
    return FindEitherAt(s, pos, '\'', '\\');
  }

  char Peek(size_t ahead) const {
    return pos_ + ahead < sql_.size() ? sql_[pos_ + ahead] : '\0';
  }

  std::string_view Slice(size_t start, size_t length) const {
    // Direct construction: substr()'s pos-bounds check is dead weight on the
    // hot path (every caller passes in-range spans).
    return std::string_view(sql_.data() + start, length);
  }

  /// Single-write token append: C++20 parenthesized aggregate init constructs
  /// the Token in place instead of default-constructing 48 bytes and then
  /// overwriting most of them — measurable on the lex hot path.
  Token& Emit(TokenKind kind, std::string_view text, size_t start, size_t length) {
    return out_.emplace_back(kind, KeywordId::kNoKeyword, uint8_t{0}, false, text,
                             static_cast<uint32_t>(start),
                             static_cast<uint32_t>(length));
  }

  /// Emits a token whose payload was built in `scratch_` (escape stripping):
  /// the bytes move to the side arena so the next normalized token can reuse
  /// the scratch string.
  void EmitNormalized(TokenKind kind, size_t start, size_t length) {
    Token& t = Emit(kind, norm_.Dup(scratch_), start, length);
    t.normalized = true;
    scratch_.clear();
  }

  void LexLineComment(size_t start) {
    pos_ = FindByteAt(sql_, pos_, '\n');
    if (options_.keep_comments) {
      Emit(TokenKind::kComment, Slice(start, pos_ - start), start, pos_ - start);
    }
  }

  void LexBlockComment(size_t start) {
    pos_ += 2;
    // PostgreSQL block comments nest: `/* a /* b */ c */` is one comment.
    int depth = 1;
    while (depth > 0) {
      pos_ = FindEitherAt(sql_, pos_, '*', '/');
      if (pos_ >= sql_.size()) break;
      if (sql_[pos_] == '/' && Peek(1) == '*') {
        ++depth;
        pos_ += 2;
      } else if (sql_[pos_] == '*' && Peek(1) == '/') {
        --depth;
        pos_ += 2;
      } else {
        ++pos_;
      }
    }
    if (options_.keep_comments) {
      Emit(TokenKind::kComment, Slice(start, pos_ - start), start, pos_ - start);
    }
  }

  void LexSingleQuoted(size_t start) {
    ++pos_;  // opening quote
    // Fast path: scan for the closing quote; the payload is a pure source
    // substring unless an escape ('' doubling or backslash) intervenes.
    size_t body_start = pos_;
    for (;;) {
      pos_ = StringSpecialAt(sql_, pos_);
      if (pos_ >= sql_.size()) {
        // Unterminated: the rest of the input is the body.
        Emit(TokenKind::kString, Slice(body_start, pos_ - body_start), start,
             pos_ - start);
        return;
      }
      char c = sql_[pos_];
      if (c == '\\') {
        if (pos_ + 1 < sql_.size()) break;  // escape -> slow path
        ++pos_;  // a lone trailing backslash is an ordinary body byte
        continue;
      }
      // c == '\''
      if (Peek(1) == '\'') break;  // doubled-quote escape -> slow path
      size_t body_len = pos_ - body_start;
      ++pos_;
      Emit(TokenKind::kString, Slice(body_start, body_len), start, pos_ - start);
      return;
    }
    // Slow path: materialize the escape-stripped payload, bulk-copying the
    // ordinary spans between escapes.
    scratch_.assign(sql_.data() + body_start, pos_ - body_start);
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '\\' && pos_ + 1 < sql_.size()) {
        // MySQL-style backslash escape: keep the escaped char literally.
        scratch_.push_back(sql_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        if (Peek(1) == '\'') {  // doubled-quote escape
          scratch_.push_back('\'');
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      size_t next = StringSpecialAt(sql_, pos_);
      if (next == pos_) {  // a lone trailing backslash: ordinary byte
        scratch_.push_back(c);
        ++pos_;
      } else {
        scratch_.append(sql_.data() + pos_, next - pos_);
        pos_ = next;
      }
    }
    EmitNormalized(TokenKind::kString, start, pos_ - start);
  }

  void LexQuotedIdentifier(size_t start, char quote) {
    ++pos_;
    size_t body_start = pos_;
    pos_ = FindByteAt(sql_, pos_, quote);
    if (pos_ >= sql_.size()) {
      Emit(TokenKind::kQuotedIdentifier, Slice(body_start, pos_ - body_start), start,
           pos_ - start);
      return;
    }
    if (Peek(1) != quote) {
      size_t body_len = pos_ - body_start;
      ++pos_;
      Emit(TokenKind::kQuotedIdentifier, Slice(body_start, body_len), start,
           pos_ - start);
      return;
    }
    // Doubled-quote escape -> slow path: materialize the stripped payload.
    scratch_.assign(sql_.data() + body_start, pos_ - body_start);
    while (pos_ < sql_.size()) {
      if (sql_[pos_] == quote) {
        if (Peek(1) == quote) {
          scratch_.push_back(quote);
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      size_t next = FindByteAt(sql_, pos_, quote);
      scratch_.append(sql_.data() + pos_, next - pos_);
      pos_ = next;
    }
    EmitNormalized(TokenKind::kQuotedIdentifier, start, pos_ - start);
  }

  void LexBracketIdentifier(size_t start) {
    ++pos_;
    size_t body_start = pos_;
    pos_ = FindByteAt(sql_, pos_, ']');
    size_t body_len = pos_ - body_start;
    if (pos_ < sql_.size()) ++pos_;  // closing bracket
    Emit(TokenKind::kQuotedIdentifier, Slice(body_start, body_len), start, pos_ - start);
  }

  /// PostgreSQL $tag$...$tag$ strings (no escapes inside, so the body is
  /// always a pure source substring). Returns false if this is not actually
  /// a dollar quote (e.g. `$foo` used as an identifier character elsewhere).
  bool LexDollarQuoted(size_t start) {
    size_t tag_end = pos_ + 1;
    while (tag_end < sql_.size() && IsIdentChar(sql_[tag_end]) && sql_[tag_end] != '$') {
      ++tag_end;
    }
    if (tag_end >= sql_.size() || sql_[tag_end] != '$') return false;
    std::string_view tag = sql_.substr(pos_, tag_end - pos_ + 1);  // includes both $s
    size_t body_start = tag_end + 1;
    size_t close = sql_.find(tag, body_start);
    if (close == std::string_view::npos) {
      // Unterminated: take the rest of the input as the string body.
      Emit(TokenKind::kString, sql_.substr(body_start), start, sql_.size() - start);
      pos_ = sql_.size();
      return true;
    }
    Emit(TokenKind::kString, Slice(body_start, close - body_start), start,
         close + tag.size() - start);
    pos_ = close + tag.size();
    return true;
  }

  void LexNumberedParam(size_t start) {
    pos_ = DigitEnd(sql_, pos_ + 1);  // past '$'
    Emit(TokenKind::kParam, Slice(start, pos_ - start), start, pos_ - start);
  }

  void LexNamedParam(size_t start) {
    pos_ = IdentEnd(sql_, pos_ + 1);  // past ':'
    Emit(TokenKind::kParam, Slice(start, pos_ - start), start, pos_ - start);
  }

  void LexNumber(size_t start) {
#if SQLCHECK_BLOCK_SCAN_SSE2
    if constexpr (!kScalarOnly) {
      // Plain integer literals dominate: one 16-byte load finds the digit
      // run, and if the terminator cannot extend the number ('.', exponent),
      // the token emits without touching the dot/exponent loop below.
      if (start + 16 <= sql_.size()) {
        __m128i v = blockscan::simd::Load(sql_.data() + start);
        unsigned miss = static_cast<unsigned>(
                            _mm_movemask_epi8(blockscan::simd::InRange(v, '0', '9'))) ^
                        0xFFFFu;
        if (miss != 0) {
          size_t len = static_cast<size_t>(blockscan::detail::CountTrailingZeros32(miss));
          char term = sql_[start + len];
          if (len != 0 && term != '.' && term != 'e' && term != 'E') {
            pos_ = start + len;
            Emit(TokenKind::kNumber, Slice(start, len), start, len);
            return;
          }
        }
      }
    }
#endif  // SQLCHECK_BLOCK_SCAN_SSE2
    bool seen_dot = false;
    bool seen_exp = false;
    pos_ = DigitEnd(sql_, pos_);
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '.' && !seen_dot && !seen_exp) {
        seen_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !seen_exp && pos_ > start &&
                 (IsDigit(Peek(1)) || ((Peek(1) == '+' || Peek(1) == '-') && IsDigit(Peek(2))))) {
        seen_exp = true;
        pos_ += (Peek(1) == '+' || Peek(1) == '-') ? 2 : 1;
      } else {
        break;
      }
      pos_ = DigitEnd(sql_, pos_);
    }
    Emit(TokenKind::kNumber, Slice(start, pos_ - start), start, pos_ - start);
  }

  void LexWord(size_t start) {
#if SQLCHECK_BLOCK_SCAN_SWAR
    if constexpr (!kScalarOnly) {
#if SQLCHECK_BLOCK_SCAN_SSE2
      // In-register fast path: one 16-byte load covers the whole word for
      // every word shorter than 16 bytes, and the low lanes of the same
      // register — case folded and masked to the word length — are the
      // keyword probe key, so the probe costs no extra loads or per-byte
      // folding. The boundary is lane-exact identical to the scalar loop
      // (simd::IdentMask contract).
      if (start + 16 <= sql_.size()) {
        constexpr uint64_t kFold = 0x2020202020202020ull;
        // Block-mask reuse: a 16-byte block typically covers several tokens,
        // and the classification of a fixed input position never changes, so
        // the previous word's miss bitmap answers this word's boundary with
        // one shift+ctz — no load/classify/movemask chain. (cached_miss_
        // starts 0, so a bogus initial delta falls through to a fresh load.)
        size_t delta = start - word_block_;
        if (delta < 16) {
          if (unsigned m = word_miss_ >> delta) {
            size_t len = static_cast<size_t>(blockscan::detail::CountTrailingZeros32(m));
            pos_ = start + len;
            // Probe key via two plain u64 loads (start + 16 <= size holds
            // here, so both are in bounds) — independent of the ctz chain.
            uint64_t lo = (blockscan::swar::Load(sql_.data() + start) | kFold) &
                          keyword_table::kKeyMasks.lo[len];
            uint64_t hi = (blockscan::swar::Load(sql_.data() + start + 8) | kFold) &
                          keyword_table::kKeyMasks.hi[len];
            EmitWord(Slice(start, len), start, keyword_table::LookupFolded(lo, hi));
            return;
          }
          // Word may extend past the cached block: rescan from `start`.
        }
        __m128i v = blockscan::simd::Load(sql_.data() + start);
        unsigned miss = static_cast<unsigned>(
                            _mm_movemask_epi8(blockscan::simd::IdentMask(v))) ^
                        0xFFFFu;
        word_block_ = start;
        word_miss_ = miss;
        if (miss != 0) {
          // First non-ident lane is >= 1: the start byte is pre-classified.
          // Branchless probe-key build: both qwords fold and mask through
          // kKeyMasks (no data-dependent `len < 8` split), and lengths up to
          // 16 probe empty buckets rather than branching on the range.
          size_t len = static_cast<size_t>(blockscan::detail::CountTrailingZeros32(miss));
          pos_ = start + len;
          uint64_t lo = (static_cast<uint64_t>(_mm_cvtsi128_si64(v)) | kFold) &
                        keyword_table::kKeyMasks.lo[len];
          uint64_t hi =
              (static_cast<uint64_t>(_mm_cvtsi128_si64(_mm_srli_si128(v, 8))) | kFold) &
              keyword_table::kKeyMasks.hi[len];
          EmitWord(Slice(start, len), start, keyword_table::LookupFolded(lo, hi));
          return;
        }
        pos_ = IdentEnd(sql_, start + 16);
        // 16+ bytes is longer than any keyword.
        EmitWord(Slice(start, pos_ - start), start, KeywordId::kNoKeyword);
        return;
      }
#endif  // SQLCHECK_BLOCK_SCAN_SSE2
      // Near the buffer end (or no SSE2): one little-endian u64 load covers
      // words up to 7 bytes, and the same register — case folded and masked
      // to the word length — is the keyword probe key. The boundary is
      // lane-exact identical to the scalar loop (swar::IdentMask contract).
      if (start + 8 <= sql_.size()) {
        uint64_t v = blockscan::swar::Load(sql_.data() + start);
        uint64_t miss = ~blockscan::swar::IdentMask(v) & blockscan::swar::kHigh;
        if (miss != 0) {
          // First non-ident lane is >= 1: the start byte is pre-classified.
          size_t len = blockscan::swar::FirstLane(miss);
          pos_ = start + len;
          uint64_t folded = (v | 0x2020202020202020ull) & ((1ull << (8 * len)) - 1);
          EmitWord(Slice(start, len), start,
                   keyword_table::LookupFolded(folded, 0));
          return;
        }
        pos_ = IdentEnd(sql_, start + 8);
        size_t len = pos_ - start;
        std::string_view word = Slice(start, len);
        if (len <= keyword_table::kMaxKeywordLength) {
          // Reuse the already-loaded low 8 bytes for the probe key; only
          // bytes 8..len-1 (at most 6, and rare) need the shift loop.
          uint64_t lo = v | 0x2020202020202020ull;
          uint64_t hi = 0;
          for (size_t j = 8; j < len; ++j) {
            hi |= keyword_table::FoldLane(sql_[start + j]) << (8 * (j - 8));
          }
          EmitWord(word, start, keyword_table::LookupFolded(lo, hi));
        } else {
          EmitWord(word, start, KeywordId::kNoKeyword);
        }
        return;
      }
      pos_ = blockscan::IdentRunEndScalar(sql_, start + 1);
    } else {
      pos_ = IdentEnd(sql_, start + 1);  // start byte pre-classified
    }
#else
    pos_ = IdentEnd(sql_, start + 1);  // start byte pre-classified
#endif
    std::string_view word = Slice(start, pos_ - start);
    EmitWord(word, start, LookupKeyword(word));
  }

  void EmitWord(std::string_view word, size_t start, KeywordId kw) {
    out_.emplace_back(kw == KeywordId::kNoKeyword ? TokenKind::kIdentifier
                                                  : TokenKind::kKeyword,
                      kw, uint8_t{0}, false, word, static_cast<uint32_t>(start),
                      static_cast<uint32_t>(word.size()));
  }

  void LexOperatorOrPunct(size_t start) {
    char c = sql_[pos_];
    TokenKind kind = TokenKind::kOperator;
    switch (c) {
      case ',': kind = TokenKind::kComma; break;
      case '(': kind = TokenKind::kLeftParen; break;
      case ')': kind = TokenKind::kRightParen; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case '.': kind = TokenKind::kDot; break;
      default: {
        if (int m = lexer_detail::MatchMultiCharOperator(sql_.substr(pos_))) {
          size_t len = lexer_detail::kMultiCharOperators[m - 1].size();
          pos_ += len;
          Emit(TokenKind::kOperator, Slice(start, len), start, len).op =
              lexer_detail::MultiCharOpCode(m);
          return;
        }
        break;
      }
    }
    ++pos_;
    Token& t = Emit(kind, Slice(start, 1), start, 1);
    if (kind == TokenKind::kOperator) t.op = lexer_detail::SingleCharOpCode(c);
  }

  std::string_view sql_;
  LexerOptions options_;
  std::vector<Token>& out_;
  Arena& norm_;
  std::string& scratch_;
  size_t pos_ = 0;
  // LexWord's cached ident-classification block (see the fast path): the
  // miss bitmap for the 16 bytes at word_block_. Never stale — input bytes
  // are immutable, so the bitmap is a pure function of the position.
  size_t word_block_ = ~size_t{0};
  unsigned word_miss_ = 0;
};

}  // namespace

const std::vector<Token>& Lex(std::string_view sql, TokenBuffer& buffer,
                              const LexerOptions& options) {
  buffer.Clear();
  // One mode check per statement, not per span scan: the two instantiations
  // produce byte-identical token streams.
  if (blockscan::ForceScalar()) {
    LexerImpl</*kScalarOnly=*/true>(sql, options, buffer.tokens_, buffer.norm_,
                                    buffer.scratch_)
        .Run();
  } else {
    LexerImpl</*kScalarOnly=*/false>(sql, options, buffer.tokens_, buffer.norm_,
                                     buffer.scratch_)
        .Run();
  }
  return buffer.tokens();
}

}  // namespace sqlcheck::sql
