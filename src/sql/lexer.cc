#include "sql/lexer.h"

#include <cctype>

#include "common/strings.h"
#include "sql/lexer_detail.h"

namespace sqlcheck::sql {

namespace {

using lexer_detail::IsDigit;
using lexer_detail::IsIdentChar;
using lexer_detail::IsIdentStart;

class LexerImpl {
 public:
  LexerImpl(std::string_view sql, const LexerOptions& options)
      : sql_(sql), options_(options) {}

  std::vector<Token> Run() {
    std::vector<Token> out;
    while (pos_ < sql_.size()) {
      size_t start = pos_;
      char c = sql_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '-' && Peek(1) == '-') {
        LexLineComment(start, out);
        continue;
      }
      if (c == '#' && Peek(1) != '>') {
        // MySQL line comment; `#>` / `#>>` are PostgreSQL JSON path operators.
        LexLineComment(start, out);
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment(start, out);
        continue;
      }
      if (c == '\'') {
        LexSingleQuoted(start, out);
        continue;
      }
      if (c == '"' || c == '`') {
        LexQuotedIdentifier(start, c, out);
        continue;
      }
      if (c == '[') {
        LexBracketIdentifier(start, out);
        continue;
      }
      if (c == '$' && (Peek(1) == '$' || IsIdentStart(Peek(1)))) {
        if (LexDollarQuoted(start, out)) continue;
        // Fall through: not a dollar-quote after all.
      }
      if (c == '$' && IsDigit(Peek(1))) {
        LexNumberedParam(start, out);
        continue;
      }
      if (c == '?') {
        Emit(out, TokenKind::kParam, "?", start, 1);
        ++pos_;
        continue;
      }
      if (c == '%' && Peek(1) == 's' && !IsIdentChar(Peek(2))) {
        // Python-style bind parameter — but only when the `s` is a whole
        // word: in `id%salary` the `%` is the modulo operator.
        Emit(out, TokenKind::kParam, "%s", start, 2);
        pos_ += 2;
        continue;
      }
      if (c == ':' && IsIdentStart(Peek(1))) {
        LexNamedParam(start, out);
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
        LexNumber(start, out);
        continue;
      }
      if (IsIdentStart(c)) {
        LexWord(start, out);
        continue;
      }
      LexOperatorOrPunct(start, out);
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.offset = sql_.size();
    out.push_back(end);
    return out;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < sql_.size() ? sql_[pos_ + ahead] : '\0';
  }

  void Emit(std::vector<Token>& out, TokenKind kind, std::string text, size_t start,
            size_t length) {
    if (kind == TokenKind::kComment && !options_.keep_comments) return;
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.offset = start;
    t.length = length;
    out.push_back(std::move(t));
  }

  void LexLineComment(size_t start, std::vector<Token>& out) {
    while (pos_ < sql_.size() && sql_[pos_] != '\n') ++pos_;
    Emit(out, TokenKind::kComment, std::string(sql_.substr(start, pos_ - start)), start,
         pos_ - start);
  }

  void LexBlockComment(size_t start, std::vector<Token>& out) {
    pos_ += 2;
    // PostgreSQL block comments nest: `/* a /* b */ c */` is one comment.
    int depth = 1;
    while (pos_ < sql_.size() && depth > 0) {
      if (sql_[pos_] == '/' && Peek(1) == '*') {
        ++depth;
        pos_ += 2;
      } else if (sql_[pos_] == '*' && Peek(1) == '/') {
        --depth;
        pos_ += 2;
      } else {
        ++pos_;
      }
    }
    Emit(out, TokenKind::kComment, std::string(sql_.substr(start, pos_ - start)), start,
         pos_ - start);
  }

  void LexSingleQuoted(size_t start, std::vector<Token>& out) {
    ++pos_;  // opening quote
    std::string text;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == '\\' && pos_ + 1 < sql_.size()) {
        // MySQL-style backslash escape: keep the escaped char literally.
        text.push_back(sql_[pos_ + 1]);
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        if (Peek(1) == '\'') {  // doubled-quote escape
          text.push_back('\'');
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      text.push_back(c);
      ++pos_;
    }
    Emit(out, TokenKind::kString, std::move(text), start, pos_ - start);
  }

  void LexQuotedIdentifier(size_t start, char quote, std::vector<Token>& out) {
    ++pos_;
    std::string text;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (c == quote) {
        if (Peek(1) == quote) {
          text.push_back(quote);
          pos_ += 2;
          continue;
        }
        ++pos_;
        break;
      }
      text.push_back(c);
      ++pos_;
    }
    Emit(out, TokenKind::kQuotedIdentifier, std::move(text), start, pos_ - start);
  }

  void LexBracketIdentifier(size_t start, std::vector<Token>& out) {
    ++pos_;
    std::string text;
    while (pos_ < sql_.size() && sql_[pos_] != ']') {
      text.push_back(sql_[pos_]);
      ++pos_;
    }
    if (pos_ < sql_.size()) ++pos_;  // closing bracket
    Emit(out, TokenKind::kQuotedIdentifier, std::move(text), start, pos_ - start);
  }

  /// PostgreSQL $tag$...$tag$ strings. Returns false if this is not actually a
  /// dollar quote (e.g. `$foo` used as an identifier character elsewhere).
  bool LexDollarQuoted(size_t start, std::vector<Token>& out) {
    size_t tag_end = pos_ + 1;
    while (tag_end < sql_.size() && IsIdentChar(sql_[tag_end]) && sql_[tag_end] != '$') {
      ++tag_end;
    }
    if (tag_end >= sql_.size() || sql_[tag_end] != '$') return false;
    std::string tag(sql_.substr(pos_, tag_end - pos_ + 1));  // includes both $s
    size_t body_start = tag_end + 1;
    size_t close = sql_.find(tag, body_start);
    if (close == std::string_view::npos) {
      // Unterminated: take the rest of the input as the string body.
      close = sql_.size();
      Emit(out, TokenKind::kString, std::string(sql_.substr(body_start)), start,
           sql_.size() - start);
      pos_ = sql_.size();
      return true;
    }
    Emit(out, TokenKind::kString, std::string(sql_.substr(body_start, close - body_start)),
         start, close + tag.size() - start);
    pos_ = close + tag.size();
    return true;
  }

  void LexNumberedParam(size_t start, std::vector<Token>& out) {
    ++pos_;  // '$'
    while (pos_ < sql_.size() && IsDigit(sql_[pos_])) ++pos_;
    Emit(out, TokenKind::kParam, std::string(sql_.substr(start, pos_ - start)), start,
         pos_ - start);
  }

  void LexNamedParam(size_t start, std::vector<Token>& out) {
    ++pos_;  // ':'
    while (pos_ < sql_.size() && IsIdentChar(sql_[pos_])) ++pos_;
    Emit(out, TokenKind::kParam, std::string(sql_.substr(start, pos_ - start)), start,
         pos_ - start);
  }

  void LexNumber(size_t start, std::vector<Token>& out) {
    bool seen_dot = false;
    bool seen_exp = false;
    while (pos_ < sql_.size()) {
      char c = sql_[pos_];
      if (IsDigit(c)) {
        ++pos_;
      } else if (c == '.' && !seen_dot && !seen_exp) {
        seen_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !seen_exp && pos_ > start &&
                 (IsDigit(Peek(1)) || ((Peek(1) == '+' || Peek(1) == '-') && IsDigit(Peek(2))))) {
        seen_exp = true;
        pos_ += (Peek(1) == '+' || Peek(1) == '-') ? 2 : 1;
      } else {
        break;
      }
    }
    Emit(out, TokenKind::kNumber, std::string(sql_.substr(start, pos_ - start)), start,
         pos_ - start);
  }

  void LexWord(size_t start, std::vector<Token>& out) {
    while (pos_ < sql_.size() && IsIdentChar(sql_[pos_])) ++pos_;
    std::string word(sql_.substr(start, pos_ - start));
    TokenKind kind = IsSqlKeyword(word) ? TokenKind::kKeyword : TokenKind::kIdentifier;
    Emit(out, kind, std::move(word), start, pos_ - start);
  }

  void LexOperatorOrPunct(size_t start, std::vector<Token>& out) {
    char c = sql_[pos_];
    switch (c) {
      case ',': Emit(out, TokenKind::kComma, ",", start, 1); ++pos_; return;
      case '(': Emit(out, TokenKind::kLeftParen, "(", start, 1); ++pos_; return;
      case ')': Emit(out, TokenKind::kRightParen, ")", start, 1); ++pos_; return;
      case ';': Emit(out, TokenKind::kSemicolon, ";", start, 1); ++pos_; return;
      case '.': Emit(out, TokenKind::kDot, ".", start, 1); ++pos_; return;
      default: break;
    }
    for (std::string_view op : lexer_detail::kMultiCharOperators) {
      if (sql_.substr(pos_).substr(0, op.size()) == op) {
        Emit(out, TokenKind::kOperator, std::string(op), start, op.size());
        pos_ += op.size();
        return;
      }
    }
    Emit(out, TokenKind::kOperator, std::string(1, c), start, 1);
    ++pos_;
  }

  std::string_view sql_;
  LexerOptions options_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<Token> Lex(std::string_view sql, const LexerOptions& options) {
  return LexerImpl(sql, options).Run();
}

}  // namespace sqlcheck::sql
