#include "sql/token.h"

#include <unordered_set>

#include "common/strings.h"

namespace sqlcheck::sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kQuotedIdentifier: return "quoted_identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kNumber: return "number";
    case TokenKind::kOperator: return "operator";
    case TokenKind::kComma: return "comma";
    case TokenKind::kLeftParen: return "lparen";
    case TokenKind::kRightParen: return "rparen";
    case TokenKind::kDot: return "dot";
    case TokenKind::kSemicolon: return "semicolon";
    case TokenKind::kParam: return "param";
    case TokenKind::kComment: return "comment";
    case TokenKind::kEnd: return "end";
  }
  return "unknown";
}

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kKeyword && EqualsIgnoreCase(text, kw);
}

bool IsSqlKeyword(std::string_view word) {
  // Keyword table spanning the dialects sqlcheck targets (PostgreSQL, MySQL,
  // SQLite, SQL Server). Non-validating: unknown words simply lex as
  // identifiers, so this list only needs the words grammar rules key off.
  static const std::unordered_set<std::string>* kKeywords = [] {
    auto* s = new std::unordered_set<std::string>{
        "select",     "from",       "where",      "group",      "by",
        "having",     "order",      "limit",      "offset",     "insert",
        "into",       "values",     "update",     "set",        "delete",
        "create",     "table",      "index",      "view",       "drop",
        "alter",      "add",        "column",     "constraint", "primary",
        "key",        "foreign",    "references", "unique",     "check",
        "not",        "null",       "default",    "and",        "or",
        "in",         "between",    "like",       "ilike",      "regexp",
        "rlike",      "similar",    "is",         "as",         "on",
        "join",       "inner",      "left",       "right",      "full",
        "outer",      "cross",      "natural",    "using",      "union",
        "all",        "distinct",   "exists",     "case",       "when",
        "then",       "else",       "end",        "asc",        "desc",
        "if",         "cascade",    "restrict",   "true",       "false",
        "enum",       "auto_increment", "autoincrement",        "serial",
        "temporary",  "temp",       "escape",     "collate",    "rename",
        "to",         "type",       "modify",     "change",     "with",
        "recursive",  "returning",  "conflict",   "replace",    "ignore",
        "explain",    "analyze",    "vacuum",     "begin",      "commit",
        "rollback",   "transaction","grant",      "revoke",     "truncate",
        "intersect",  "except",     "any",        "some",       "cast",
    };
    return s;
  }();
  return kKeywords->count(ToLower(word)) > 0;
}

}  // namespace sqlcheck::sql
