#include "sql/token.h"

#include <cstring>

#include "common/strings.h"
#include "sql/keyword_table.h"

namespace sqlcheck::sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kQuotedIdentifier: return "quoted_identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kNumber: return "number";
    case TokenKind::kOperator: return "operator";
    case TokenKind::kComma: return "comma";
    case TokenKind::kLeftParen: return "lparen";
    case TokenKind::kRightParen: return "rparen";
    case TokenKind::kDot: return "dot";
    case TokenKind::kSemicolon: return "semicolon";
    case TokenKind::kParam: return "param";
    case TokenKind::kComment: return "comment";
    case TokenKind::kEnd: return "end";
  }
  return "unknown";
}

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kKeyword && EqualsIgnoreCase(text, kw);
}

KeywordId LookupKeyword(std::string_view word) {
  size_t n = word.size();
  if (n == 0 || n > keyword_table::kMaxKeywordLength) return KeywordId::kNoKeyword;
  // Byte-shift packing matches the table layout on any endianness; the
  // lexer's little-endian fast path skips this loop by reusing its scan
  // register directly.
  uint64_t lo = 0, hi = 0;
  for (size_t i = 0; i < n && i < 8; ++i) {
    lo |= keyword_table::FoldLane(word[i]) << (8 * i);
  }
  for (size_t i = 8; i < n; ++i) {
    hi |= keyword_table::FoldLane(word[i]) << (8 * (i - 8));
  }
  return keyword_table::LookupFolded(lo, hi);
}

std::string_view KeywordSpelling(KeywordId id) {
  return keyword_table::kSpellings[static_cast<size_t>(id)];
}

bool IsSqlKeyword(std::string_view word) {
  return LookupKeyword(word) != KeywordId::kNoKeyword;
}

}  // namespace sqlcheck::sql
