#include "sql/token.h"

#include <cstring>

#include "common/strings.h"

namespace sqlcheck::sql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kQuotedIdentifier: return "quoted_identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kNumber: return "number";
    case TokenKind::kOperator: return "operator";
    case TokenKind::kComma: return "comma";
    case TokenKind::kLeftParen: return "lparen";
    case TokenKind::kRightParen: return "rparen";
    case TokenKind::kDot: return "dot";
    case TokenKind::kSemicolon: return "semicolon";
    case TokenKind::kParam: return "param";
    case TokenKind::kComment: return "comment";
    case TokenKind::kEnd: return "end";
  }
  return "unknown";
}

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kKeyword && EqualsIgnoreCase(text, kw);
}

namespace {

/// Canonical spellings, indexed by KeywordId value (kNoKeyword at 0).
constexpr std::string_view kSpellings[] = {
    "",
    "select", "from", "where", "group", "by",
    "having", "order", "limit", "offset", "insert",
    "into", "values", "update", "set", "delete",
    "create", "table", "index", "view", "drop",
    "alter", "add", "column", "constraint", "primary",
    "key", "foreign", "references", "unique", "check",
    "not", "null", "default", "and", "or",
    "in", "between", "like", "ilike", "regexp",
    "rlike", "similar", "is", "as", "on",
    "join", "inner", "left", "right", "full",
    "outer", "cross", "natural", "using", "union",
    "all", "distinct", "exists", "case", "when",
    "then", "else", "end", "asc", "desc",
    "if", "cascade", "restrict", "true", "false",
    "enum", "auto_increment", "autoincrement", "serial",
    "temporary", "temp", "escape", "collate", "rename",
    "to", "type", "modify", "change", "with",
    "recursive", "returning", "conflict", "replace", "ignore",
    "explain", "analyze", "vacuum", "begin", "commit",
    "rollback", "transaction", "grant", "revoke", "truncate",
    "intersect", "except", "any", "some", "cast",
};
constexpr size_t kKeywordCount = sizeof(kSpellings) / sizeof(kSpellings[0]);
static_assert(static_cast<size_t>(KeywordId::kCast) + 1 == kKeywordCount,
              "KeywordId enum and spelling table must stay in lockstep");

// The longest keyword is "auto_increment" (14 bytes); longer words can skip
// the probe entirely.
constexpr size_t kMaxKeywordLength = 14;

inline char AsciiLower(char c) { return c >= 'A' && c <= 'Z' ? static_cast<char>(c + 32) : c; }

/// (length, first letter) -> candidate keyword ids. Buckets hold at most a
/// handful of entries, so lookup is a lowercase pass plus one or two memcmps
/// — measurably faster than hashing on the lex hot path, where every word of
/// every statement probes this table.
struct KeywordBuckets {
  // 26 first letters x lengths 1..14; each bucket: offset/count into ids.
  uint16_t offset[26][kMaxKeywordLength + 1] = {};
  uint8_t count[26][kMaxKeywordLength + 1] = {};
  KeywordId ids[kKeywordCount] = {};
};

const KeywordBuckets& Buckets() {
  static const KeywordBuckets* table = [] {
    auto* t = new KeywordBuckets();
    for (size_t i = 1; i < kKeywordCount; ++i) {
      std::string_view w = kSpellings[i];
      ++t->count[w[0] - 'a'][w.size()];
    }
    uint16_t next = 0;
    for (int c = 0; c < 26; ++c) {
      for (size_t l = 1; l <= kMaxKeywordLength; ++l) {
        t->offset[c][l] = next;
        next = static_cast<uint16_t>(next + t->count[c][l]);
        t->count[c][l] = 0;  // reused as a fill cursor below
      }
    }
    for (size_t i = 1; i < kKeywordCount; ++i) {
      std::string_view w = kSpellings[i];
      int c = w[0] - 'a';
      t->ids[t->offset[c][w.size()] + t->count[c][w.size()]++] =
          static_cast<KeywordId>(i);
    }
    return t;
  }();
  return *table;
}

}  // namespace

KeywordId LookupKeyword(std::string_view word) {
  if (word.empty() || word.size() > kMaxKeywordLength) return KeywordId::kNoKeyword;
  char buf[kMaxKeywordLength];
  for (size_t i = 0; i < word.size(); ++i) buf[i] = AsciiLower(word[i]);
  if (buf[0] < 'a' || buf[0] > 'z') return KeywordId::kNoKeyword;
  const KeywordBuckets& table = Buckets();
  int c = buf[0] - 'a';
  uint16_t begin = table.offset[c][word.size()];
  uint16_t end = static_cast<uint16_t>(begin + table.count[c][word.size()]);
  for (uint16_t i = begin; i < end; ++i) {
    KeywordId id = table.ids[i];
    if (std::memcmp(kSpellings[static_cast<size_t>(id)].data(), buf, word.size()) == 0) {
      return id;
    }
  }
  return KeywordId::kNoKeyword;
}

std::string_view KeywordSpelling(KeywordId id) {
  return kSpellings[static_cast<size_t>(id)];
}

bool IsSqlKeyword(std::string_view word) {
  return LookupKeyword(word) != KeywordId::kNoKeyword;
}

}  // namespace sqlcheck::sql
