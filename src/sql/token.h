#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sql/keywords.h"

namespace sqlcheck::sql {

/// \brief Lexical classes produced by the non-validating lexer.
enum class TokenKind {
  kKeyword,           ///< Recognized SQL keyword (SELECT, FROM, ...).
  kIdentifier,        ///< Bare identifier.
  kQuotedIdentifier,  ///< "x", `x`, or [x] — quotes stripped in `text`.
  kString,            ///< 'x' or $$x$$ — quotes stripped in `text`.
  kNumber,            ///< Integer or real literal.
  kOperator,          ///< +, -, *, /, %, ||, =, ==, <>, !=, <=, >=, ::, ...
  kComma,
  kLeftParen,
  kRightParen,
  kDot,
  kSemicolon,
  kParam,    ///< ?, %s, :name, $1 — bind parameter placeholder.
  kComment,  ///< -- ..., # ..., /* ... */ (only kept when requested).
  kEnd,      ///< End of input sentinel.
};

/// \brief Returns a stable human-readable name for a token kind.
const char* TokenKindName(TokenKind kind);

/// \brief Largest input one Lex() call accepts: Token stores its source span
/// as u32, so a single lexed buffer — one statement, script, or append — is
/// capped at 4 GiB. Callers that frame untrusted input (the session's
/// CheckQuota) enforce this before lexing; nothing real comes near it.
inline constexpr size_t kMaxLexBytes = 0xFFFFFFFFull;

/// \brief One lexical token with its source span. Zero-copy: `text` is a
/// view into the lexed source buffer for every token except the rare
/// normalized payloads (quote-escape stripping, backslash escapes), which
/// view the owning TokenBuffer's side arena instead (`normalized` set).
/// Tokens are therefore only valid while their source buffer and TokenBuffer
/// are; anything that outlives them (UnknownStatement) rebases the views
/// onto storage it owns. Spans are u32 (see kMaxLexBytes): with the enum
/// fields packed alongside, a Token is 32 bytes instead of 40 — one fewer
/// cache line per pair in the token stream the whole frontend iterates.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  KeywordId keyword = KeywordId::kNoKeyword;  ///< Set for kKeyword tokens.
  uint8_t op = 0;           ///< Operator code for kOperator (lexer_detail::OpCode).
  bool normalized = false;  ///< `text` views the TokenBuffer, not the source.
  std::string_view text;    ///< Normalized payload (quotes stripped, keywords as written).
  uint32_t offset = 0;      ///< Byte offset of the token start in the original SQL.
  uint32_t length = 0;      ///< Byte length of the original lexeme (with quotes).

  bool Is(TokenKind k) const { return kind == k; }

  /// True if this is the given keyword — one integer compare.
  bool IsKeyword(KeywordId k) const { return kind == TokenKind::kKeyword && keyword == k; }

  /// True if this is a keyword matching `kw` case-insensitively. Prefer the
  /// KeywordId overload on hot paths.
  bool IsKeyword(std::string_view kw) const;

  /// True if this is the operator with this code — one integer compare.
  bool IsOperator(uint8_t code) const { return kind == TokenKind::kOperator && op == code; }

  /// True if this is an operator with exactly this spelling. Prefer the
  /// code overload on hot paths.
  bool IsOperator(std::string_view spelling) const {
    return kind == TokenKind::kOperator && text == spelling;
  }
};

/// \brief True if `word` is in the SQL keyword table (case-insensitive).
bool IsSqlKeyword(std::string_view word);

}  // namespace sqlcheck::sql
