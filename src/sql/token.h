#pragma once

#include <string>
#include <vector>

namespace sqlcheck::sql {

/// \brief Lexical classes produced by the non-validating lexer.
enum class TokenKind {
  kKeyword,           ///< Recognized SQL keyword (SELECT, FROM, ...).
  kIdentifier,        ///< Bare identifier.
  kQuotedIdentifier,  ///< "x", `x`, or [x] — quotes stripped in `text`.
  kString,            ///< 'x' or $$x$$ — quotes stripped in `text`.
  kNumber,            ///< Integer or real literal.
  kOperator,          ///< +, -, *, /, %, ||, =, ==, <>, !=, <=, >=, ::, ...
  kComma,
  kLeftParen,
  kRightParen,
  kDot,
  kSemicolon,
  kParam,    ///< ?, %s, :name, $1 — bind parameter placeholder.
  kComment,  ///< -- ..., # ..., /* ... */ (only kept when requested).
  kEnd,      ///< End of input sentinel.
};

/// \brief Returns a stable human-readable name for a token kind.
const char* TokenKindName(TokenKind kind);

/// \brief One lexical token with its source span.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    ///< Normalized payload (quotes stripped, keywords as written).
  size_t offset = 0;   ///< Byte offset of the token start in the original SQL.
  size_t length = 0;   ///< Byte length of the original lexeme (with quotes).

  bool Is(TokenKind k) const { return kind == k; }

  /// True if this is a keyword matching `kw` case-insensitively.
  bool IsKeyword(std::string_view kw) const;

  /// True if this is an operator with exactly this spelling.
  bool IsOperator(std::string_view op) const { return kind == TokenKind::kOperator && text == op; }
};

/// \brief True if `word` is in the SQL keyword table (case-insensitive).
bool IsSqlKeyword(std::string_view word);

}  // namespace sqlcheck::sql
