#pragma once

#include <string>

#include "sql/ast.h"

namespace sqlcheck::sql {

/// \brief Renders an expression back to SQL text.
std::string PrintExpr(const Expr& expr);

/// \brief Renders a statement back to SQL text (single line, canonical
/// keyword casing). Used by ap-fix to emit rewritten queries; a printed
/// statement re-parses to an equivalent tree (property-tested).
std::string PrintStatement(const Statement& stmt);

}  // namespace sqlcheck::sql
