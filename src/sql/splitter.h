#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sqlcheck::sql {

/// \brief Splits a SQL script into individual statements on `;` boundaries,
/// respecting string literals, quoted identifiers, comments, and
/// BEGIN...END / CASE...END compound bodies (trigger and procedure scripts
/// stay whole; transaction-control `BEGIN` still terminates normally).
/// Statements are returned without the trailing semicolon; empty pieces are
/// dropped.
std::vector<std::string> SplitStatements(std::string_view script);

}  // namespace sqlcheck::sql
