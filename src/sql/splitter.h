#pragma once

#include <string_view>
#include <vector>

#include "sql/lexer.h"

namespace sqlcheck::sql {

/// \brief Splits a SQL script into individual statements on `;` boundaries,
/// respecting string literals, quoted identifiers, comments, and
/// BEGIN...END / CASE...END compound bodies (trigger and procedure scripts
/// stay whole; transaction-control `BEGIN` still terminates normally).
/// Statements are returned without the trailing semicolon; empty pieces are
/// dropped.
///
/// Zero-copy: the returned pieces are trimmed views into `script`, valid
/// while `script`'s buffer is. `buffer` (optional) reuses token storage
/// across calls; the splitter is done with it when it returns, so callers
/// may hand the same buffer straight to the parser for each piece.
///
/// If `complete` is non-null it reports whether the script ended cleanly at
/// a top-level `;` — i.e. every returned piece is a finished statement. It
/// is false when the final piece is a trailing fragment (mid-statement, or a
/// `;` only inside a still-open BEGIN...END body or string literal), which
/// streaming callers should keep buffering instead of analyzing.
std::vector<std::string_view> SplitStatements(std::string_view script,
                                              bool* complete = nullptr,
                                              TokenBuffer* buffer = nullptr);

}  // namespace sqlcheck::sql
