#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sqlcheck::sql {

/// \brief Splits a SQL script into individual statements on `;` boundaries,
/// respecting string literals, quoted identifiers, and comments. Statements
/// are returned without the trailing semicolon; empty pieces are dropped.
std::vector<std::string> SplitStatements(std::string_view script);

}  // namespace sqlcheck::sql
