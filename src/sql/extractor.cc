#include "sql/extractor.h"

#include "common/strings.h"
#include "sql/splitter.h"

namespace sqlcheck::sql {

namespace {

bool LooksLikeSql(std::string_view text) {
  std::string_view t = Trim(text);
  static constexpr std::string_view kVerbs[] = {
      "select ", "insert ", "update ", "delete ", "create ",
      "alter ",  "drop ",   "replace ", "with ",
  };
  for (std::string_view verb : kVerbs) {
    if (StartsWithIgnoreCase(t, verb)) return true;
  }
  return false;
}

/// Scans one host-language string literal starting at `pos` (which points at
/// the opening quote). Returns the literal body and advances `pos` past it.
std::string ScanHostString(std::string_view source, size_t& pos) {
  char quote = source[pos];
  // Python triple quotes.
  bool triple = pos + 2 < source.size() && source[pos + 1] == quote && source[pos + 2] == quote;
  std::string body;
  if (triple) {
    pos += 3;
    while (pos + 2 < source.size() &&
           !(source[pos] == quote && source[pos + 1] == quote && source[pos + 2] == quote)) {
      body.push_back(source[pos]);
      ++pos;
    }
    pos = pos + 2 < source.size() ? pos + 3 : source.size();
    return body;
  }
  ++pos;
  while (pos < source.size() && source[pos] != quote) {
    if (source[pos] == '\\' && pos + 1 < source.size()) {
      char esc = source[pos + 1];
      body.push_back(esc == 'n' || esc == 't' || esc == 'r' ? ' ' : esc);
      pos += 2;
      continue;
    }
    if (source[pos] == '\n') {
      // Unterminated single-line literal; bail at line end.
      break;
    }
    body.push_back(source[pos]);
    ++pos;
  }
  if (pos < source.size()) ++pos;
  return body;
}

}  // namespace

std::vector<EmbeddedSql> ExtractEmbeddedSql(std::string_view source) {
  std::vector<EmbeddedSql> out;
  size_t pos = 0;
  while (pos < source.size()) {
    char c = source[pos];
    if (c == '\'' || c == '"') {
      size_t literal_start = pos;
      std::string body = ScanHostString(source, pos);
      if (LooksLikeSql(body)) {
        for (std::string_view piece : SplitStatements(body)) {
          EmbeddedSql found;
          found.sql = piece;
          found.offset = literal_start;
          out.push_back(std::move(found));
        }
      }
      continue;
    }
    // Skip host-language line comments so commented-out SQL is not counted.
    if (c == '/' && pos + 1 < source.size() && source[pos + 1] == '/') {
      while (pos < source.size() && source[pos] != '\n') ++pos;
      continue;
    }
    if (c == '#') {
      while (pos < source.size() && source[pos] != '\n') ++pos;
      continue;
    }
    ++pos;
  }
  return out;
}

}  // namespace sqlcheck::sql
