#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "sql/lexer_detail.h"

// Block scanner: finds span boundaries (identifier runs, whitespace runs,
// digit runs, the next string-special or comment-special byte) in 8/16-byte
// blocks instead of byte-at-a-time. This is the structural-scan stage of the
// frontend: the lexer, the statement splitter (which rides the lexer), and
// the streaming canonicalizer in fingerprint.cc all consume raw SQL through
// these functions, so they classify bytes identically by construction.
//
// Three tiers, selected per call:
//  - scalar: the reference implementation, a byte loop over the
//    lexer_detail character classes. Always available; this is the behavior
//    contract the fast tiers must match bit-for-bit (tests/test_block_scan.cc
//    runs them in lockstep over hostile corpora).
//  - SWAR: portable baseline on uint64_t — 8 bytes per step, plain C++,
//    little-endian only (big-endian builds fall back to scalar).
//  - SIMD: SSE2 on x86-64 (baseline ISA there, so no cpuid dispatch needed)
//    or NEON on aarch64 — 16 bytes per step. Compile-time gated; when a SIMD
//    tier is compiled in it is preferred over SWAR.
//
// Runtime escape hatch: setting SQLCHECK_FORCE_SCALAR (non-empty, not "0")
// in the environment routes every call through the scalar reference — the
// knob CI uses to keep the fallback green, and the knob an operator flips
// when chasing a suspected fast-path divergence. Bytes >= 0x80 (multi-byte
// UTF-8) are never identifier/space/digit bytes in any tier.
namespace sqlcheck::sql::blockscan {

namespace detail {

/// Tri-state scan mode: -1 = uninitialized, 0 = fast path, 1 = scalar.
/// Initialized from the SQLCHECK_FORCE_SCALAR environment variable on first
/// use; SetForceScalarForTest overrides it at runtime.
extern std::atomic_int g_mode;
int InitModeSlow();

inline int CountTrailingZeros64(uint64_t v) { return __builtin_ctzll(v); }
inline int CountTrailingZeros32(uint32_t v) { return __builtin_ctz(v); }

}  // namespace detail

/// True when every scan must take the scalar reference path (environment
/// SQLCHECK_FORCE_SCALAR or a test override).
inline bool ForceScalar() {
  int mode = detail::g_mode.load(std::memory_order_relaxed);
  if (mode < 0) mode = detail::InitModeSlow();
  return mode != 0;
}

/// Overrides the SQLCHECK_FORCE_SCALAR environment decision (tests and
/// benches flip this to exercise/time both paths in one process).
void SetForceScalarForTest(bool force);

/// Name of the fast tier compiled into this binary: "sse2", "neon", "swar",
/// or "scalar" (big-endian build with no SIMD). Reported by the bench.
const char* FastTierName();

// ---------------------------------------------------------------------------
// Scalar reference tier. These define the semantics; every other tier is an
// implementation of exactly these loops.
// ---------------------------------------------------------------------------

/// First index >= pos that is not an identifier byte ([A-Za-z0-9_$]), or
/// s.size(). The caller classifies the *start* byte (identifiers cannot
/// start with a digit or '$'); these runs cover continuation bytes.
inline size_t IdentRunEndScalar(std::string_view s, size_t pos) {
  while (pos < s.size() && lexer_detail::IsIdentChar(s[pos])) ++pos;
  return pos;
}

/// First index >= pos that is not ASCII whitespace (space, \t, \n, \v, \f,
/// \r — the lexer_detail::IsSpace set), or s.size().
inline size_t SpaceRunEndScalar(std::string_view s, size_t pos) {
  while (pos < s.size() && lexer_detail::IsSpace(s[pos])) ++pos;
  return pos;
}

/// First index >= pos that is not a decimal digit, or s.size().
inline size_t DigitRunEndScalar(std::string_view s, size_t pos) {
  while (pos < s.size() && lexer_detail::IsDigit(s[pos])) ++pos;
  return pos;
}

/// First index >= pos holding byte `a`, or s.size().
inline size_t FindByteScalar(std::string_view s, size_t pos, char a) {
  while (pos < s.size() && s[pos] != a) ++pos;
  return pos;
}

/// First index >= pos holding byte `a` or byte `b`, or s.size().
inline size_t FindEitherScalar(std::string_view s, size_t pos, char a, char b) {
  while (pos < s.size() && s[pos] != a && s[pos] != b) ++pos;
  return pos;
}

// ---------------------------------------------------------------------------
// SWAR tier: 8 bytes per step on uint64_t. Little-endian only (the lane ->
// byte-index mapping below assumes it).
// ---------------------------------------------------------------------------
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define SQLCHECK_BLOCK_SCAN_SWAR 1

namespace swar {

inline constexpr uint64_t kOnes = 0x0101010101010101ull;
inline constexpr uint64_t kHigh = 0x8080808080808080ull;

inline uint64_t Load(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Per-lane mask (MSB of each matching lane set) of lanes whose low 7 bits
/// are >= k, for k in [0, 128]. Carry-free: the classic "hasless" trick
/// borrows across lanes, so it can misreport *which* lane matched; masking
/// the high bit out first keeps each lane's add from overflowing into its
/// neighbor, making the result exact per lane.
inline uint64_t GeLow(uint64_t v, unsigned k) {
  return ((v & ~kHigh) + (128 - k) * kOnes) & kHigh;
}

/// Lanes holding an ASCII byte in [lo, hi] (lo <= hi <= 127). Bytes >= 0x80
/// are excluded explicitly — their low-7 value would otherwise alias into
/// the range.
inline uint64_t InRange(uint64_t v, unsigned lo, unsigned hi) {
  return GeLow(v, lo) & ~GeLow(v, hi + 1) & ~v;
}

/// Lanes equal to byte c (any value 0..255).
inline uint64_t EqLanes(uint64_t v, unsigned char c) {
  uint64_t x = v ^ (kOnes * c);  // matching lanes become 0x00
  return ~GeLow(x, 1) & ~x & kHigh;
}

inline uint64_t IdentMask(uint64_t v) {
  // (c | 0x20) maps A-Z onto a-z and nothing else into [a, z]; digits,
  // '_' (0x5F -> 0x7F) and '$' (0x24) are matched on the raw value.
  uint64_t folded = v | (kOnes * 0x20u);
  return InRange(folded, 'a', 'z') | InRange(v, '0', '9') | EqLanes(v, '_') |
         EqLanes(v, '$');
}

inline uint64_t SpaceMask(uint64_t v) {
  return EqLanes(v, ' ') | InRange(v, 0x09, 0x0D);
}

inline uint64_t DigitMask(uint64_t v) { return InRange(v, '0', '9'); }

/// Byte index (0-7) of the lowest set lane-MSB in a nonzero mask.
inline size_t FirstLane(uint64_t mask) {
  return static_cast<size_t>(detail::CountTrailingZeros64(mask)) >> 3;
}

inline size_t IdentRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 8 <= n) {
    uint64_t miss = ~IdentMask(Load(p + pos)) & kHigh;
    if (miss != 0) return pos + FirstLane(miss);
    pos += 8;
  }
  return IdentRunEndScalar(s, pos);
}

inline size_t SpaceRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 8 <= n) {
    uint64_t miss = ~SpaceMask(Load(p + pos)) & kHigh;
    if (miss != 0) return pos + FirstLane(miss);
    pos += 8;
  }
  return SpaceRunEndScalar(s, pos);
}

inline size_t DigitRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 8 <= n) {
    uint64_t miss = ~DigitMask(Load(p + pos)) & kHigh;
    if (miss != 0) return pos + FirstLane(miss);
    pos += 8;
  }
  return DigitRunEndScalar(s, pos);
}

inline size_t FindEither(std::string_view s, size_t pos, char a, char b) {
  const char* p = s.data();
  const size_t n = s.size();
  const auto ua = static_cast<unsigned char>(a);
  const auto ub = static_cast<unsigned char>(b);
  while (pos + 8 <= n) {
    uint64_t v = Load(p + pos);
    uint64_t hit = EqLanes(v, ua) | EqLanes(v, ub);
    if (hit != 0) return pos + FirstLane(hit);
    pos += 8;
  }
  return FindEitherScalar(s, pos, a, b);
}

}  // namespace swar
#else
#define SQLCHECK_BLOCK_SCAN_SWAR 0
#endif

// ---------------------------------------------------------------------------
// SIMD tier: SSE2 (x86-64 baseline) or NEON (aarch64). 16 bytes per step.
// ---------------------------------------------------------------------------
#if defined(__SSE2__)
#define SQLCHECK_BLOCK_SCAN_SSE2 1
#else
#define SQLCHECK_BLOCK_SCAN_SSE2 0
#endif
#if !SQLCHECK_BLOCK_SCAN_SSE2 && defined(__ARM_NEON)
#define SQLCHECK_BLOCK_SCAN_NEON 1
#else
#define SQLCHECK_BLOCK_SCAN_NEON 0
#endif

#if SQLCHECK_BLOCK_SCAN_SSE2
}  // namespace sqlcheck::sql::blockscan
#include <emmintrin.h>
namespace sqlcheck::sql::blockscan {

namespace simd {

inline __m128i Load(const char* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

/// Lanes with an unsigned byte in [lo, hi]: min/max compares sidestep
/// SSE2's signed-only cmpgt, and bytes >= 0x80 fail the `hi` bound for any
/// ASCII range, so no separate high-bit mask is needed.
inline __m128i InRange(__m128i v, unsigned char lo, unsigned char hi) {
  __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(v, _mm_set1_epi8(static_cast<char>(lo))), v);
  __m128i le = _mm_cmpeq_epi8(_mm_min_epu8(v, _mm_set1_epi8(static_cast<char>(hi))), v);
  return _mm_and_si128(ge, le);
}

inline __m128i IdentMask(__m128i v) {
  __m128i folded = _mm_or_si128(v, _mm_set1_epi8(0x20));
  __m128i word = _mm_or_si128(InRange(folded, 'a', 'z'), InRange(v, '0', '9'));
  __m128i extra = _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8('_')),
                               _mm_cmpeq_epi8(v, _mm_set1_epi8('$')));
  return _mm_or_si128(word, extra);
}

inline __m128i SpaceMask(__m128i v) {
  return _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(' ')), InRange(v, 0x09, 0x0D));
}

inline size_t IdentRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 16 <= n) {
    unsigned miss = static_cast<unsigned>(_mm_movemask_epi8(IdentMask(Load(p + pos)))) ^ 0xFFFFu;
    if (miss != 0) return pos + static_cast<size_t>(detail::CountTrailingZeros32(miss));
    pos += 16;
  }
  return IdentRunEndScalar(s, pos);
}

inline size_t SpaceRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 16 <= n) {
    unsigned miss = static_cast<unsigned>(_mm_movemask_epi8(SpaceMask(Load(p + pos)))) ^ 0xFFFFu;
    if (miss != 0) return pos + static_cast<size_t>(detail::CountTrailingZeros32(miss));
    pos += 16;
  }
  return SpaceRunEndScalar(s, pos);
}

inline size_t DigitRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 16 <= n) {
    unsigned miss =
        static_cast<unsigned>(_mm_movemask_epi8(InRange(Load(p + pos), '0', '9'))) ^ 0xFFFFu;
    if (miss != 0) return pos + static_cast<size_t>(detail::CountTrailingZeros32(miss));
    pos += 16;
  }
  return DigitRunEndScalar(s, pos);
}

inline size_t FindEither(std::string_view s, size_t pos, char a, char b) {
  const char* p = s.data();
  const size_t n = s.size();
  const __m128i va = _mm_set1_epi8(a);
  const __m128i vb = _mm_set1_epi8(b);
  while (pos + 16 <= n) {
    __m128i v = Load(p + pos);
    unsigned hit = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_or_si128(_mm_cmpeq_epi8(v, va), _mm_cmpeq_epi8(v, vb))));
    if (hit != 0) return pos + static_cast<size_t>(detail::CountTrailingZeros32(hit));
    pos += 16;
  }
  return FindEitherScalar(s, pos, a, b);
}

}  // namespace simd
#endif  // SQLCHECK_BLOCK_SCAN_SSE2

#if SQLCHECK_BLOCK_SCAN_NEON
}  // namespace sqlcheck::sql::blockscan
#include <arm_neon.h>
namespace sqlcheck::sql::blockscan {

namespace simd {

/// 4 bits per lane, in lane order: the vshrn narrowing trick — the standard
/// NEON movemask substitute. First match = ctz(mask) / 4.
inline uint64_t MoveMask(uint8x16_t m) {
  uint8x8_t narrowed = vshrn_n_u16(vreinterpretq_u16_u8(m), 4);
  return vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
}

inline uint8x16_t Load(const char* p) {
  return vld1q_u8(reinterpret_cast<const uint8_t*>(p));
}

inline uint8x16_t InRange(uint8x16_t v, unsigned char lo, unsigned char hi) {
  return vandq_u8(vcgeq_u8(v, vdupq_n_u8(lo)), vcleq_u8(v, vdupq_n_u8(hi)));
}

inline uint8x16_t IdentMask(uint8x16_t v) {
  uint8x16_t folded = vorrq_u8(v, vdupq_n_u8(0x20));
  uint8x16_t word = vorrq_u8(InRange(folded, 'a', 'z'), InRange(v, '0', '9'));
  uint8x16_t extra =
      vorrq_u8(vceqq_u8(v, vdupq_n_u8('_')), vceqq_u8(v, vdupq_n_u8('$')));
  return vorrq_u8(word, extra);
}

inline uint8x16_t SpaceMask(uint8x16_t v) {
  return vorrq_u8(vceqq_u8(v, vdupq_n_u8(' ')), InRange(v, 0x09, 0x0D));
}

inline size_t IdentRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 16 <= n) {
    uint64_t miss = ~MoveMask(IdentMask(Load(p + pos)));
    if (miss != 0) return pos + (static_cast<size_t>(detail::CountTrailingZeros64(miss)) >> 2);
    pos += 16;
  }
  return IdentRunEndScalar(s, pos);
}

inline size_t SpaceRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 16 <= n) {
    uint64_t miss = ~MoveMask(SpaceMask(Load(p + pos)));
    if (miss != 0) return pos + (static_cast<size_t>(detail::CountTrailingZeros64(miss)) >> 2);
    pos += 16;
  }
  return SpaceRunEndScalar(s, pos);
}

inline size_t DigitRunEnd(std::string_view s, size_t pos) {
  const char* p = s.data();
  const size_t n = s.size();
  while (pos + 16 <= n) {
    uint64_t miss = ~MoveMask(InRange(Load(p + pos), '0', '9'));
    if (miss != 0) return pos + (static_cast<size_t>(detail::CountTrailingZeros64(miss)) >> 2);
    pos += 16;
  }
  return DigitRunEndScalar(s, pos);
}

inline size_t FindEither(std::string_view s, size_t pos, char a, char b) {
  const char* p = s.data();
  const size_t n = s.size();
  const uint8x16_t va = vdupq_n_u8(static_cast<uint8_t>(a));
  const uint8x16_t vb = vdupq_n_u8(static_cast<uint8_t>(b));
  while (pos + 16 <= n) {
    uint8x16_t v = Load(p + pos);
    uint64_t hit = MoveMask(vorrq_u8(vceqq_u8(v, va), vceqq_u8(v, vb)));
    if (hit != 0) return pos + (static_cast<size_t>(detail::CountTrailingZeros64(hit)) >> 2);
    pos += 16;
  }
  return FindEitherScalar(s, pos, a, b);
}

}  // namespace simd
#endif  // SQLCHECK_BLOCK_SCAN_NEON

#define SQLCHECK_BLOCK_SCAN_SIMD (SQLCHECK_BLOCK_SCAN_SSE2 || SQLCHECK_BLOCK_SCAN_NEON)

// ---------------------------------------------------------------------------
// Dispatchers — what the lexer / canonicalizer call.
// ---------------------------------------------------------------------------

namespace detail {

inline size_t IdentRunEndFast(std::string_view s, size_t pos) {
#if SQLCHECK_BLOCK_SCAN_SIMD
  return simd::IdentRunEnd(s, pos);
#elif SQLCHECK_BLOCK_SCAN_SWAR
  return swar::IdentRunEnd(s, pos);
#else
  return IdentRunEndScalar(s, pos);
#endif
}

inline size_t SpaceRunEndFast(std::string_view s, size_t pos) {
#if SQLCHECK_BLOCK_SCAN_SIMD
  return simd::SpaceRunEnd(s, pos);
#elif SQLCHECK_BLOCK_SCAN_SWAR
  return swar::SpaceRunEnd(s, pos);
#else
  return SpaceRunEndScalar(s, pos);
#endif
}

inline size_t DigitRunEndFast(std::string_view s, size_t pos) {
#if SQLCHECK_BLOCK_SCAN_SIMD
  return simd::DigitRunEnd(s, pos);
#elif SQLCHECK_BLOCK_SCAN_SWAR
  return swar::DigitRunEnd(s, pos);
#else
  return DigitRunEndScalar(s, pos);
#endif
}

inline size_t FindEitherFast(std::string_view s, size_t pos, char a, char b) {
#if SQLCHECK_BLOCK_SCAN_SIMD
  return simd::FindEither(s, pos, a, b);
#elif SQLCHECK_BLOCK_SCAN_SWAR
  return swar::FindEither(s, pos, a, b);
#else
  return FindEitherScalar(s, pos, a, b);
#endif
}

}  // namespace detail

inline size_t IdentRunEnd(std::string_view s, size_t pos) {
  if (ForceScalar()) return IdentRunEndScalar(s, pos);
  return detail::IdentRunEndFast(s, pos);
}

inline size_t SpaceRunEnd(std::string_view s, size_t pos) {
  if (ForceScalar()) return SpaceRunEndScalar(s, pos);
  return detail::SpaceRunEndFast(s, pos);
}

inline size_t DigitRunEnd(std::string_view s, size_t pos) {
  if (ForceScalar()) return DigitRunEndScalar(s, pos);
  return detail::DigitRunEndFast(s, pos);
}

/// Fast-tier FindByte: memchr (already vectorized in every libc we build
/// against). Exposed for callers that hoist the mode check.
inline size_t FindByteMemchr(std::string_view s, size_t pos, char a) {
  if (pos >= s.size()) return s.size();
  const void* hit = std::memchr(s.data() + pos, static_cast<unsigned char>(a),
                                s.size() - pos);
  return hit == nullptr ? s.size()
                        : static_cast<size_t>(static_cast<const char*>(hit) - s.data());
}

/// First index >= pos holding `a`, or s.size().
inline size_t FindByte(std::string_view s, size_t pos, char a) {
  if (ForceScalar()) return FindByteScalar(s, pos, a);
  return FindByteMemchr(s, pos, a);
}

inline size_t FindEither(std::string_view s, size_t pos, char a, char b) {
  if (ForceScalar()) return FindEitherScalar(s, pos, a, b);
  return detail::FindEitherFast(s, pos, a, b);
}

/// First index >= pos holding a single-quote-body special byte (closing/
/// doubled quote `'` or backslash escape), or s.size().
inline size_t FindStringSpecial(std::string_view s, size_t pos) {
  return FindEither(s, pos, '\'', '\\');
}

}  // namespace sqlcheck::sql::blockscan
