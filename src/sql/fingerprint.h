#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sql/token.h"

namespace sqlcheck::sql {

/// \brief Controls how much of a statement the canonical form erases.
///
/// Two presets matter in practice:
///  - Template() (the default): keyword case, whitespace, and comments are
///    dropped AND every literal/bind-parameter collapses to a `?` placeholder.
///    Statements that differ only in constants share a fingerprint — the
///    "statement template" grouping used for workload statistics.
///  - Exact(): only keyword case, whitespace, and comments are dropped;
///    literal and parameter text is preserved. This is the key the
///    memoized-analysis cache uses, because literal content is
///    analysis-relevant (a leading `%` in a LIKE pattern, a plaintext
///    password literal, the display form of a predicate constant) and two
///    statements must agree on it before their analysis results can be
///    shared byte-for-byte.
struct FingerprintOptions {
  bool collapse_literals = true;  ///< Strings/numbers -> `?` placeholder.
  bool collapse_params = true;    ///< `?`, `%s`, `:name`, `$1` -> `?` placeholder.

  static FingerprintOptions Template() { return FingerprintOptions{}; }
  static FingerprintOptions Exact() { return FingerprintOptions{false, false}; }
};

/// \brief Renders a token stream into its canonical spelling: tokens joined
/// by single spaces, keywords lowercased, identifiers/literals re-quoted with
/// doubled-quote escaping (so the rendering is injective — two different
/// token streams never produce the same canonical string), comments and the
/// end sentinel skipped, literals/params replaced by `?` per `options`.
std::string CanonicalizeTokens(const std::vector<Token>& tokens,
                               const FingerprintOptions& options = {});

/// \brief Canonicalizes `sql` directly — a single allocation-free scanning
/// pass that produces exactly `CanonicalizeTokens(Lex(sql), options)`. The
/// dedup cache canonicalizes every statement in a workload, so this is the
/// hot path; the token-based form above is the reference implementation.
std::string CanonicalizeSql(std::string_view sql, const FingerprintOptions& options = {});

/// \brief 64-bit FNV-1a hash of a canonical form — the stable statement
/// fingerprint. Equal canonical strings always hash equal; the dedup cache
/// additionally compares canonical strings so a hash collision can never
/// merge two distinct statements.
uint64_t FingerprintCanonical(std::string_view canonical);

/// \brief Fingerprint of a token stream under `options`.
uint64_t FingerprintTokens(const std::vector<Token>& tokens,
                           const FingerprintOptions& options = {});

/// \brief Fingerprint of a SQL statement under `options`.
uint64_t FingerprintSql(std::string_view sql, const FingerprintOptions& options = {});

/// \brief Both fingerprints the corpus scanner keys on, from one raw pass.
struct ScanFingerprints {
  uint64_t exact = 0;     ///< FingerprintSql(sql, Exact()) — the store key.
  uint64_t tmpl = 0;      ///< FingerprintSql(sql, Template()) — statistics.
};

/// \brief Computes the exact-canonical form (returned via `exact_canonical`)
/// and both fingerprints with a single canonicalization of the raw text: the
/// template fingerprint is derived by re-canonicalizing the exact form, which
/// is comment- and whitespace-free and therefore cheaper to walk than the
/// original. Correct because canonicalization is stable on its own output —
/// re-lexing an Exact() rendering yields the same token stream, so
/// Template(Exact(sql)) == Template(sql) (locked in by
/// ScanFingerprintsTest.TemplateOfExactMatchesTemplateOfRaw).
ScanFingerprints FingerprintForScan(std::string_view sql, std::string* exact_canonical);

}  // namespace sqlcheck::sql
