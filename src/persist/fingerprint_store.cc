#include "persist/fingerprint_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/failpoint.h"
#include "core/emit.h"
#include "rules/registry.h"

namespace sqlcheck::persist {

namespace {

// On-disk format. Everything is little-endian on every target we build for;
// values move through memcpy so alignment never matters.
constexpr char kMagic[8] = {'S', 'Q', 'L', 'C', 'K', 'F', 'S', '1'};
constexpr uint32_t kFormatVersion = 2;
constexpr uint64_t kHeaderBytes = 64;
constexpr uint32_t kRecordMagic = 0x52504653;      // "SFPR": statement record
constexpr uint32_t kFileRecordMagic = 0x46504653;  // "SFPF": file manifest
/// Statement record fixed prefix: magic, total, fingerprint, template
/// fingerprint, canonical length, finding count.
constexpr uint64_t kRecordPrefixBytes = 4 + 4 + 8 + 8 + 4 + 4;
/// File record fixed prefix: magic, total, path length, statement count,
/// file size, mtime (ns).
constexpr uint64_t kFileRecordPrefixBytes = 4 + 4 + 4 + 4 + 8 + 8;
constexpr uint64_t kStmtRefBytes = 8 + 8 + 8;  ///< exact, template, offset.
constexpr uint64_t kRecordChecksumBytes = 8;
/// Per-finding fixed part: type, source, has_query, pad, three lengths, score.
constexpr uint64_t kFindingPrefixBytes = 4 + 4 + 4 + 4 + 8;
/// Caps that bound a structurally-valid record: a corrupt length field must
/// fail validation rather than drive a huge allocation.
constexpr uint64_t kMaxRecordBytes = 64ull << 20;

uint64_t Fnv64(const void* data, size_t n, uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void PutU32(std::string* out, uint32_t v) { out->append(reinterpret_cast<const char*>(&v), 4); }
void PutU64(std::string* out, uint64_t v) { out->append(reinterpret_cast<const char*>(&v), 8); }

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Parsed header fields (still untrusted until the checksum agrees).
struct HeaderFields {
  uint32_t version = 0;
  uint64_t ruleset_hash = 0;
  uint64_t generation = 0;
  uint64_t entry_count = 0;
  uint64_t log_end = 0;
  bool checksum_ok = false;
};

HeaderFields ParseHeader(const char* buf) {
  HeaderFields h;
  h.version = GetU32(buf + 8);
  h.ruleset_hash = GetU64(buf + 16);
  h.generation = GetU64(buf + 24);
  h.entry_count = GetU64(buf + 32);
  h.log_end = GetU64(buf + 40);
  h.checksum_ok = GetU64(buf + 48) == Fnv64(buf, 48);
  return h;
}

std::string EncodeHeader(uint64_t ruleset_hash, uint64_t generation,
                         uint64_t entry_count, uint64_t log_end) {
  std::string buf;
  buf.reserve(kHeaderBytes);
  buf.append(kMagic, sizeof(kMagic));
  PutU32(&buf, kFormatVersion);
  PutU32(&buf, 0);  // reserved
  PutU64(&buf, ruleset_hash);
  PutU64(&buf, generation);
  PutU64(&buf, entry_count);
  PutU64(&buf, log_end);
  PutU64(&buf, Fnv64(buf.data(), buf.size()));
  buf.resize(kHeaderBytes, '\0');
  return buf;
}

std::string EncodeRecord(std::string_view canonical, uint64_t fingerprint,
                         uint64_t template_fingerprint,
                         const std::vector<StoredFinding>& findings) {
  std::string buf;
  buf.reserve(kRecordPrefixBytes + canonical.size() + findings.size() * 48 +
              kRecordChecksumBytes);
  PutU32(&buf, kRecordMagic);
  PutU32(&buf, 0);  // total_bytes, patched below
  PutU64(&buf, fingerprint);
  PutU64(&buf, template_fingerprint);
  PutU32(&buf, static_cast<uint32_t>(canonical.size()));
  PutU32(&buf, static_cast<uint32_t>(findings.size()));
  buf.append(canonical);
  for (const StoredFinding& f : findings) {
    buf.push_back(static_cast<char>(f.type));
    buf.push_back(static_cast<char>(f.source));
    buf.push_back(f.has_query ? 1 : 0);
    buf.push_back(0);
    PutU32(&buf, static_cast<uint32_t>(f.table.size()));
    PutU32(&buf, static_cast<uint32_t>(f.column.size()));
    PutU32(&buf, static_cast<uint32_t>(f.message.size()));
    uint64_t score_bits;
    std::memcpy(&score_bits, &f.score, 8);
    PutU64(&buf, score_bits);
    buf.append(f.table);
    buf.append(f.column);
    buf.append(f.message);
  }
  uint32_t total = static_cast<uint32_t>(buf.size() + kRecordChecksumBytes);
  std::memcpy(buf.data() + 4, &total, 4);
  PutU64(&buf, Fnv64(buf.data(), buf.size()));
  return buf;
}

std::string EncodeFileRecord(std::string_view rel_path, uint64_t size,
                             uint64_t mtime_ns, const std::vector<StmtRef>& stmts) {
  std::string buf;
  buf.reserve(kFileRecordPrefixBytes + rel_path.size() +
              stmts.size() * kStmtRefBytes + kRecordChecksumBytes);
  PutU32(&buf, kFileRecordMagic);
  PutU32(&buf, 0);  // total_bytes, patched below
  PutU32(&buf, static_cast<uint32_t>(rel_path.size()));
  PutU32(&buf, static_cast<uint32_t>(stmts.size()));
  PutU64(&buf, size);
  PutU64(&buf, mtime_ns);
  buf.append(rel_path);
  for (const StmtRef& s : stmts) {
    PutU64(&buf, s.exact);
    PutU64(&buf, s.tmpl);
    PutU64(&buf, s.offset);
  }
  uint32_t total = static_cast<uint32_t>(buf.size() + kRecordChecksumBytes);
  std::memcpy(buf.data() + 4, &total, 4);
  PutU64(&buf, Fnv64(buf.data(), buf.size()));
  return buf;
}

/// Zero-copy view of one committed statement record.
struct RecordView {
  uint64_t total = 0;
  uint64_t fingerprint = 0;
  uint64_t template_fingerprint = 0;
  std::string_view canonical;
  uint32_t finding_count = 0;
  const char* findings = nullptr;  ///< First finding's fixed part.
  uint64_t findings_bytes = 0;
};

/// Zero-copy view of one committed file-manifest record.
struct FileRecordView {
  uint64_t total = 0;
  std::string_view path;
  uint64_t size = 0;
  uint64_t mtime_ns = 0;
  uint32_t stmt_count = 0;
  const char* stmts = nullptr;  ///< First packed StmtRef.
};

StmtRef GetStmtRef(const char* p) {
  StmtRef s;
  s.exact = GetU64(p);
  s.tmpl = GetU64(p + 8);
  s.offset = GetU64(p + 16);
  return s;
}

/// Structurally validates (and checksums) the statement record at `offset`,
/// bounds it to `limit`, and fills `out`. Every length field is checked
/// before use.
bool DecodeRecord(std::string_view log, uint64_t offset, uint64_t limit,
                  RecordView* out) {
  if (limit > log.size() || offset > limit ||
      limit - offset < kRecordPrefixBytes + kRecordChecksumBytes) {
    return false;
  }
  const char* p = log.data() + offset;
  if (GetU32(p) != kRecordMagic) return false;
  uint64_t total = GetU32(p + 4);
  if (total < kRecordPrefixBytes + kRecordChecksumBytes || total > kMaxRecordBytes ||
      total > limit - offset) {
    return false;
  }
  if (GetU64(p + total - 8) != Fnv64(p, total - 8)) return false;
  RecordView r;
  r.total = total;
  r.fingerprint = GetU64(p + 8);
  r.template_fingerprint = GetU64(p + 16);
  uint64_t canonical_bytes = GetU32(p + 24);
  r.finding_count = GetU32(p + 28);
  uint64_t payload = total - kRecordPrefixBytes - kRecordChecksumBytes;
  if (canonical_bytes > payload) return false;
  r.canonical = std::string_view(p + kRecordPrefixBytes, canonical_bytes);
  r.findings = p + kRecordPrefixBytes + canonical_bytes;
  r.findings_bytes = payload - canonical_bytes;
  // Walk the findings once so a checksum-valid record with nonsense lengths
  // (it would take a deliberate forgery, but cheap to refuse) cannot pass.
  const char* q = r.findings;
  uint64_t remaining = r.findings_bytes;
  for (uint32_t i = 0; i < r.finding_count; ++i) {
    if (remaining < kFindingPrefixBytes) return false;
    uint64_t text = static_cast<uint64_t>(GetU32(q + 4)) + GetU32(q + 8) + GetU32(q + 12);
    if (remaining - kFindingPrefixBytes < text) return false;
    uint64_t step = kFindingPrefixBytes + text;
    q += step;
    remaining -= step;
  }
  if (remaining != 0) return false;
  *out = r;
  return true;
}

/// File-record counterpart of DecodeRecord. Statement offsets are range
/// checked by the caller (they must point strictly before this record).
bool DecodeFileRecord(std::string_view log, uint64_t offset, uint64_t limit,
                      FileRecordView* out) {
  if (limit > log.size() || offset > limit ||
      limit - offset < kFileRecordPrefixBytes + kRecordChecksumBytes) {
    return false;
  }
  const char* p = log.data() + offset;
  if (GetU32(p) != kFileRecordMagic) return false;
  uint64_t total = GetU32(p + 4);
  if (total < kFileRecordPrefixBytes + kRecordChecksumBytes ||
      total > kMaxRecordBytes || total > limit - offset) {
    return false;
  }
  if (GetU64(p + total - 8) != Fnv64(p, total - 8)) return false;
  FileRecordView f;
  f.total = total;
  uint64_t path_len = GetU32(p + 8);
  f.stmt_count = GetU32(p + 12);
  f.size = GetU64(p + 16);
  f.mtime_ns = GetU64(p + 24);
  uint64_t payload = total - kFileRecordPrefixBytes - kRecordChecksumBytes;
  if (path_len > payload) return false;
  if (payload - path_len != static_cast<uint64_t>(f.stmt_count) * kStmtRefBytes) {
    return false;
  }
  f.path = std::string_view(p + kFileRecordPrefixBytes, path_len);
  f.stmts = p + kFileRecordPrefixBytes + path_len;
  *out = f;
  return true;
}

void DecodeFindings(const RecordView& r, std::vector<StoredFinding>* out) {
  out->clear();
  out->reserve(r.finding_count);
  const char* q = r.findings;
  for (uint32_t i = 0; i < r.finding_count; ++i) {
    StoredFinding f;
    f.type = static_cast<uint8_t>(q[0]);
    f.source = static_cast<uint8_t>(q[1]);
    f.has_query = q[2] != 0;
    uint32_t table_len = GetU32(q + 4);
    uint32_t column_len = GetU32(q + 8);
    uint32_t message_len = GetU32(q + 12);
    uint64_t score_bits = GetU64(q + 16);
    std::memcpy(&f.score, &score_bits, 8);
    q += kFindingPrefixBytes;
    f.table.assign(q, table_len);
    q += table_len;
    f.column.assign(q, column_len);
    q += column_len;
    f.message.assign(q, message_len);
    q += message_len;
    out->push_back(std::move(f));
  }
}

/// The hot-path decode: (type, score) pairs only — no string allocation.
void DecodeFindingStats(const RecordView& r, std::vector<FindingStat>* out) {
  out->clear();
  out->reserve(r.finding_count);
  const char* q = r.findings;
  for (uint32_t i = 0; i < r.finding_count; ++i) {
    FindingStat f;
    f.type = static_cast<uint8_t>(q[0]);
    uint64_t score_bits = GetU64(q + 16);
    std::memcpy(&f.score, &score_bits, 8);
    uint64_t text = static_cast<uint64_t>(GetU32(q + 4)) + GetU32(q + 8) + GetU32(q + 12);
    q += kFindingPrefixBytes + text;
    out->push_back(f);
  }
}

bool PWriteAll(int fd, const char* data, size_t n, uint64_t offset) {
  while (n > 0) {
    ssize_t w = ::pwrite(fd, data, n, static_cast<off_t>(offset));
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
    offset += static_cast<uint64_t>(w);
  }
  return true;
}

}  // namespace

Status FingerprintStore::Open(const std::string& path, uint64_t ruleset_hash) {
  Close();
  stats_ = StoreStats{};
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  file_hits_.store(0, std::memory_order_relaxed);
  file_misses_.store(0, std::memory_order_relaxed);
  append_broken_ = false;
  pending_buf_.clear();
  uncommitted_entries_ = 0;
  ruleset_hash_ = ruleset_hash;
  if (SQLCHECK_FAILPOINT("store_open")) {
    MarkUnusable("store open failed (injected store_open fault); scanning cold");
    return Status::Ok();
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    return Status::Error("cannot open store '" + path + "': " + std::strerror(errno));
  }
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd_);
    fd_ = -1;
    MarkUnusable("store '" + path + "' is locked by another scan; scanning cold");
    return Status::Ok();
  }
  Status s = OpenLocked(ruleset_hash);
  if (!s.ok()) {
    ::close(fd_);
    fd_ = -1;
  }
  return s;
}

Status FingerprintStore::OpenLocked(uint64_t ruleset_hash) {
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::Error(std::string("cannot stat store: ") + std::strerror(errno));
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size == 0) {
    Rebuild(/*generation=*/1, /*warning=*/"");
    return Status::Ok();
  }

  char head[kHeaderBytes];
  const ssize_t got = ::pread(fd_, head, sizeof(head), 0);
  const bool magic_ok =
      got >= static_cast<ssize_t>(sizeof(kMagic)) && std::memcmp(head, kMagic, 8) == 0;
  if (!magic_ok) {
    // Not our file: never clobber it. The scan runs cold.
    int fd = fd_;
    fd_ = -1;
    ::close(fd);
    MarkUnusable("store path holds a non-store file; leaving it untouched and scanning cold");
    return Status::Ok();
  }
  if (got < static_cast<ssize_t>(kHeaderBytes)) {
    Rebuild(/*generation=*/1, "store truncated below its header; rebuilding");
    return Status::Ok();
  }

  HeaderFields h = ParseHeader(head);
  if (!h.checksum_ok) {
    Rebuild(h.generation + 1, "store header checksum mismatch; rebuilding");
    return Status::Ok();
  }
  if (h.version != kFormatVersion) {
    Rebuild(h.generation + 1,
            "store format version " + std::to_string(h.version) + " != " +
                std::to_string(kFormatVersion) + "; rebuilding");
    return Status::Ok();
  }
  if (h.ruleset_hash != ruleset_hash) {
    Rebuild(h.generation + 1, "rule-set hash changed; stored findings invalidated");
    return Status::Ok();
  }
  if (h.log_end < kHeaderBytes || h.log_end > size) {
    Rebuild(h.generation + 1, "store committed length out of bounds; rebuilding");
    return Status::Ok();
  }

  Status ms = map_.OpenFd(fd_, static_cast<size_t>(h.log_end));
  if (!ms.ok()) {
    int fd = fd_;
    fd_ = -1;
    ::close(fd);
    MarkUnusable("store mapping failed (" + ms.message() + "); scanning cold");
    return Status::Ok();
  }
  if (!LoadIndex(h.log_end)) {
    Rebuild(h.generation + 1, "corrupt store record; rebuilding");
    return Status::Ok();
  }
  if (size > h.log_end) {
    // Tail past the committed end: a crash between flush and header publish.
    // The committed prefix is fully valid — drop the torn bytes, stay warm.
    if (::ftruncate(fd_, static_cast<off_t>(h.log_end)) == 0) {
      stats_.warning = "dropped " + std::to_string(size - h.log_end) +
                       " uncommitted store bytes from an interrupted scan";
    }
  }
  log_end_ = h.log_end;
  pending_end_ = h.log_end;
  committed_entries_ = stats_.entries;
  stats_.bytes = h.log_end;
  stats_.generation = h.generation;
  return Status::Ok();
}

void FingerprintStore::Rebuild(uint64_t generation, std::string warning) {
  map_.Reset();
  index_.clear();
  appended_.clear();
  file_index_.clear();
  pending_buf_.clear();
  if (::ftruncate(fd_, 0) != 0) {
    int fd = fd_;
    fd_ = -1;
    ::close(fd);
    MarkUnusable("store rebuild failed (" + warning + "); scanning cold");
    return;
  }
  stats_.generation = generation;
  if (!WriteHeader(/*entry_count=*/0, /*log_end=*/kHeaderBytes)) {
    int fd = fd_;
    fd_ = -1;
    ::close(fd);
    MarkUnusable("store header write failed; scanning cold");
    return;
  }
  log_end_ = kHeaderBytes;
  pending_end_ = kHeaderBytes;
  committed_entries_ = 0;
  uncommitted_entries_ = 0;
  stats_.entries = 0;
  stats_.file_entries = 0;
  stats_.bytes = kHeaderBytes;
  stats_.degraded = !warning.empty();
  stats_.warning = std::move(warning);
}

bool FingerprintStore::LoadIndex(uint64_t log_end) {
  index_.clear();
  file_index_.clear();
  uint64_t entries = 0;
  uint64_t file_entries = 0;
  std::string_view log = map_.view();
  uint64_t off = kHeaderBytes;
  while (off < log_end) {
    if (log_end - off < 4) return false;
    uint32_t magic = GetU32(log.data() + off);
    if (magic == kRecordMagic) {
      RecordView r;
      if (!DecodeRecord(log, off, log_end, &r)) return false;
      index_[r.fingerprint].push_back(off);
      ++entries;
      off += r.total;
    } else if (magic == kFileRecordMagic) {
      FileRecordView f;
      if (!DecodeFileRecord(log, off, log_end, &f)) return false;
      FileEntry entry;
      entry.size = f.size;
      entry.mtime_ns = f.mtime_ns;
      entry.stmts.reserve(f.stmt_count);
      for (uint32_t i = 0; i < f.stmt_count; ++i) {
        StmtRef s = GetStmtRef(f.stmts + i * kStmtRefBytes);
        // Manifests only ever reference statement records written before
        // them; a forward offset is structural corruption.
        if (s.offset < kHeaderBytes || s.offset >= off) return false;
        entry.stmts.push_back(s);
      }
      file_index_[std::string(f.path)] = std::move(entry);  // last write wins
      ++file_entries;
      off += f.total;
    } else {
      return false;
    }
  }
  stats_.entries = entries;
  stats_.file_entries = file_entries;
  return true;
}

bool FingerprintStore::WriteHeader(uint64_t entry_count, uint64_t log_end) {
  if (SQLCHECK_FAILPOINT("store_commit")) return false;
  std::string head = EncodeHeader(ruleset_hash_, stats_.generation, entry_count, log_end);
  return PWriteAll(fd_, head.data(), head.size(), 0);
}

void FingerprintStore::MarkUnusable(std::string warning) {
  map_.Reset();
  index_.clear();
  appended_.clear();
  file_index_.clear();
  pending_buf_.clear();
  stats_.degraded = true;
  stats_.warning = std::move(warning);
}

bool FingerprintStore::Probe(std::string_view canonical, uint64_t fingerprint,
                             std::vector<StoredFinding>* out) {
  if (!usable()) return false;
  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    std::string_view log = map_.view();
    for (uint64_t off : it->second) {
      RecordView r;
      if (DecodeRecord(log, off, log_end_, &r) && r.canonical == canonical) {
        DecodeFindings(r, out);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  auto ap = appended_.find(fingerprint);
  if (ap != appended_.end()) {
    for (const AppendedEntry& entry : ap->second) {
      if (entry.canonical == canonical) {
        *out = entry.findings;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool FingerprintStore::ProbeStats(std::string_view canonical, uint64_t fingerprint,
                                  std::vector<FindingStat>* out,
                                  uint64_t* template_fingerprint, uint64_t* offset) {
  if (!usable()) return false;
  auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    std::string_view log = map_.view();
    for (uint64_t off : it->second) {
      RecordView r;
      if (DecodeRecord(log, off, log_end_, &r) && r.canonical == canonical) {
        if (out != nullptr) DecodeFindingStats(r, out);
        if (template_fingerprint != nullptr) *template_fingerprint = r.template_fingerprint;
        if (offset != nullptr) *offset = off;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  auto ap = appended_.find(fingerprint);
  if (ap != appended_.end()) {
    for (const AppendedEntry& entry : ap->second) {
      if (entry.canonical == canonical) {
        if (out != nullptr) {
          out->clear();
          out->reserve(entry.findings.size());
          for (const StoredFinding& f : entry.findings) {
            out->push_back(FindingStat{f.type, f.score});
          }
        }
        if (template_fingerprint != nullptr) *template_fingerprint = entry.tmpl;
        if (offset != nullptr) *offset = entry.offset;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool FingerprintStore::ProbeFile(std::string_view rel_path, uint64_t size,
                                 uint64_t mtime_ns, std::vector<StmtRef>* out) {
  if (!usable()) return false;
  auto it = file_index_.find(std::string(rel_path));
  if (it != file_index_.end() && it->second.size == size &&
      it->second.mtime_ns == mtime_ns) {
    *out = it->second.stmts;
    file_hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  file_misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool FingerprintStore::ResolveStats(uint64_t offset, uint64_t fingerprint,
                                    std::vector<FindingStat>* out,
                                    uint64_t* template_fingerprint) const {
  RecordView r;
  if (!DecodeRecord(map_.view(), offset, log_end_, &r)) return false;
  if (r.fingerprint != fingerprint) return false;
  if (template_fingerprint != nullptr) *template_fingerprint = r.template_fingerprint;
  if (out != nullptr) DecodeFindingStats(r, out);
  return true;
}

uint64_t FingerprintStore::Append(std::string_view canonical, uint64_t fingerprint,
                                  uint64_t template_fingerprint,
                                  const std::vector<StoredFinding>& findings) {
  if (!usable() || append_broken_) return kNoOffset;
  {
    // First write wins; a duplicate append returns the existing record.
    uint64_t h = hits_.load(std::memory_order_relaxed);
    uint64_t m = misses_.load(std::memory_order_relaxed);
    uint64_t existing = kNoOffset;
    bool present = ProbeStats(canonical, fingerprint, nullptr, nullptr, &existing);
    hits_.store(h, std::memory_order_relaxed);    // dedup probes are internal —
    misses_.store(m, std::memory_order_relaxed);  // keep the scan's counters clean
    if (present) return existing;
  }
  std::string record = EncodeRecord(canonical, fingerprint, template_fingerprint, findings);
  const uint64_t offset = pending_end_;
  pending_buf_.append(record);
  AppendedEntry entry;
  entry.canonical.assign(canonical);
  entry.findings = findings;
  entry.offset = offset;
  entry.tmpl = template_fingerprint;
  appended_[fingerprint].push_back(std::move(entry));
  pending_end_ += record.size();
  ++stats_.entries;
  ++stats_.appended;
  ++uncommitted_entries_;
  return offset;
}

bool FingerprintStore::AppendFile(std::string_view rel_path, uint64_t size,
                                  uint64_t mtime_ns,
                                  const std::vector<StmtRef>& stmts) {
  if (!usable() || append_broken_) return false;
  for (const StmtRef& s : stmts) {
    // Manifests reference statement records already committed or staged
    // ahead of this manifest in the pending buffer.
    if (s.offset < kHeaderBytes || s.offset >= pending_end_) return false;
  }
  std::string record = EncodeFileRecord(rel_path, size, mtime_ns, stmts);
  pending_buf_.append(record);
  pending_end_ += record.size();
  ++stats_.file_entries;
  ++stats_.appended_files;
  return true;
}

Status FingerprintStore::Commit() {
  if (!usable()) return Status::Ok();
  if (pending_buf_.empty()) return Status::Ok();
  bool flushed = false;
  if (SQLCHECK_FAILPOINT("store_append")) {
    // Simulate a torn flush: half the staged bytes land, then the device
    // fails. The header still points at the old committed end, so the torn
    // tail is dropped at the next open.
    PWriteAll(fd_, pending_buf_.data(), pending_buf_.size() / 2, log_end_);
  } else {
    flushed = PWriteAll(fd_, pending_buf_.data(), pending_buf_.size(), log_end_);
  }
  if (!flushed) {
    append_broken_ = true;
    pending_buf_.clear();
    pending_end_ = log_end_;
    uncommitted_entries_ = 0;
    stats_.warning = "store flush failed mid-write; appended entries dropped";
    return Status::Error(stats_.warning);
  }
  if (::fsync(fd_) != 0) {
    return Status::Error(std::string("store fsync failed: ") + std::strerror(errno));
  }
  if (!WriteHeader(committed_entries_ + uncommitted_entries_, pending_end_)) {
    // The flushed bytes sit past the committed end as a torn tail; the next
    // open truncates them. Freeze so a retry cannot half-publish.
    append_broken_ = true;
    pending_buf_.clear();
    pending_end_ = log_end_;
    uncommitted_entries_ = 0;
    stats_.warning =
        "store commit failed: header not published; appended entries will be "
        "dropped at the next open";
    return Status::Error(stats_.warning);
  }
  (void)::fsync(fd_);
  log_end_ = pending_end_;
  committed_entries_ += uncommitted_entries_;
  uncommitted_entries_ = 0;
  pending_buf_.clear();
  return Status::Ok();
}

void FingerprintStore::Close() {
  if (fd_ < 0) return;
  Status s = Commit();
  if (!s.ok() && stats_.warning.empty()) stats_.warning = s.message();
  map_.Reset();
  ::close(fd_);  // releases the flock
  fd_ = -1;
  index_.clear();
  appended_.clear();
  file_index_.clear();
  pending_buf_.clear();
}

StoreStats FingerprintStore::stats() const {
  StoreStats s = stats_;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.file_hits = file_hits_.load(std::memory_order_relaxed);
  s.file_misses = file_misses_.load(std::memory_order_relaxed);
  return s;
}

Status FingerprintStore::Verify(const std::string& path, std::string* summary) {
  std::string buf;
  Status rs = ReadFileToString(path, &buf);
  if (!rs.ok()) return rs;
  if (buf.size() < kHeaderBytes || std::memcmp(buf.data(), kMagic, 8) != 0) {
    return Status::Error("'" + path + "' is not a fingerprint store");
  }
  HeaderFields h = ParseHeader(buf.data());
  if (!h.checksum_ok) return Status::Error("header checksum mismatch");
  if (h.version != kFormatVersion) {
    return Status::Error("format version " + std::to_string(h.version) +
                         " (expected " + std::to_string(kFormatVersion) + ")");
  }
  if (h.log_end < kHeaderBytes || h.log_end > buf.size()) {
    return Status::Error("committed length out of bounds");
  }
  uint64_t entries = 0;
  uint64_t file_entries = 0;
  // Statement records seen so far, offset → fingerprint: manifests must only
  // reference these, with matching fingerprints.
  std::unordered_map<uint64_t, uint64_t> stmt_at;
  uint64_t off = kHeaderBytes;
  while (off < h.log_end) {
    if (h.log_end - off < 4) {
      return Status::Error("corrupt record at byte " + std::to_string(off));
    }
    uint32_t magic = GetU32(buf.data() + off);
    if (magic == kRecordMagic) {
      RecordView r;
      if (!DecodeRecord(buf, off, h.log_end, &r)) {
        return Status::Error("corrupt record at byte " + std::to_string(off));
      }
      stmt_at.emplace(off, r.fingerprint);
      ++entries;
      off += r.total;
    } else if (magic == kFileRecordMagic) {
      FileRecordView f;
      if (!DecodeFileRecord(buf, off, h.log_end, &f)) {
        return Status::Error("corrupt file record at byte " + std::to_string(off));
      }
      for (uint32_t i = 0; i < f.stmt_count; ++i) {
        StmtRef s = GetStmtRef(f.stmts + i * kStmtRefBytes);
        auto it = stmt_at.find(s.offset);
        if (it == stmt_at.end() || it->second != s.exact) {
          return Status::Error("file record at byte " + std::to_string(off) +
                               " references an invalid statement record at byte " +
                               std::to_string(s.offset));
        }
      }
      ++file_entries;
      off += f.total;
    } else {
      return Status::Error("unknown record magic at byte " + std::to_string(off));
    }
  }
  if (entries != h.entry_count) {
    return Status::Error("header records " + std::to_string(h.entry_count) +
                         " entries, log holds " + std::to_string(entries));
  }
  if (summary != nullptr) {
    *summary = "entries=" + std::to_string(entries) +
               " files=" + std::to_string(file_entries) +
               " generation=" + std::to_string(h.generation) +
               " committed_bytes=" + std::to_string(h.log_end) +
               " ruleset=" + std::to_string(h.ruleset_hash);
    if (buf.size() > h.log_end) {
      *summary += " uncommitted_tail_bytes=" + std::to_string(buf.size() - h.log_end);
    }
  }
  return Status::Ok();
}

Status FingerprintStore::Compact(const std::string& path, uint64_t ruleset_hash,
                                 std::string* summary) {
  FingerprintStore store;
  Status s = store.Open(path, ruleset_hash);
  if (!s.ok()) return s;
  if (!store.usable()) {
    return Status::Error("cannot compact: " + store.stats().warning);
  }

  const uint64_t generation = store.stats_.generation + 1;
  std::string out = EncodeHeader(ruleset_hash, generation, 0, 0);  // patched below
  uint64_t kept = 0;
  uint64_t dropped = 0;
  std::string_view log = store.map_.view();
  // First statement record wins per fingerprint+canonical — exactly the
  // entries Probe serves. Every old statement offset (kept or duplicate)
  // maps to the offset of its surviving record so manifests can be rebased.
  std::unordered_map<uint64_t, std::vector<std::pair<std::string_view, uint64_t>>> seen;
  std::unordered_map<uint64_t, uint64_t> old_to_new;
  // Last manifest wins per path — exactly the entry ProbeFile serves. An
  // ordered map keeps the compacted manifest section deterministic.
  std::map<std::string_view, uint64_t> last_file;
  uint64_t off = kHeaderBytes;
  while (off < store.log_end_) {
    uint32_t magic = GetU32(log.data() + off);
    if (magic == kRecordMagic) {
      RecordView r;
      if (!DecodeRecord(log, off, store.log_end_, &r)) break;  // unreachable post-open
      auto& chain = seen[r.fingerprint];
      uint64_t new_off = 0;
      bool duplicate = false;
      for (const auto& entry : chain) {
        if (entry.first == r.canonical) {
          new_off = entry.second;
          duplicate = true;
          break;
        }
      }
      if (duplicate) {
        ++dropped;
      } else {
        new_off = out.size();
        out.append(log.data() + off, r.total);
        chain.emplace_back(r.canonical, new_off);
        ++kept;
      }
      old_to_new[off] = new_off;
      off += r.total;
    } else {
      FileRecordView f;
      if (!DecodeFileRecord(log, off, store.log_end_, &f)) break;  // unreachable
      last_file[f.path] = off;
      off += f.total;
    }
  }

  uint64_t kept_files = 0;
  std::vector<StmtRef> refs;
  for (const auto& [rel_path, file_off] : last_file) {
    FileRecordView f;
    if (!DecodeFileRecord(log, file_off, store.log_end_, &f)) continue;
    refs.clear();
    refs.reserve(f.stmt_count);
    bool resolvable = true;
    for (uint32_t i = 0; i < f.stmt_count; ++i) {
      StmtRef r = GetStmtRef(f.stmts + i * kStmtRefBytes);
      auto it = old_to_new.find(r.offset);
      if (it == old_to_new.end()) {
        resolvable = false;  // unreachable: open validated every reference
        break;
      }
      r.offset = it->second;
      refs.push_back(r);
    }
    if (!resolvable) continue;
    out.append(EncodeFileRecord(rel_path, f.size, f.mtime_ns, refs));
    ++kept_files;
  }

  std::string head = EncodeHeader(ruleset_hash, generation, kept, out.size());
  out.replace(0, head.size(), head);

  const std::string tmp = path + ".compact.tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Error("cannot write '" + tmp + "': " + std::strerror(errno));
  }
  bool wrote = PWriteAll(fd, out.data(), out.size(), 0) && ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Error("compaction write failed: " + std::string(std::strerror(errno)));
  }
  // `store` still holds the old (now unlinked) inode; closing it must not
  // re-commit over the fresh file, and it cannot — its fd points elsewhere.
  if (summary != nullptr) {
    *summary = "kept=" + std::to_string(kept) + " dropped=" + std::to_string(dropped) +
               " files=" + std::to_string(kept_files) +
               " bytes=" + std::to_string(out.size()) +
               " generation=" + std::to_string(generation);
  }
  return Status::Ok();
}

uint64_t FingerprintStore::RulesetHash(const RuleRegistry& registry) {
  uint64_t h = Fnv64(&kFormatVersion, sizeof(kFormatVersion));
  for (const auto& rule : registry.rules()) {
    std::string slug = ApSlug(rule->type());
    h = Fnv64(slug.data(), slug.size(), h);
    h = Fnv64("|", 1, h);
  }
  return h;
}

}  // namespace sqlcheck::persist
