#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mmap_file.h"
#include "common/status.h"

namespace sqlcheck {
class RuleRegistry;
}

namespace sqlcheck::persist {

/// \brief One serialized finding: everything the scan report and a detailed
/// listing need, minus the fields that are rebased per occurrence (the raw
/// statement text and parse-tree pointer). Stored findings are a pure
/// function of the exact-canonical fingerprint — the same contract the
/// in-memory dedup cache relies on (rules derive detections from facts, never
/// from raw text outside Detection::query) — which is what makes replaying
/// them for every later occurrence sound.
struct StoredFinding {
  uint8_t type = 0;       ///< AntiPattern, numeric.
  uint8_t source = 0;     ///< DetectionSource, numeric.
  bool has_query = false; ///< Detection::query was non-empty: rebase it onto
                          ///< each occurrence's raw text when replaying.
  double score = 0.0;     ///< Ranking impact score (bit-exact round trip).
  std::string table;
  std::string column;
  std::string message;

  bool operator==(const StoredFinding& other) const {
    return type == other.type && source == other.source &&
           has_query == other.has_query && score == other.score &&
           table == other.table && column == other.column &&
           message == other.message;
  }
};

/// \brief The aggregate-relevant slice of a finding. The corpus report is
/// pure aggregates (rule occurrence counts, severity histogram), so the hot
/// replay path decodes only these two fields and never materializes the
/// table/column/message strings.
struct FindingStat {
  uint8_t type = 0;
  double score = 0.0;
};

/// \brief One statement of a file-manifest record: both fingerprints plus
/// the byte offset of the statement record that carries its findings.
struct StmtRef {
  uint64_t exact = 0;
  uint64_t tmpl = 0;
  uint64_t offset = 0;
};

/// \brief Open-lifetime counters and identity of one store. `warning` is
/// non-empty when the open degraded (corruption, version/rule-set mismatch,
/// lock contention) — the scan surfaces it and continues cold.
struct StoreStats {
  uint64_t entries = 0;        ///< Statement entries probeable now.
  uint64_t file_entries = 0;   ///< File-manifest entries (committed + staged).
  uint64_t bytes = 0;          ///< Committed file bytes at open.
  uint64_t generation = 0;     ///< Bumped every rebuild/compaction.
  uint64_t hits = 0;           ///< Statement probe hits since open.
  uint64_t misses = 0;         ///< Statement probe misses since open.
  uint64_t file_hits = 0;      ///< File-manifest probe hits since open.
  uint64_t file_misses = 0;    ///< File-manifest probe misses since open.
  uint64_t appended = 0;       ///< Statement entries appended since open.
  uint64_t appended_files = 0; ///< File entries appended since open.
  bool degraded = false;       ///< Open could not use the existing contents.
  std::string warning;         ///< Human-readable degradation reason ("" = clean).
};

/// \brief The persistent memo behind `sqlcheck scan`: a single-file, mmap'd,
/// checksummed append log holding two record kinds.
///
/// *Statement records* map an exact-canonical statement (text + 64-bit
/// fingerprint) to its serialized findings — the unit of analysis
/// memoization. Probes compare the stored canonical text, not just the hash,
/// so a fingerprint collision can never splice one statement's findings onto
/// another.
///
/// *File-manifest records* map a corpus file — keyed by root-relative path,
/// byte size, and mtime (nanoseconds) — to the ordered list of its
/// statements' fingerprints and statement-record offsets. A warm scan that
/// sees an unchanged (path, size, mtime) triple replays the file's entire
/// contribution without even opening the file; any mismatch (or any
/// unresolvable offset) falls back to reading and splitting the file, where
/// statement-level memoization still applies. The (size, mtime) key is the
/// standard build-cache freshness check (ccache and friends): a same-size
/// in-place edit inside one mtime tick is the documented blind spot.
///
/// Layout: a 64-byte header (magic, format version, rule-set hash,
/// generation, committed statement count, committed log end, checksum)
/// followed by records, each with a trailing FNV checksum. Appends are
/// staged in memory; Commit() (and Close()) write them with one bulk
/// write(2) past the committed end, fsync, and only then publish a new
/// header — a crash at any point leaves the previous header pointing at the
/// old, fully-valid prefix, and the torn tail is truncated on the next open.
///
/// Validity is keyed by (format version, rule-set hash): if either differs
/// at open the contents are discarded and the generation bumped — stored
/// findings are only meaningful under the rule set that produced them. A
/// file that does not carry the magic at all is never touched (the store
/// refuses to clobber what it did not write). Writers take a non-blocking
/// exclusive flock; on contention the open degrades to "disabled" and the
/// scan runs cold — two scans never interleave appends.
class FingerprintStore {
 public:
  /// Append/offset sentinel: no record lives at byte 0 (the header does).
  static constexpr uint64_t kNoOffset = 0;

  FingerprintStore() = default;
  ~FingerprintStore() { Close(); }
  FingerprintStore(const FingerprintStore&) = delete;
  FingerprintStore& operator=(const FingerprintStore&) = delete;

  /// Opens (creating if absent) for a scan under `ruleset_hash`. Returns
  /// non-OK only for hard errors (unwritable path); every recoverable problem
  /// degrades instead: the store comes back either usable-and-empty (rebuilt,
  /// `stats().warning` says why) or unusable (`usable()` false — foreign file
  /// or lock contention) and the caller scans cold.
  Status Open(const std::string& path, uint64_t ruleset_hash);

  /// True when probes/appends are live. False before Open, after Close, or
  /// when Open refused the file (not ours / locked by another scan).
  bool usable() const { return fd_ >= 0; }

  /// Looks up an exact-canonical statement. On hit fills `out` (may be an
  /// empty list — "analyzed, clean" is cached too) and returns true.
  /// Thread-safe against concurrent Probe*/Resolve* calls (the scan workers
  /// share one read-only store); Append*/Commit/Close must not overlap them.
  bool Probe(std::string_view canonical, uint64_t fingerprint,
             std::vector<StoredFinding>* out);

  /// Aggregates-only probe for the scan hot path: fills the (type, score)
  /// stats without materializing finding strings, and reports the serving
  /// record's template fingerprint and byte offset (for file manifests).
  bool ProbeStats(std::string_view canonical, uint64_t fingerprint,
                  std::vector<FindingStat>* out, uint64_t* template_fingerprint,
                  uint64_t* offset);

  /// Looks up a file manifest by its freshness key. On hit copies the
  /// statement references into `out` and returns true.
  bool ProbeFile(std::string_view rel_path, uint64_t size, uint64_t mtime_ns,
                 std::vector<StmtRef>* out);

  /// Decodes the finding stats of the committed statement record at `offset`,
  /// verifying its checksum and that its fingerprint matches `fingerprint`.
  /// Returns false on any mismatch — callers fall back to re-reading the
  /// file. `template_fingerprint` (optional) receives the record's template
  /// fingerprint.
  bool ResolveStats(uint64_t offset, uint64_t fingerprint,
                    std::vector<FindingStat>* out,
                    uint64_t* template_fingerprint) const;

  /// Stages one statement entry and returns its future byte offset. If the
  /// fingerprint+canonical is already present (committed or staged) returns
  /// the existing record's offset instead — first write wins. Returns
  /// kNoOffset when the store is unusable or the log is frozen by an earlier
  /// failure.
  uint64_t Append(std::string_view canonical, uint64_t fingerprint,
                  uint64_t template_fingerprint,
                  const std::vector<StoredFinding>& findings);

  /// Stages one file-manifest entry. The referenced statement offsets may be
  /// offsets returned by Append in this same session — Commit publishes both
  /// atomically.
  bool AppendFile(std::string_view rel_path, uint64_t size, uint64_t mtime_ns,
                  const std::vector<StmtRef>& stmts);

  /// Publishes staged records: one bulk write past the committed end, fsync,
  /// rewrite the header, fsync. Idempotent.
  Status Commit();

  /// Commit + unlock + unmap. Idempotent.
  void Close();

  /// Snapshot of the counters (hit/miss tallies fold in the atomics).
  StoreStats stats() const;

  /// Walks `path` validating the header, every record checksum, and every
  /// file-manifest statement reference. `summary` (optional) receives a
  /// one-line human-readable report. Non-OK on any invalid byte.
  static Status Verify(const std::string& path, std::string* summary);

  /// Rewrites `path` keeping the first statement record per
  /// fingerprint+canonical and the last file manifest per path, remapping
  /// manifest offsets onto the compacted layout, dropping any uncommitted
  /// tail, under a bumped generation. The rewrite goes through a temp file +
  /// rename, so a crash mid-compaction leaves the original intact. A store
  /// invalidated by `ruleset_hash` compacts to empty.
  static Status Compact(const std::string& path, uint64_t ruleset_hash,
                        std::string* summary);

  /// FNV-1a over the registry's rule slugs (registration order) and the
  /// format version: the key that ties stored findings to the rule set that
  /// produced them. Disabling a rule changes the hash, so a store can never
  /// replay findings a different rule set would not produce.
  static uint64_t RulesetHash(const RuleRegistry& registry);

 private:
  struct AppendedEntry {
    std::string canonical;
    std::vector<StoredFinding> findings;
    uint64_t offset = 0;
    uint64_t tmpl = 0;
  };
  struct FileEntry {
    uint64_t size = 0;
    uint64_t mtime_ns = 0;
    std::vector<StmtRef> stmts;
  };

  Status OpenLocked(uint64_t ruleset_hash);
  void Rebuild(uint64_t generation, std::string warning);
  bool LoadIndex(uint64_t log_end);
  bool WriteHeader(uint64_t entry_count, uint64_t log_end);
  void MarkUnusable(std::string warning);

  int fd_ = -1;
  MappedFile map_;                 ///< Committed region at open.
  uint64_t ruleset_hash_ = 0;
  uint64_t log_end_ = 0;           ///< Committed bytes (header included).
  uint64_t pending_end_ = 0;       ///< log_end_ + staged append bytes.
  uint64_t committed_entries_ = 0;
  uint64_t uncommitted_entries_ = 0;  ///< Statement entries staged, unpublished.
  std::string pending_buf_;        ///< Staged records, flushed at Commit.
  bool append_broken_ = false;     ///< A failed append/flush froze the log.
  StoreStats stats_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> file_hits_{0};
  std::atomic<uint64_t> file_misses_{0};
  /// fingerprint → byte offsets of committed statement records (collision
  /// chains kept; probes compare canonical text). Records appended this
  /// session index into `appended_` instead so the mapping never grows.
  std::unordered_map<uint64_t, std::vector<uint64_t>> index_;
  std::unordered_map<uint64_t, std::vector<AppendedEntry>> appended_;
  /// Committed file manifests, root-relative path → freshness key + refs.
  /// Later records for one path supersede earlier ones (last write wins).
  std::unordered_map<std::string, FileEntry> file_index_;
};

}  // namespace sqlcheck::persist
