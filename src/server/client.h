#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace sqlcheck {
namespace server {

/// \brief Minimal blocking NDJSON client for the sqlcheck-server protocol —
/// the test suite's and bench harness's view of the wire. One TCP
/// connection, SendLine() to write a request, ReadLine() to pull the next
/// LF-terminated response (buffered, so pipelined responses are returned one
/// at a time). Not thread-safe; one LineClient per thread.
class LineClient {
 public:
  LineClient() = default;
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad). Non-OK on failure.
  Status Connect(const std::string& host, uint16_t port);

  /// Writes `line` plus a trailing '\n' (appended if missing), blocking
  /// until every byte is accepted.
  Status SendLine(std::string_view line);

  /// Writes exactly `bytes` — no framing newline. Lets tests exercise the
  /// server's reassembly of requests split across TCP pushes.
  Status SendRaw(std::string_view bytes);

  /// Blocks until one full response line arrives; returns it without the
  /// trailing newline. Non-OK on EOF or socket error.
  Status ReadLine(std::string* out);

  /// Half-closes the write side (like `nc` after stdin EOF): the server
  /// finishes pending work, flushes, and closes.
  void ShutdownWrite();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;  ///< Bytes read past the last returned line.
};

}  // namespace server
}  // namespace sqlcheck
