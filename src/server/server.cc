#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "rules/rule.h"
#include "server/wire.h"

namespace sqlcheck {
namespace server {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Eviction notice pushed before the server closes an idle connection.
std::string EvictedLine(int idle_ms) {
  std::string line =
      "{\"op\": \"evicted\", \"ok\": false, \"error\": {\"code\": \"";
  line += ErrorCode::kEvicted;
  line += "\", \"message\": \"session evicted after ";
  line += std::to_string(idle_ms);
  line += "ms idle\"}}\n";
  return line;
}

}  // namespace

SqlCheckServer::SqlCheckServer(ServerOptions options) : options_(std::move(options)) {}

SqlCheckServer::~SqlCheckServer() { Stop(); }

Status SqlCheckServer::Start() {
  if (started_) return Status::Error("server already started");

  // A peer that disappears between poll and write must surface as EPIPE on
  // that one socket (handled as a silent teardown in TryFlush), never as a
  // process-killing signal. Idempotent and process-wide by design: any
  // embedding of the server needs this.
  std::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::Error("socket(): " + std::string(strerror(errno)));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error("bad host '" + options_.host + "' (IPv4 address expected)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Error("bind(" + options_.host + ":" +
                                  std::to_string(options_.port) +
                                  "): " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 512) != 0) {
    Status status = Status::Error("listen(): " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::Error("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // id 0 = the listener
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  epoll_event wake{};
  wake.events = EPOLLIN;
  wake.data.u64 = UINT64_MAX;  // sentinel id for the doorbell
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake);

  pool_ = std::make_unique<ThreadPool>(options_.workers);
  stop_.store(false);
  started_ = true;
  loop_ = std::thread([this] { EventLoop(); });
  return Status::Ok();
}

void SqlCheckServer::Stop() {
  if (started_) {
    stop_.store(true);
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    loop_.join();
    // Workers may still hold connections; drain them before tearing the
    // connection table down.
    pool_->Wait();
    pool_.reset();
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) ::close(conn->fd);
      conn->fd = -1;
    }
    conns_.clear();
    started_ = false;
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

void SqlCheckServer::EventLoop() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  int64_t last_sweep_ms = NowMs();
  // Sweep granularity: fine enough that eviction (or a stall disconnect)
  // lands within ~1/4 of its configured window, coarse enough to stay
  // negligible. Either guard being on turns the sweep on.
  int sweep_interval_ms = -1;
  auto fold_interval = [&sweep_interval_ms](int window_ms) {
    if (window_ms <= 0) return;
    int interval = std::max(10, std::min(window_ms / 4, 1000));
    if (sweep_interval_ms < 0 || interval < sweep_interval_ms) {
      sweep_interval_ms = interval;
    }
  };
  fold_interval(options_.idle_evict_ms);
  fold_interval(options_.write_stall_ms);

  while (!stop_.load()) {
    // The wheel bounds the sleep while deadlines are pending so expiry lands
    // within one wheel tick even on an otherwise silent socket set.
    int timeout = sweep_interval_ms;
    int wheel_timeout = wheel_.NextTimeoutMs();
    if (wheel_timeout >= 0 && (timeout < 0 || wheel_timeout < timeout)) {
      timeout = wheel_timeout;
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; ++i) {
      uint64_t id = events[i].data.u64;
      if (id == 0) {
        AcceptPending();
        continue;
      }
      if (id == UINT64_MAX) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // raced with a close
      std::shared_ptr<Conn> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        conn->peer_eof = true;
      }
      if (events[i].events & EPOLLIN) ReadFrom(conn);
      if (conns_.count(id) == 0) continue;  // ReadFrom may close
      if (events[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) TryFlush(conn);
    }

    // Doorbell-marked connections: fresh worker output (or state changes)
    // to flush. Taken every iteration, not only on wake events, so a wake
    // coalesced into another event is never lost.
    std::vector<uint64_t> dirty;
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (uint64_t id : dirty) {
      auto it = conns_.find(id);
      if (it != conns_.end()) TryFlush(it->second);
    }

    if (wheel_.size() > 0) ExpireDeadlines(NowMs());

    if (sweep_interval_ms > 0) {
      int64_t now = NowMs();
      if (now - last_sweep_ms >= sweep_interval_ms) {
        last_sweep_ms = now;
        SweepIdle(now);
      }
    }
  }
}

void SqlCheckServer::AcceptPending() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error — epoll will re-arm

    // Chaos seam: a dropped accept. The client sees a reset, the server just
    // keeps serving everyone else.
    if (SQLCHECK_FAILPOINT("socket_accept")) {
      gauges_.connections_rejected.fetch_add(1);
      ::close(fd);
      continue;
    }

    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (conns_.size() >= options_.max_sessions) {
      // Full house: explain and close. The error line is tiny and the
      // socket buffer fresh, so the nonblocking write will take it.
      gauges_.connections_rejected.fetch_add(1);
      std::string line = ErrorLine(
          ErrorCode::kCapacity,
          "server at capacity (" + std::to_string(options_.max_sessions) + " sessions)");
      [[maybe_unused]] ssize_t n = ::write(fd, line.data(), line.size());
      ::close(fd);
      continue;
    }

    auto conn = std::make_shared<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->last_activity_ms = NowMs();
    conn->handler = std::make_unique<SessionHandler>(
        options_.analysis, options_.include_fixes, &gauges_);
    conn->out = HelloLine(kAntiPatternCount);
    conns_.emplace(conn->id, conn);
    gauges_.connections_accepted.fetch_add(1);
    gauges_.active_sessions.store(conns_.size());

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    TryFlush(conn);
  }
}

void SqlCheckServer::ReadFrom(const std::shared_ptr<Conn>& conn) {
  // Chaos seam: a skipped read round. Level-triggered epoll redelivers the
  // readiness on the next iteration, so the bytes are only delayed — the
  // stream (and every response) is byte-identical.
  if (SQLCHECK_FAILPOINT("socket_read")) return;

  // Write backpressure: while this tenant's response backlog is over the
  // cap, stop pulling new requests off its socket. TryFlush resumes the
  // read side once the backlog halves; TCP flow control propagates the
  // pause to the client.
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->out.size() > options_.max_write_buffer_bytes) {
      if (!conn->epollin_paused && conn->fd >= 0) {
        conn->epollin_paused = true;
        epoll_event ev{};
        ev.events = conn->epollout_armed ? EPOLLOUT : 0u;
        ev.data.u64 = conn->id;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
      }
      return;
    }
  }

  char buffer[64 * 1024];
  bool got_bytes = false;
  while (true) {
    ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      got_bytes = true;
      gauges_.bytes_in.fetch_add(static_cast<uint64_t>(n));
      conn->in.append(buffer, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;  // half-close: finish pending work, then close
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->peer_eof = true;  // hard error: flush what we can, then close
    break;
  }
  if (got_bytes) {
    conn->last_activity_ms = NowMs();
    QueueLines(conn);
  }
  TryFlush(conn);
}

void SqlCheckServer::QueueLines(const std::shared_ptr<Conn>& conn) {
  std::vector<std::string> lines;
  std::string oversize_errors;
  size_t start = 0;
  while (true) {
    size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(conn->in.data() + start, nl - start);
    start = nl + 1;
    if (conn->discarding) {
      // Tail of an oversized line: swallow through its newline, resync.
      conn->discarding = false;
      continue;
    }
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.find_first_not_of(" \t") == std::string_view::npos) continue;
    if (line.size() > options_.max_line_bytes) {
      oversize_errors += ErrorLine(
          ErrorCode::kLineTooLong,
          "request line exceeds " + std::to_string(options_.max_line_bytes) + " bytes");
      continue;
    }
    lines.emplace_back(line);
  }
  conn->in.erase(0, start);
  // An unterminated fragment past the cap cannot become a valid request;
  // answer now and discard until the next newline arrives.
  if (!conn->discarding && conn->in.size() > options_.max_line_bytes) {
    oversize_errors += ErrorLine(
        ErrorCode::kLineTooLong,
        "request line exceeds " + std::to_string(options_.max_line_bytes) + " bytes");
    conn->in.clear();
    conn->in.shrink_to_fit();
    conn->discarding = true;
  }

  if (lines.empty() && oversize_errors.empty()) return;
  const int64_t now_ms = NowMs();
  bool dispatch = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->out += oversize_errors;
    for (auto& l : lines) {
      // Admission control: past the global queue-depth cap the request is
      // shed here — cheap, before any parsing — with a backoff hint. The
      // refusal is per request, not per connection: the tenant's already-
      // admitted work proceeds and later lines are admitted again as the
      // queue drains.
      if (options_.max_queue_depth > 0 &&
          queued_requests_.load(std::memory_order_relaxed) >=
              options_.max_queue_depth) {
        gauges_.requests_shed.fetch_add(1);
        conn->out += OverloadedLine(RetryAfterMs());
        continue;
      }
      PendingRequest request;
      request.seq = conn->next_seq++;
      request.deadline_ms =
          options_.request_deadline_ms > 0 ? now_ms + options_.request_deadline_ms : 0;
      request.line = std::move(l);
      if (request.deadline_ms > 0) {
        // QueueLines runs on the event thread, which owns the wheel.
        wheel_.Add(conn->id, request.seq, request.deadline_ms);
      }
      conn->pending.push_back(std::move(request));
      queued_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!conn->in_flight && !conn->pending.empty()) {
      conn->in_flight = true;
      dispatch = true;
    }
  }
  if (dispatch) {
    std::shared_ptr<Conn> ref = conn;
    pool_->Submit([this, ref]() mutable { ProcessQueue(std::move(ref)); });
  }
}

uint64_t SqlCheckServer::RetryAfterMs() const {
  uint64_t avg_us = avg_request_us_.load(std::memory_order_relaxed);
  if (avg_us == 0) avg_us = 1000;  // no samples yet: assume a 1ms request
  const uint64_t depth = queued_requests_.load(std::memory_order_relaxed);
  const uint64_t workers =
      static_cast<uint64_t>(ThreadPool::ResolveParallelism(options_.workers));
  const uint64_t ms = avg_us * (depth + 1) / workers / 1000;
  return std::max<uint64_t>(1, std::min<uint64_t>(ms, 30000));
}

void SqlCheckServer::ExpireDeadlines(int64_t now_ms) {
  std::vector<DeadlineEntry> due;
  wheel_.PopDue(now_ms, &due);
  for (const DeadlineEntry& entry : due) {
    auto it = conns_.find(entry.conn_id);
    if (it == conns_.end()) continue;  // connection already closed
    const std::shared_ptr<Conn>& conn = it->second;
    bool expired = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      // Lazy cancellation: only a request still sitting in the queue can be
      // expired from here. One already claimed by a worker observes the
      // deadline cooperatively inside the session instead.
      for (auto pending_it = conn->pending.begin(); pending_it != conn->pending.end();
           ++pending_it) {
        if (pending_it->seq != entry.seq) continue;
        conn->pending.erase(pending_it);
        queued_requests_.fetch_sub(1, std::memory_order_relaxed);
        conn->out += ErrorLine(
            ErrorCode::kDeadlineExceeded,
            "request deadline (" + std::to_string(options_.request_deadline_ms) +
                "ms) expired before processing began");
        expired = true;
        break;
      }
    }
    if (expired) {
      gauges_.deadlines_expired.fetch_add(1);
      TryFlush(conn);
    }
  }
}

void SqlCheckServer::ProcessQueue(std::shared_ptr<Conn> conn) {
  while (true) {
    PendingRequest request;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->pending.empty() || conn->want_close) {
        conn->in_flight = false;
        break;
      }
      request = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    queued_requests_.fetch_sub(1, std::memory_order_relaxed);

    std::string response;
    const int64_t start_ms = NowMs();
    if (request.deadline_ms > 0 && start_ms >= request.deadline_ms) {
      // Expired while queued but claimed before the wheel fired: same
      // answer the wheel would have given, without starting the work.
      gauges_.deadlines_expired.fetch_add(1);
      response = ErrorLine(
          ErrorCode::kDeadlineExceeded,
          "request deadline (" + std::to_string(options_.request_deadline_ms) +
              "ms) expired before processing began");
    } else {
      response = conn->handler->HandleLine(request.line, request.deadline_ms);
      // Service-time EWMA (alpha 1/8) feeding retry_after_ms. Lost updates
      // between racing workers just blend samples — it is a backoff hint,
      // not an invariant.
      const uint64_t sample_us = static_cast<uint64_t>(NowMs() - start_ms) * 1000;
      const uint64_t prev = avg_request_us_.load(std::memory_order_relaxed);
      avg_request_us_.store(prev == 0 ? sample_us : (prev * 7 + sample_us) / 8,
                            std::memory_order_relaxed);
    }
    gauges_.requests.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->out += response;
      if (conn->handler->quit()) conn->want_close = true;
    }
    NotifyDirty(conn->id);
  }
  NotifyDirty(conn->id);  // final state may allow the close to complete
}

void SqlCheckServer::TryFlush(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  bool close_now = false;
  bool want_out = false;
  bool made_progress = false;
  size_t backlog = 0;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (!conn->out.empty()) {
      // Chaos seam: a simulated EAGAIN — identical to a momentarily full
      // socket buffer. EPOLLOUT re-arms below and the bytes go out on a
      // later round, so responses stay byte-identical, just later.
      if (SQLCHECK_FAILPOINT("socket_write")) break;
      ssize_t n = ::write(conn->fd, conn->out.data(), conn->out.size());
      if (n > 0) {
        made_progress = true;
        gauges_.bytes_out.fetch_add(static_cast<uint64_t>(n));
        conn->out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_now = true;  // EPIPE/ECONNRESET: the peer is gone
      break;
    }
    backlog = conn->out.size();
    want_out = backlog > 0 && !close_now;
    // Stall tracking for the slow-client sweep: the clock starts when a
    // flush attempt leaves bytes behind without writing any, and resets the
    // moment anything goes out.
    if (made_progress || backlog == 0) {
      conn->write_stalled_since_ms = 0;
    } else if (want_out && conn->write_stalled_since_ms == 0) {
      conn->write_stalled_since_ms = NowMs();
    }
    if (!close_now && conn->out.empty()) {
      bool drained = conn->pending.empty() && !conn->in_flight;
      if (conn->want_close && drained) close_now = true;
      if (conn->peer_eof && drained) close_now = true;
    }
  }
  if (close_now) {
    CloseConn(conn->id);
    return;
  }
  // Resume the read side once the backlog halves (hysteresis so a client
  // hovering at the cap doesn't thrash the epoll registration).
  bool paused = conn->epollin_paused;
  if (paused && backlog <= options_.max_write_buffer_bytes / 2) paused = false;
  if (want_out != conn->epollout_armed || paused != conn->epollin_paused) {
    conn->epollout_armed = want_out;
    conn->epollin_paused = paused;
    epoll_event ev{};
    ev.events = (paused ? 0u : EPOLLIN) | (want_out ? EPOLLOUT : 0u);
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
}

void SqlCheckServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  std::shared_ptr<Conn> conn = it->second;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->want_close = true;  // a still-running worker stops at its next pop
    // Unstarted requests die with the connection; release their admission
    // slots or the global queue-depth gate would leak closed-tenant weight.
    queued_requests_.fetch_sub(conn->pending.size(), std::memory_order_relaxed);
    conn->pending.clear();
  }
  if (conn->fd >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
  }
  conns_.erase(it);
  gauges_.active_sessions.store(conns_.size());
}

void SqlCheckServer::SweepIdle(int64_t now_ms) {
  std::vector<std::shared_ptr<Conn>> victims;
  std::vector<uint64_t> stalled;
  for (auto& [id, conn] : conns_) {
    // Slow-client guard first: a wedged peer holds response bytes (and a
    // whole session) hostage; there is nothing to flush to it, so this is a
    // hard close, not an eviction notice.
    if (options_.write_stall_ms > 0) {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->write_stalled_since_ms != 0 &&
          now_ms - conn->write_stalled_since_ms >= options_.write_stall_ms) {
        stalled.push_back(id);
        continue;
      }
    }
    if (options_.idle_evict_ms <= 0) continue;
    if (now_ms - conn->last_activity_ms < options_.idle_evict_ms) continue;
    std::lock_guard<std::mutex> lock(conn->mu);
    // Only truly idle tenants: queued or in-flight work counts as activity.
    if (conn->in_flight || !conn->pending.empty()) continue;
    conn->out += EvictedLine(options_.idle_evict_ms);
    conn->want_close = true;
    victims.push_back(conn);
  }
  for (uint64_t id : stalled) {
    gauges_.slow_client_disconnects.fetch_add(1);
    CloseConn(id);
  }
  for (auto& conn : victims) {
    gauges_.evictions.fetch_add(1);
    TryFlush(conn);  // closes once the notice drains
  }
}

void SqlCheckServer::NotifyDirty(uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.push_back(id);
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

}  // namespace server
}  // namespace sqlcheck
