#include "server/wire.h"

#include <cstdint>

#include "core/emit.h"

namespace sqlcheck {
namespace server {

namespace {

/// Hand-rolled scanner for the protocol's request subset of JSON: one flat
/// object, string values for the keys we recognize, any scalar/array/object
/// for keys we skip. Small enough to audit; no dependency the container
/// doesn't already have. Positions advance only on success.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// Parses a JSON string (cursor on the opening quote) and decodes its
  /// escapes into `out` as UTF-8.
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control byte
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair required
            uint32_t low = 0;
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return false;
            }
            pos_ += 2;
            if (!ParseHex4(&low) || low < 0xDC00 || low > 0xDFFF) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // unpaired low surrogate
          }
          AppendUtf8(cp, out);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  /// Skips any JSON value (used for unrecognized keys). Depth-bounded so a
  /// hostile deeply-nested payload cannot blow the stack.
  bool SkipValue(int depth = 0) {
    if (depth > 32) return false;
    SkipWs();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == '{' || c == '[') {
      char close = c == '{' ? '}' : ']';
      ++pos_;
      if (Consume(close)) return true;
      while (true) {
        if (c == '{') {
          std::string ignored;
          if (!ParseString(&ignored) || !Consume(':')) return false;
        }
        if (!SkipValue(depth + 1)) return false;
        if (Consume(close)) return true;
        if (!Consume(',')) return false;
      }
    }
    // Scalar: number / true / false / null — accept the token characters.
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char s = text_[pos_];
      if ((s >= '0' && s <= '9') || (s >= 'a' && s <= 'z') || s == '-' || s == '+' ||
          s == '.' || s == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    return pos_ > start;
  }

 private:
  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = value;
    return true;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Request Bad(std::string message) {
  Request request;
  request.ok = false;
  request.error_code = ErrorCode::kBadRequest;
  request.error_message = std::move(message);
  return request;
}

}  // namespace

bool ValidUtf8(std::string_view s) {
  size_t i = 0;
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    size_t len;
    uint32_t cp;
    if (c < 0x80) {
      ++i;
      continue;
    } else if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1F;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0F;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07;
    } else {
      return false;  // continuation byte or FE/FF lead
    }
    if (i + len > s.size()) return false;
    for (size_t k = 1; k < len; ++k) {
      unsigned char cont = static_cast<unsigned char>(s[i + k]);
      if ((cont & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cont & 0x3F);
    }
    // Overlong encodings, surrogate range, and > U+10FFFF are invalid.
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) ||
        (len == 4 && cp < 0x10000) || (cp >= 0xD800 && cp <= 0xDFFF) ||
        cp > 0x10FFFF) {
      return false;
    }
    i += len;
  }
  return true;
}

Request ParseRequest(std::string_view line) {
  if (!ValidUtf8(line)) return Bad("request line is not valid UTF-8");
  JsonScanner scanner(line);
  if (!scanner.Consume('{')) return Bad("request must be a JSON object");
  Request request;
  if (!scanner.Consume('}')) {
    while (true) {
      std::string name;
      if (!scanner.ParseString(&name)) return Bad("malformed JSON: expected key");
      if (!scanner.Consume(':')) return Bad("malformed JSON: expected ':'");
      std::string* field = nullptr;
      if (name == "op") {
        field = &request.op;
      } else if (name == "sql") {
        field = &request.sql;
      } else if (name == "format") {
        field = &request.format;
      }
      if (field != nullptr) {
        if (scanner.Peek() != '"') {
          return Bad("field '" + name + "' must be a JSON string");
        }
        if (!scanner.ParseString(field)) {
          return Bad("malformed JSON: bad string for '" + name + "'");
        }
      } else if (!scanner.SkipValue()) {  // unknown members tolerated, must parse
        return Bad("malformed JSON: bad value for '" + name + "'");
      }
      if (scanner.Consume('}')) break;
      if (!scanner.Consume(',')) return Bad("malformed JSON: expected ',' or '}'");
    }
  }
  if (!scanner.AtEnd()) return Bad("trailing bytes after the request object");
  if (request.op.empty()) return Bad("missing required field 'op'");
  request.ok = true;
  return request;
}

std::string ErrorLine(std::string_view code, std::string_view message) {
  std::string line = "{\"ok\": false, \"error\": {\"code\": \"";
  line += JsonEscape(code);
  line += "\", \"message\": \"";
  line += JsonEscape(message);
  line += "\"}}\n";
  return line;
}

std::string OverloadedLine(uint64_t retry_after_ms) {
  std::string line = "{\"ok\": false, \"error\": {\"code\": \"";
  line += ErrorCode::kOverloaded;
  line += "\", \"message\": \"server overloaded; retry after the hint\"}, "
          "\"retry_after_ms\": ";
  line += std::to_string(retry_after_ms);
  line += "}\n";
  return line;
}

std::string StatementErrorLine(std::string_view code, std::string_view message,
                               std::string_view sql, bool quarantined) {
  constexpr size_t kSqlPrefixBytes = 160;
  std::string_view prefix = sql.substr(0, kSqlPrefixBytes);
  // Never emit a torn UTF-8 sequence: locate the last lead byte; if its
  // sequence runs past the cap, cut before it (a complete trailing sequence
  // is kept whole).
  size_t lead = prefix.size();
  while (lead > 0 && (static_cast<unsigned char>(prefix[lead - 1]) & 0xC0) == 0x80) {
    --lead;
  }
  if (lead > 0 && static_cast<unsigned char>(prefix[lead - 1]) >= 0xC0) {
    const unsigned char first = static_cast<unsigned char>(prefix[lead - 1]);
    const size_t expect = first >= 0xF0 ? 4 : first >= 0xE0 ? 3 : 2;
    if (lead - 1 + expect > prefix.size()) prefix = prefix.substr(0, lead - 1);
  }
  std::string line = "{\"op\": \"statement_error\", \"ok\": false, \"error\": {\"code\": \"";
  line += JsonEscape(code);
  line += "\", \"message\": \"";
  line += JsonEscape(message);
  line += "\"}, \"sql\": \"";
  line += JsonEscape(prefix);
  if (prefix.size() < sql.size()) line += "...";
  line += "\", \"quarantined\": ";
  line += quarantined ? "true" : "false";
  line += "}\n";
  return line;
}

std::string HelloLine(int rule_count) {
  std::string line = "{\"op\": \"hello\", \"ok\": true, \"tool\": \"sqlcheck-server\", "
                     "\"protocol\": ";
  line += std::to_string(kProtocolVersion);
  line += ", \"rules\": ";
  line += std::to_string(rule_count);
  line += "}\n";
  return line;
}

}  // namespace server
}  // namespace sqlcheck
