#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sqlcheck {
namespace server {

/// \brief One queued request's deadline registration. `seq` identifies the
/// request within its connection's pending queue — expiry is lazy: an entry
/// whose request already started (or finished, or whose connection closed)
/// simply finds no matching queue slot and is dropped.
struct DeadlineEntry {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  int64_t deadline_ms = 0;  ///< Monotonic milliseconds (server NowMs clock).
};

/// \brief Hashed timing wheel for request deadlines, owned by the epoll
/// event thread (no locking — Add() happens when a request is queued,
/// PopDue() once per loop iteration). All deadlines share one offset
/// (--request-deadline-ms), but the wheel stays general: an entry lands in
/// the bucket of its expiry tick, the cursor advances with the clock, and a
/// wrapped entry (more than kBuckets ticks out) just stays put until the
/// cursor comes around again. Cost per loop: O(buckets crossed + entries
/// touched), independent of the total pending count.
class DeadlineWheel {
 public:
  /// `granularity_ms` is the expiry precision: a deadline fires at most one
  /// tick late. 16ms tracks the epoll timeout resolution the server runs at.
  explicit DeadlineWheel(int granularity_ms = 16);

  /// Registers a deadline. `deadline_ms` may already be in the past — it
  /// then pops on the next PopDue().
  void Add(uint64_t conn_id, uint64_t seq, int64_t deadline_ms);

  /// Moves every entry with `deadline_ms <= now_ms` into *due (appended in
  /// wheel order, which is deadline order up to one tick) and advances the
  /// cursor to `now_ms`.
  void PopDue(int64_t now_ms, std::vector<DeadlineEntry>* due);

  /// Epoll timeout hint: milliseconds until the wheel next needs servicing
  /// (-1 when empty — sleep on I/O alone). Granularity-coarse on purpose;
  /// the event loop min-merges this with its sweep interval.
  int NextTimeoutMs() const { return size_ == 0 ? -1 : granularity_ms_; }

  size_t size() const { return size_; }

 private:
  static constexpr size_t kBuckets = 256;

  int64_t TickOf(int64_t ms) const { return ms / granularity_ms_; }

  const int granularity_ms_;
  int64_t cursor_tick_ = 0;  ///< Every tick <= cursor has been drained.
  bool started_ = false;     ///< Cursor initializes from the first event.
  size_t size_ = 0;
  std::vector<DeadlineEntry> buckets_[kBuckets];
};

}  // namespace server
}  // namespace sqlcheck
