#pragma once

#include <string>
#include <string_view>

namespace sqlcheck {
namespace server {

/// Wire protocol version (see docs/PROTOCOL.md "Versioning"). Bumped only
/// for breaking changes; additive fields/ops do not bump it — clients must
/// ignore object members they do not recognize, and the server ignores
/// unknown request members for the same reason.
inline constexpr int kProtocolVersion = 1;

/// \brief Stable error codes of the wire protocol (the `error.code` field —
/// docs/PROTOCOL.md "Errors"). Messages are human-readable and may change;
/// codes are contract.
struct ErrorCode {
  static constexpr const char* kBadRequest = "bad_request";
  static constexpr const char* kLineTooLong = "line_too_long";
  static constexpr const char* kQuotaExceeded = "quota_exceeded";
  static constexpr const char* kCapacity = "capacity";
  static constexpr const char* kEvicted = "evicted";
  /// Load shedding: the request was refused at admission (never queued,
  /// session untouched). Retryable — the line carries `retry_after_ms`.
  static constexpr const char* kOverloaded = "overloaded";
  /// The request's deadline passed before (or while) it was served.
  static constexpr const char* kDeadlineExceeded = "deadline_exceeded";
  /// A statement faulted persistently inside the engine; its fingerprint is
  /// quarantined and the rest of the request proceeded.
  static constexpr const char* kInternalError = "internal_error";
};

/// \brief One parsed request line. The protocol is newline-delimited JSON:
/// every request is a single-line flat JSON object whose recognized members
/// (`op`, `sql`, `format`) are strings; unknown members are ignored for
/// forward compatibility. `ok == false` means the line was not a valid
/// request — `error_code`/`error_message` carry the bad_request diagnosis.
struct Request {
  bool ok = false;
  std::string op;
  std::string sql;
  std::string format;
  std::string error_code;
  std::string error_message;
};

/// \brief Parses one request line (without its trailing newline). Rejects
/// invalid UTF-8, malformed JSON, non-object payloads, trailing garbage, and
/// non-string values for recognized keys. JSON string escapes (including
/// \uXXXX with surrogate pairs) are decoded into the returned fields.
Request ParseRequest(std::string_view line);

/// \brief True iff `s` is well-formed UTF-8 (rejects overlong encodings,
/// surrogates, and codepoints past U+10FFFF) — the framing-level validity
/// check every request line must pass.
bool ValidUtf8(std::string_view s);

/// \brief One protocol error line: {"ok": false, "error": {"code": ...,
/// "message": ...}} with trailing newline, ready to write to the socket.
std::string ErrorLine(std::string_view code, std::string_view message);

/// \brief The load-shedding refusal: an `overloaded` error line carrying the
/// server's backoff hint (`retry_after_ms`, from its service-time EWMA and
/// current queue depth). The refused request never touched the session, so a
/// verbatim retry after the hint is safe.
std::string OverloadedLine(uint64_t retry_after_ms);

/// \brief One `statement_error` stream line: a per-statement failure inside
/// an otherwise-successful `check` (poisoned statement, blown statement
/// budget, deadline cutoff). `sql` is truncated to a short prefix — it
/// identifies the statement, it does not echo the payload.
std::string StatementErrorLine(std::string_view code, std::string_view message,
                               std::string_view sql, bool quarantined);

/// \brief The greeting pushed to every accepted connection: protocol
/// version, tool name, and rule count.
std::string HelloLine(int rule_count);

}  // namespace server
}  // namespace sqlcheck
