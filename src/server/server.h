#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/options.h"
#include "server/deadline_wheel.h"
#include "server/handler.h"

namespace sqlcheck {
namespace server {

/// \brief Deployment knobs for the sqlcheck-server daemon (the CLI flags of
/// tools/sqlcheck_server.cc map onto these 1:1; docs/OPERATIONS.md explains
/// sizing). Per-tenant analysis/quota configuration rides inside `analysis`
/// (SqlCheckOptions::limits).
struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 8617;  ///< 0 = ephemeral; SqlCheckServer::port() reports it.
  /// Analysis worker threads (the PR-1 ThreadPool); <= 0 = hardware threads.
  int workers = 0;
  /// Concurrent sessions (= connections) before new arrivals are turned
  /// away with a `capacity` error.
  size_t max_sessions = 10000;
  /// Evict sessions idle for this long (0 = never). Eviction sends an
  /// `evicted` notice and closes the connection, releasing every byte the
  /// tenant held (arena, memos, interner).
  int idle_evict_ms = 0;
  /// Framing guard: a request line longer than this is answered with
  /// `line_too_long` and discarded (the connection survives — the stream
  /// resynchronizes at the next newline).
  size_t max_line_bytes = 1 << 20;
  /// Emit the extended fix-verification fields on finding lines (the CLI's
  /// --fixes surface).
  bool include_fixes = false;
  /// Per-request wall-clock deadline in milliseconds (0 = off). A request
  /// still queued when it passes is answered `deadline_exceeded` without
  /// running (the deadline wheel expires it lazily); a running `check` stops
  /// between statements and answers `deadline_exceeded` with the partial
  /// ingest intact.
  int request_deadline_ms = 0;
  /// Load-shedding admission cap on requests queued across all connections
  /// (0 = off). A request line arriving past the cap is refused immediately
  /// with a retryable `overloaded` error carrying `retry_after_ms` — it
  /// never reaches a worker or the session.
  size_t max_queue_depth = 0;
  /// Write-backpressure threshold: once a connection's unsent response bytes
  /// exceed this, the server stops reading from that socket (the client
  /// cannot pipeline unboundedly faster than it drains responses); reading
  /// resumes when the backlog halves.
  size_t max_write_buffer_bytes = 8u << 20;
  /// Slow-client guard (0 = off): a connection whose response backlog makes
  /// no write progress for this long is disconnected, releasing its session.
  int write_stall_ms = 0;
  /// Per-tenant session configuration: rule selection, parallelism (leave at
  /// 1 — concurrency comes from sessions, not intra-session sharding), and
  /// the SessionLimits quotas.
  SqlCheckOptions analysis;
};

/// \brief The multi-tenant streaming analysis daemon: one epoll event loop
/// (acceptor + socket I/O + idle sweep) feeding a ThreadPool of analysis
/// workers, with one SessionHandler — hence one AnalysisSession — per
/// connection. Requests on one connection are processed strictly in order
/// (at most one in-flight handler call per tenant); different tenants run
/// concurrently on the pool.
///
/// Lifetime/ownership: the event-loop thread owns sockets and epoll
/// registration; workers own a tenant's handler only while that tenant's
/// queue is theirs (`in_flight`); response buffers are handed between the
/// two under a per-connection mutex. Start() spawns the loop; Stop() (or
/// destruction) drains the pool and closes every connection.
class SqlCheckServer {
 public:
  explicit SqlCheckServer(ServerOptions options);
  ~SqlCheckServer();

  SqlCheckServer(const SqlCheckServer&) = delete;
  SqlCheckServer& operator=(const SqlCheckServer&) = delete;

  /// Binds, listens, and spawns the event loop. Non-OK on bind/listen
  /// failure (address in use, bad host, ...).
  Status Start();

  /// Shuts down: stops accepting, joins the event loop, drains workers, and
  /// closes every connection. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 to the kernel's pick after Start()).
  uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }
  const ServerGauges& gauges() const { return gauges_; }

 private:
  /// One admitted request awaiting a worker. `seq` keys the deadline wheel's
  /// lazy cancellation; `deadline_ms` (0 = none) rides to the handler so a
  /// running check stops cooperatively.
  struct PendingRequest {
    uint64_t seq = 0;
    int64_t deadline_ms = 0;
    std::string line;
  };

  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    /// Read-side assembly buffer and oversize-resync flag (event thread).
    std::string in;
    bool discarding = false;
    bool peer_eof = false;
    /// Milliseconds timestamp of the last bytes received (idle sweeps read
    /// it from the event thread; monotonic clock).
    int64_t last_activity_ms = 0;
    bool epollout_armed = false;
    /// Read side unsubscribed from epoll: the response backlog crossed
    /// max_write_buffer_bytes (event thread only).
    bool epollin_paused = false;
    uint64_t next_seq = 1;  ///< Event thread only (QueueLines).

    /// Handed between event thread and the one in-flight worker under `mu`.
    std::mutex mu;
    std::deque<PendingRequest> pending;  ///< Admitted requests, in order.
    bool in_flight = false;              ///< A worker owns this tenant's queue.
    std::string out;                     ///< Response bytes awaiting the socket.
    bool want_close = false;             ///< Close once `out` drains.
    /// When the backlog first made no write progress (0 = flowing); the
    /// sweep disconnects past write_stall_ms.
    int64_t write_stalled_since_ms = 0;

    std::unique_ptr<SessionHandler> handler;
  };

  void EventLoop();
  void AcceptPending();
  void ReadFrom(const std::shared_ptr<Conn>& conn);
  /// Splits conn->in into complete lines, enforcing max_line_bytes, and
  /// queues them; dispatches a worker if none owns the queue.
  void QueueLines(const std::shared_ptr<Conn>& conn);
  /// Worker side: drains the tenant's queue one request at a time.
  void ProcessQueue(std::shared_ptr<Conn> conn);
  /// Nonblocking write of conn->out; arms/disarms EPOLLOUT; closes when
  /// drained and the connection is done. Event thread only.
  void TryFlush(const std::shared_ptr<Conn>& conn);
  void CloseConn(uint64_t id);
  void SweepIdle(int64_t now_ms);
  /// Worker -> event thread doorbell: marks `id` dirty and wakes epoll.
  void NotifyDirty(uint64_t id);
  /// Expires still-queued requests whose deadline passed (event thread;
  /// lazy cancellation — started requests are skipped).
  void ExpireDeadlines(int64_t now_ms);
  /// Backoff hint for overloaded refusals: queue depth x the service-time
  /// EWMA, spread over the worker count.
  uint64_t RetryAfterMs() const;

  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread loop_;
  std::unique_ptr<ThreadPool> pool_;
  ServerGauges gauges_;

  uint64_t next_conn_id_ = 1;  ///< Event thread only (epoll keys by id, not fd).
  std::unordered_map<uint64_t, std::shared_ptr<Conn>> conns_;  ///< Event thread only.

  std::mutex dirty_mu_;
  std::vector<uint64_t> dirty_;  ///< Conn ids with fresh output to flush.

  DeadlineWheel wheel_;  ///< Event thread only (QueueLines adds, loop pops).
  /// Requests admitted but not yet started, across all connections — the
  /// load-shedding admission gate (QueueLines bumps, workers/expiry drop).
  std::atomic<size_t> queued_requests_{0};
  /// EWMA of request service time in microseconds (workers update, the
  /// admission path reads it for retry_after_ms). Heuristic: races between
  /// workers just blend samples.
  std::atomic<uint64_t> avg_request_us_{0};
};

}  // namespace server
}  // namespace sqlcheck
