#include "server/handler.h"

#include <utility>

#include "core/emit.h"
#include "server/wire.h"

namespace sqlcheck {
namespace server {

namespace {

void AppendField(std::string* out, const char* key, uint64_t value, bool first = false) {
  if (!first) *out += ", ";
  *out += '"';
  *out += key;
  *out += "\": ";
  *out += std::to_string(value);
}

void AppendField(std::string* out, const char* key, std::string_view value,
                 bool first = false) {
  if (!first) *out += ", ";
  *out += '"';
  *out += key;
  *out += "\": \"";
  *out += JsonEscape(value);
  *out += '"';
}

}  // namespace

SessionHandler::SessionHandler(const SqlCheckOptions& options, bool include_fixes,
                               ServerGauges* gauges)
    : options_(options),
      include_fixes_(include_fixes),
      gauges_(gauges),
      session_(std::make_unique<AnalysisSession>(options)) {}

std::string SessionHandler::HandleLine(std::string_view line, int64_t deadline_ms) {
  ++requests_;
  // Nothing past this point may throw into the transport: the worker pool's
  // tasks-don't-throw contract ends here. The session's append paths absorb
  // statement-level faults themselves; this catch covers everything else
  // (report assembly, ranking, emission) and answers internal_error while
  // the connection — and the session's ingested history — stay usable.
  try {
    Request request = ParseRequest(line);
    if (!request.ok) return ErrorLine(request.error_code, request.error_message);
    if (request.op == "check") return HandleCheck(request, deadline_ms);
    if (request.op == "snapshot") return HandleSnapshot(request);
    if (request.op == "reset") return HandleReset();
    if (request.op == "stats") return HandleStats();
    if (request.op == "ping") return "{\"op\": \"ping\", \"ok\": true}\n";
    if (request.op == "quit") {
      quit_ = true;
      return "{\"op\": \"quit\", \"ok\": true}\n";
    }
    return ErrorLine(ErrorCode::kBadRequest, "unknown op '" + request.op + "'");
  } catch (const std::exception& e) {
    session_->ClearDeadline();
    return ErrorLine(ErrorCode::kInternalError,
                     std::string("request failed: ") + e.what());
  } catch (...) {
    session_->ClearDeadline();
    return ErrorLine(ErrorCode::kInternalError, "request failed");
  }
}

std::string SessionHandler::FindingLine(const Finding& finding, size_t rank) const {
  std::string line = "{\"op\": \"finding\", \"finding\": ";
  line += FindingToJsonLine(finding, rank, include_fixes_);
  line += "}\n";
  return line;
}

std::string SessionHandler::HandleCheck(const Request& request, int64_t deadline_ms) {
  if (request.sql.empty()) {
    return ErrorLine(ErrorCode::kBadRequest, "check requires a non-empty 'sql'");
  }
  // Reject before parsing: a request that would cross a quota is refused
  // whole, leaving the session's ingested history fully usable.
  Status quota = session_->CheckQuota(request.sql.size());
  if (!quota.ok()) return ErrorLine(ErrorCode::kQuotaExceeded, quota.message());

  if (deadline_ms > 0) {
    session_->SetDeadline(std::chrono::steady_clock::time_point(
        std::chrono::milliseconds(deadline_ms)));
  }
  const size_t before = session_->statement_count();
  Report delta = session_->Check(request.sql);
  session_->ClearDeadline();
  if (!session_->quota_status().ok()) {
    // A mid-append breach (e.g. the arena crossed its cap while this script
    // was ingesting) still answers quota_exceeded — nothing was appended.
    return ErrorLine(ErrorCode::kQuotaExceeded, session_->quota_status().message());
  }
  std::string response;
  for (size_t i = 0; i < delta.findings.size(); ++i) {
    response += FindingLine(delta.findings[i], i + 1);
  }
  findings_streamed_ += delta.findings.size();

  // Statement-level failures stream like findings: each poisoned, budget-
  // blown, or deadline-refused statement gets its own line, then the
  // terminal line summarizes. A request-level deadline cutoff (refused
  // entries that were never quarantined) turns the terminal into
  // deadline_exceeded — partial statements up to the cutoff are ingested
  // and their findings above remain valid.
  const std::vector<StatementFailure>& failures = session_->recent_failures();
  bool deadline_hit = false;
  for (const StatementFailure& failure : failures) {
    response += StatementErrorLine(failure.code, failure.message, failure.sql,
                                   failure.quarantined);
    if (!failure.quarantined && failure.code == std::string_view("deadline_exceeded")) {
      deadline_hit = true;
    }
  }
  if (deadline_hit) {
    if (gauges_ != nullptr) gauges_->deadlines_expired.fetch_add(1);
    response += "{\"op\": \"check\", \"ok\": false, \"error\": {\"code\": \"";
    response += ErrorCode::kDeadlineExceeded;
    response += "\", \"message\": \"request deadline expired mid-script; "
                "statements before the cutoff are ingested\"}";
  } else {
    response += "{\"op\": \"check\", \"ok\": true";
  }
  AppendField(&response, "statements", session_->statement_count() - before);
  AppendField(&response, "total_statements", session_->statement_count());
  AppendField(&response, "findings", delta.findings.size());
  if (!failures.empty()) {
    AppendField(&response, "failed_statements", failures.size());
  }
  response += "}\n";
  return response;
}

std::string SessionHandler::HandleSnapshot(const Request& request) {
  Report report = session_->Snapshot();
  if (request.format == "json" || request.format == "sarif") {
    // Whole-document flavor: the PR-3 emitters' exact batch output, shipped
    // as one escaped string so the NDJSON framing stays line-per-message.
    EmitOptions emit;
    emit.include_fixes = include_fixes_;
    std::string document =
        request.format == "json" ? ToJson(report, emit) : ToSarif(report, emit);
    std::string response = "{\"op\": \"snapshot\", \"ok\": true";
    AppendField(&response, "format", request.format);
    AppendField(&response, "findings", report.findings.size());
    AppendField(&response, "document", document);
    response += "}\n";
    return response;
  }
  if (!request.format.empty() && request.format != "ndjson") {
    return ErrorLine(ErrorCode::kBadRequest,
                     "unknown snapshot format '" + request.format + "'");
  }
  std::string response;
  for (size_t i = 0; i < report.findings.size(); ++i) {
    response += FindingLine(report.findings[i], i + 1);
  }
  findings_streamed_ += report.findings.size();
  response += "{\"op\": \"snapshot\", \"ok\": true";
  AppendField(&response, "findings", report.findings.size());
  AppendField(&response, "statements", session_->statement_count());
  response += "}\n";
  return response;
}

std::string SessionHandler::HandleReset() {
  // A fresh session: history, memos, arena, interner, quota accounting, and
  // the statement quarantine all restart from zero. This is the tenant-facing
  // recovery path after quota_exceeded and after quarantined statements.
  session_ = std::make_unique<AnalysisSession>(options_);
  return "{\"op\": \"reset\", \"ok\": true}\n";
}

std::string SessionHandler::HandleStats() {
  SessionUsage usage = session_->Usage();
  const SessionLimits& limits = options_.limits;
  uint64_t uptime = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::seconds>(
                                              std::chrono::steady_clock::now() - started_)
                                              .count());
  std::string response = "{\"op\": \"stats\", \"ok\": true, \"session\": {";
  AppendField(&response, "statements", usage.statements, /*first=*/true);
  AppendField(&response, "unique_groups", usage.unique_groups);
  AppendField(&response, "ingested_bytes", usage.ingested_bytes);
  AppendField(&response, "arena_reserved_bytes", usage.arena_reserved_bytes);
  AppendField(&response, "arena_used_bytes", usage.arena_used_bytes);
  AppendField(&response, "scratch_reserved_bytes", usage.scratch_reserved_bytes);
  AppendField(&response, "interner_names", usage.interner_names);
  AppendField(&response, "interner_bytes", usage.interner_bytes);
  AppendField(&response, "fix_cache_hits", session_->fix_cache_hits());
  AppendField(&response, "fix_cache_misses", session_->fix_cache_misses());
  const VerifyStats& verify = session_->verify_stats();
  AppendField(&response, "verify_tier_exec", verify.tier_exec);
  AppendField(&response, "verify_tier_analysis", verify.tier_analysis);
  AppendField(&response, "verify_tier_parse", verify.tier_parse);
  AppendField(&response, "verify_demoted", verify.demoted);
  AppendField(&response, "verify_exec_runs", verify.exec_runs);
  AppendField(&response, "verify_exec_infeasible", verify.exec_infeasible);
  AppendField(&response, "verify_memo_hits", verify.memo_hits);
  AppendField(&response, "verify_memo_misses", verify.memo_misses);
  AppendField(&response, "statements_quarantined", session_->statements_quarantined());
  AppendField(&response, "quarantine_size", session_->quarantine_size());
  AppendField(&response, "quarantine_refusals", session_->quarantine_refusals());
  AppendField(&response, "faults_recovered", session_->faults_recovered());
  AppendField(&response, "requests", requests_);
  AppendField(&response, "findings_streamed", findings_streamed_);
  AppendField(&response, "uptime_secs", uptime);
  response += ", \"quota_ok\": ";
  response += session_->quota_status().ok() ? "true" : "false";
  if (!session_->quota_status().ok()) {
    AppendField(&response, "quota_message", session_->quota_status().message());
  }
  response += "}, \"limits\": {";
  AppendField(&response, "max_statements", limits.max_statements, /*first=*/true);
  AppendField(&response, "max_ingest_bytes", limits.max_ingest_bytes);
  AppendField(&response, "arena_cap_bytes", limits.arena_cap_bytes);
  AppendField(&response, "interner_cap_names", limits.interner_cap_names);
  response += '}';
  if (gauges_ != nullptr) {
    response += ", \"server\": {";
    AppendField(&response, "active_sessions", gauges_->active_sessions.load(),
                /*first=*/true);
    AppendField(&response, "connections_accepted", gauges_->connections_accepted.load());
    AppendField(&response, "connections_rejected", gauges_->connections_rejected.load());
    AppendField(&response, "evictions", gauges_->evictions.load());
    AppendField(&response, "requests", gauges_->requests.load());
    AppendField(&response, "bytes_in", gauges_->bytes_in.load());
    AppendField(&response, "bytes_out", gauges_->bytes_out.load());
    AppendField(&response, "requests_shed", gauges_->requests_shed.load());
    AppendField(&response, "deadlines_expired", gauges_->deadlines_expired.load());
    AppendField(&response, "slow_client_disconnects",
                gauges_->slow_client_disconnects.load());
    response += '}';
  }
  response += "}\n";
  return response;
}

}  // namespace server
}  // namespace sqlcheck
