#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/options.h"
#include "core/session.h"

namespace sqlcheck {
namespace server {

struct Request;

/// \brief Process-wide counters the event loop maintains and the `stats` op
/// reports. Plain atomics: workers bump them without coordination.
struct ServerGauges {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};  ///< Turned away at capacity.
  std::atomic<uint64_t> active_sessions{0};
  std::atomic<uint64_t> evictions{0};  ///< Idle sessions reclaimed.
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  /// Requests refused at admission with `overloaded` (--max-queue-depth).
  std::atomic<uint64_t> requests_shed{0};
  /// Requests answered `deadline_exceeded` — expired in queue or cut off
  /// mid-script (--request-deadline-ms).
  std::atomic<uint64_t> deadlines_expired{0};
  /// Connections dropped because their response backlog made no write
  /// progress for --write-stall-ms.
  std::atomic<uint64_t> slow_client_disconnects{0};
};

/// \brief One tenant's protocol endpoint: owns the tenant's AnalysisSession
/// and turns complete request lines into NDJSON response bytes. Deliberately
/// transport-free — the epoll server feeds it socket lines, tests feed it
/// strings directly — so every framing/op/quota behavior is unit-testable
/// without a network.
///
/// Threading: not thread-safe; the server serializes requests per
/// connection (one in-flight handler call per tenant), which is also what
/// keeps the underlying single-threaded AnalysisSession sound.
class SessionHandler {
 public:
  /// `options` configures the tenant's session (including its
  /// SessionLimits quotas); `include_fixes` opts finding lines into the
  /// extended diagnosis fields (the CLI's --fixes surface); `gauges`
  /// (optional, not owned) adds the server-wide block to `stats` responses.
  explicit SessionHandler(const SqlCheckOptions& options, bool include_fixes = false,
                          ServerGauges* gauges = nullptr);

  /// Handles one complete request line (no trailing newline required) and
  /// returns the full response: zero or more `finding` / `statement_error`
  /// lines followed by exactly one terminal line, every line LF-terminated.
  /// `deadline_ms` (monotonic milliseconds on the steady clock, 0 = none)
  /// arms the session's cooperative deadline for this request: ingestion
  /// stops between statements once it passes and the terminal line answers
  /// `deadline_exceeded`. No exception escapes — an engine fault degrades to
  /// an `internal_error` terminal line.
  std::string HandleLine(std::string_view line, int64_t deadline_ms = 0);

  /// True once the client sent `{"op": "quit"}` — the transport should
  /// flush pending output and close.
  bool quit() const { return quit_; }

  const AnalysisSession& session() const { return *session_; }
  uint64_t requests() const { return requests_; }
  uint64_t findings_streamed() const { return findings_streamed_; }

 private:
  std::string HandleCheck(const Request& request, int64_t deadline_ms);
  std::string HandleSnapshot(const Request& request);
  std::string HandleReset();
  std::string HandleStats();

  /// `{"op": "finding", "finding": {...}}` — the NDJSON finding unit; the
  /// inner object is exactly FindingToJsonLine's, so server findings are
  /// byte-comparable against a batch SqlCheck::Run() of the same stream.
  std::string FindingLine(const Finding& finding, size_t rank) const;

  SqlCheckOptions options_;
  bool include_fixes_;
  ServerGauges* gauges_;  ///< Not owned; handler bumps deadline gauges.
  std::unique_ptr<AnalysisSession> session_;
  bool quit_ = false;
  uint64_t requests_ = 0;
  uint64_t findings_streamed_ = 0;
  std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
};

}  // namespace server
}  // namespace sqlcheck
