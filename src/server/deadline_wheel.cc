#include "server/deadline_wheel.h"

#include <algorithm>

namespace sqlcheck {
namespace server {

DeadlineWheel::DeadlineWheel(int granularity_ms)
    : granularity_ms_(granularity_ms > 0 ? granularity_ms : 1) {}

void DeadlineWheel::Add(uint64_t conn_id, uint64_t seq, int64_t deadline_ms) {
  const int64_t tick = TickOf(deadline_ms);
  if (!started_) {
    // First entry anchors the cursor one tick behind itself so the entry is
    // in the future from the cursor's point of view.
    cursor_tick_ = tick - 1;
    started_ = true;
  }
  buckets_[static_cast<size_t>(tick) % kBuckets].push_back(
      DeadlineEntry{conn_id, seq, deadline_ms});
  ++size_;
}

void DeadlineWheel::PopDue(int64_t now_ms, std::vector<DeadlineEntry>* due) {
  if (size_ == 0) {
    started_ = false;
    return;
  }
  const int64_t now_tick = TickOf(now_ms);
  if (now_tick <= cursor_tick_) return;
  // One full revolution visits every bucket; crossing more ticks than that
  // cannot expose new entries, so the walk is bounded at kBuckets steps no
  // matter how long the loop slept.
  const int64_t steps =
      std::min<int64_t>(now_tick - cursor_tick_, static_cast<int64_t>(kBuckets));
  for (int64_t s = 1; s <= steps; ++s) {
    const int64_t tick = cursor_tick_ + s;
    std::vector<DeadlineEntry>& bucket = buckets_[static_cast<size_t>(tick) % kBuckets];
    size_t kept = 0;
    for (DeadlineEntry& entry : bucket) {
      if (entry.deadline_ms <= now_ms) {
        due->push_back(entry);
        --size_;
      } else {
        bucket[kept++] = entry;  // wrapped: expires a revolution later
      }
    }
    bucket.resize(kept);
  }
  cursor_tick_ = now_tick;
}

}  // namespace server
}  // namespace sqlcheck
