#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sqlcheck {
namespace server {

LineClient::~LineClient() { Close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Status LineClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Status::Error("socket(): " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::Error("bad host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Error("connect(" + host + ":" + std::to_string(port) +
                                  "): " + std::string(strerror(errno)));
    Close();
    return status;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::Ok();
}

Status LineClient::SendLine(std::string_view line) {
  std::string framed(line);
  if (framed.empty() || framed.back() != '\n') framed.push_back('\n');
  return SendRaw(framed);
}

Status LineClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Error("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Error("send(): " + std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status LineClient::ReadLine(std::string* out) {
  if (fd_ < 0) return Status::Error("not connected");
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Status::Ok();
    }
    char chunk[16 * 1024];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::Error("connection closed by server");
    return Status::Error("recv(): " + std::string(strerror(errno)));
  }
}

void LineClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace server
}  // namespace sqlcheck
