#include "analysis/query_context.h"

#include "common/strings.h"

namespace sqlcheck {

bool QueryFacts::ReferencesTable(std::string_view table) const {
  for (const auto& t : tables) {
    if (EqualsIgnoreCase(t, table)) return true;
  }
  return false;
}

QueryFacts RebaseFacts(const QueryFacts& rep, const sql::Statement& stmt) {
  QueryFacts facts = rep;
  facts.stmt = &stmt;
  facts.raw_sql = stmt.raw_sql;
  return facts;
}

}  // namespace sqlcheck
