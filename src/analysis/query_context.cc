#include "analysis/query_context.h"

#include "common/strings.h"

namespace sqlcheck {

bool QueryFacts::ReferencesTable(std::string_view table) const {
  for (const auto& t : tables) {
    if (EqualsIgnoreCase(t, table)) return true;
  }
  return false;
}

}  // namespace sqlcheck
