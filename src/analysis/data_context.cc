#include "analysis/data_context.h"

#include "common/strings.h"

namespace sqlcheck {

const TableProfile* DataContext::Find(std::string_view table) const {
  auto it = profiles.find(LowerProbe(table).view());
  return it == profiles.end() ? nullptr : &it->second;
}

}  // namespace sqlcheck
