#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/strings.h"
#include "storage/statistics.h"
#include "storage/table.h"

namespace sqlcheck {

/// \brief Profile of one table produced by the data analyzer (§4.2): schema
/// snapshot, column statistics over a sample, and the sampled rows kept for
/// rules that need raw values (e.g. Information Duplication).
struct TableProfile {
  std::string table;
  TableStats stats;
  std::vector<Row> sample;
};

/// \brief All table profiles of the attached database.
struct DataContext {
  // Keyed by lowercased name; Find probes are stack-lowered (LowerProbe).
  std::map<std::string, TableProfile, std::less<>> profiles;

  const TableProfile* Find(std::string_view table) const;
  bool empty() const { return profiles.empty(); }
};

}  // namespace sqlcheck
