#include "analysis/workload_stats.h"

#include <algorithm>

#include "analysis/query_context.h"

namespace sqlcheck {

void WorkloadStats::AddStatementFacts(size_t stmt_index, const QueryFacts& facts) {
  ++statement_count_;
  // Case-folded, deduped table list: ReferencesTable-style membership must
  // credit a statement once per table even if two spellings resolve equal.
  // Interning folds case, so id-dedup is exactly lowercase-dedup.
  std::vector<NameId> tables;
  tables.reserve(facts.tables.size());
  for (const auto& table : facts.tables) {
    NameId id = interner_.Intern(table);
    if (std::find(tables.begin(), tables.end(), id) == tables.end()) {
      tables.push_back(id);
    }
  }
  for (NameId table : tables) by_table_[table].push_back(stmt_index);
  for (const auto& p : facts.predicates) {
    if (p.op != "=" && p.op != "==" && p.op != "IN") continue;
    NameId column = interner_.Intern(p.column);
    if (!p.table.empty()) {
      ++equality_use_[ColumnKey(interner_.Intern(p.table), column)];
    } else {
      // An unqualified predicate counts toward every table the statement
      // references — exactly the statements the per-call scan would have
      // credited when asked about that table.
      for (NameId table : tables) {
        ++equality_use_[ColumnKey(table, column)];
      }
    }
  }
  for (const auto& j : facts.joins) {
    if (j.expression_join) continue;
    NameId left = interner_.Intern(j.left_table);
    NameId right = interner_.Intern(j.right_table);
    ++equality_use_[ColumnKey(left, interner_.Intern(j.left_column))];
    ++equality_use_[ColumnKey(right, interner_.Intern(j.right_column))];
    joined_pairs_.insert(PairKey(left, right));
  }
}

void WorkloadStats::MergeFrom(const WorkloadStats& other, size_t index_offset) {
  statement_count_ += other.statement_count_;
  std::vector<NameId> remap;
  interner_.Merge(other.interner_, &remap);  // remap[kNoName] == kNoName
  for (const auto& [key, count] : other.equality_use_) {
    equality_use_[ColumnKey(remap[key >> 32], remap[key & 0xFFFFFFFFu])] += count;
  }
  for (uint64_t key : other.joined_pairs_) {
    // Remapping can reorder an unordered pair, so re-normalize through
    // PairKey instead of rewriting the halves in place.
    joined_pairs_.insert(PairKey(remap[key >> 32], remap[key & 0xFFFFFFFFu]));
  }
  for (const auto& [table, stmts] : other.by_table_) {
    std::vector<size_t>& dst = by_table_[remap[table]];
    dst.reserve(dst.size() + stmts.size());
    // Existing entries all precede `index_offset` and shard entries ascend,
    // so appending keeps the workload-order invariant.
    for (size_t s : stmts) dst.push_back(s + index_offset);
  }
}

bool WorkloadStats::FindIds(std::string_view a, std::string_view b, NameId* ida,
                            NameId* idb) const {
  // Empty names intern to kNoName, which is a legitimate key component
  // (unresolvable join endpoints); a non-empty name the interner has never
  // seen cannot appear in any aggregate.
  *ida = interner_.Find(a);
  if (*ida == kNoName && !a.empty()) return false;
  *idb = interner_.Find(b);
  if (*idb == kNoName && !b.empty()) return false;
  return true;
}

int WorkloadStats::EqualityUseCount(std::string_view table,
                                    std::string_view column) const {
  NameId table_id = kNoName;
  NameId column_id = kNoName;
  if (!FindIds(table, column, &table_id, &column_id)) return 0;
  auto it = equality_use_.find(ColumnKey(table_id, column_id));
  return it == equality_use_.end() ? 0 : it->second;
}

bool WorkloadStats::TablesJoined(std::string_view left, std::string_view right) const {
  NameId left_id = kNoName;
  NameId right_id = kNoName;
  if (!FindIds(left, right, &left_id, &right_id)) return false;
  return joined_pairs_.count(PairKey(left_id, right_id)) > 0;
}

const std::vector<size_t>* WorkloadStats::StatementsReferencing(
    std::string_view table) const {
  NameId id = interner_.Find(table);
  if (id == kNoName && !table.empty()) return nullptr;
  auto it = by_table_.find(id);
  return it == by_table_.end() ? nullptr : &it->second;
}

}  // namespace sqlcheck
