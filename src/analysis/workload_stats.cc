#include "analysis/workload_stats.h"

#include <algorithm>

#include "analysis/query_context.h"
#include "common/strings.h"

namespace sqlcheck {

namespace {

std::string ColumnKey(std::string_view table, std::string_view column) {
  std::string key = ToLower(table);
  key.push_back('\0');
  key += ToLower(column);
  return key;
}

}  // namespace

std::string WorkloadStats::PairKey(std::string_view a, std::string_view b) {
  std::string left = ToLower(a);
  std::string right = ToLower(b);
  if (right < left) std::swap(left, right);
  left.push_back('\0');
  left += right;
  return left;
}

void WorkloadStats::AddStatementFacts(size_t stmt_index, const QueryFacts& facts) {
  ++statement_count_;
  // Case-folded, deduped table list: ReferencesTable-style membership must
  // credit a statement once per table even if two spellings resolve equal.
  std::vector<std::string> tables;
  tables.reserve(facts.tables.size());
  for (const auto& table : facts.tables) {
    std::string lower = ToLower(table);
    if (std::find(tables.begin(), tables.end(), lower) == tables.end()) {
      tables.push_back(std::move(lower));
    }
  }
  for (const auto& table : tables) by_table_[table].push_back(stmt_index);
  for (const auto& p : facts.predicates) {
    if (p.op != "=" && p.op != "==" && p.op != "IN") continue;
    if (!p.table.empty()) {
      ++equality_use_[ColumnKey(p.table, p.column)];
    } else {
      // An unqualified predicate counts toward every table the statement
      // references — exactly the statements the per-call scan would have
      // credited when asked about that table.
      for (const auto& table : tables) {
        ++equality_use_[ColumnKey(table, p.column)];
      }
    }
  }
  for (const auto& j : facts.joins) {
    if (j.expression_join) continue;
    ++equality_use_[ColumnKey(j.left_table, j.left_column)];
    ++equality_use_[ColumnKey(j.right_table, j.right_column)];
    joined_pairs_.insert(PairKey(j.left_table, j.right_table));
  }
}

int WorkloadStats::EqualityUseCount(std::string_view table,
                                    std::string_view column) const {
  auto it = equality_use_.find(ColumnKey(table, column));
  return it == equality_use_.end() ? 0 : it->second;
}

bool WorkloadStats::TablesJoined(std::string_view left, std::string_view right) const {
  return joined_pairs_.count(PairKey(left, right)) > 0;
}

const std::vector<size_t>* WorkloadStats::StatementsReferencing(
    std::string_view table) const {
  auto it = by_table_.find(ToLower(table));
  return it == by_table_.end() ? nullptr : &it->second;
}

}  // namespace sqlcheck
