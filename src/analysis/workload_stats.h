#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/interner.h"

namespace sqlcheck {

struct QueryFacts;

/// \brief Updatable workload aggregates: per-table/per-column usage counters
/// the inter-query rules consume (promoted out of per-call scans over
/// Context::queries() so a long-lived AnalysisSession can answer them in
/// O(1) as statements stream in).
///
/// Names are interned case-insensitively into the per-instance NameInterner,
/// so the hot lookups are integer-keyed hash probes — no `ToLower`
/// temporaries, no string-concatenated keys. Lookups for names the workload
/// has never mentioned short-circuit without touching the tables.
///
/// The counters reproduce the original scan semantics exactly (they are the
/// same sums, just maintained incrementally), so a Context answering through
/// its stats produces byte-identical reports:
///  - EqualityUseCount(t, c): qualified equality/IN predicates on `t.c`, plus
///    unqualified ones on `c` inside statements referencing `t`, plus every
///    non-expression join edge endpoint on `t.c`.
///  - TablesJoined(l, r): any non-expression join edge between the tables, in
///    either direction.
///  - StatementsReferencing(t): statement indices touching `t`, in workload
///    order.
/// All lookups fold ASCII case, matching EqualsIgnoreCase.
class WorkloadStats {
 public:
  /// Folds one analyzed statement into the aggregates. `stmt_index` must be
  /// the statement's position in the workload; statements must be added in
  /// workload order (indices strictly increasing). Single-threaded (the fold
  /// is the serial phase of a build; parallel shards hand their facts over
  /// rather than touching the interner).
  void AddStatementFacts(size_t stmt_index, const QueryFacts& facts);

  /// Folds a shard's aggregates into this instance: `other`'s names merge
  /// into this interner (NameInterner::Merge) and every id-keyed aggregate is
  /// rewritten through the resulting remap; `other`'s statement indices are
  /// shard-local, so `index_offset` (this instance's statement count when the
  /// shard began) rebases them into workload positions.
  ///
  /// Equivalence contract: merging shards *in workload order* reproduces the
  /// serial fold exactly — the same counters, the same ascending
  /// per-table statement lists, and (because a contiguous shard's
  /// first-intern order is the serial first-intern order restricted to its
  /// statements) the very same NameId assignment. `other` is untouched; its
  /// NameIds remain valid only against its own interner, so no caller may
  /// hold a shard NameId across a merge.
  void MergeFrom(const WorkloadStats& other, size_t index_offset);

  /// How many equality predicates/join edges across the workload touch
  /// `table.column`.
  int EqualityUseCount(std::string_view table, std::string_view column) const;

  /// True if any statement joins `left` and `right` on any columns.
  bool TablesJoined(std::string_view left, std::string_view right) const;

  /// Indices of statements referencing `table` in workload order, or nullptr
  /// when none do.
  const std::vector<size_t>* StatementsReferencing(std::string_view table) const;

  /// Number of statements folded in so far.
  size_t statement_count() const { return statement_count_; }

  /// The name table backing the aggregates (tables/columns seen so far).
  const NameInterner& names() const { return interner_; }

 private:
  static uint64_t PairKey(NameId a, NameId b) {
    // Unordered pair: smaller id first, so (l, r) and (r, l) collide.
    NameId lo = a < b ? a : b;
    NameId hi = a < b ? b : a;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }
  static uint64_t ColumnKey(NameId table, NameId column) {
    return (static_cast<uint64_t>(table) << 32) | column;
  }

  /// Looks both names up without interning; false when either non-empty name
  /// was never seen (no aggregate can involve it).
  bool FindIds(std::string_view a, std::string_view b, NameId* ida, NameId* idb) const;

  size_t statement_count_ = 0;
  NameInterner interner_;
  /// (table id, column id) -> use count.
  std::unordered_map<uint64_t, int> equality_use_;
  /// Unordered table-id pairs with at least one join edge.
  std::unordered_set<uint64_t> joined_pairs_;
  /// table id -> referencing statement indices (ascending).
  std::unordered_map<NameId, std::vector<size_t>> by_table_;
};

}  // namespace sqlcheck
