#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace sqlcheck {

struct QueryFacts;

/// \brief Updatable workload aggregates: per-table/per-column usage counters
/// the inter-query rules consume (promoted out of per-call scans over
/// Context::queries() so a long-lived AnalysisSession can answer them in
/// O(1) as statements stream in).
///
/// The counters reproduce the original scan semantics exactly (they are the
/// same sums, just maintained incrementally), so a Context answering through
/// its stats produces byte-identical reports:
///  - EqualityUseCount(t, c): qualified equality/IN predicates on `t.c`, plus
///    unqualified ones on `c` inside statements referencing `t`, plus every
///    non-expression join edge endpoint on `t.c`.
///  - TablesJoined(l, r): any non-expression join edge between the tables, in
///    either direction.
///  - StatementsReferencing(t): statement indices touching `t`, in workload
///    order.
/// All lookups fold ASCII case, matching EqualsIgnoreCase.
class WorkloadStats {
 public:
  /// Folds one analyzed statement into the aggregates. `stmt_index` must be
  /// the statement's position in the workload; statements must be added in
  /// workload order (indices strictly increasing).
  void AddStatementFacts(size_t stmt_index, const QueryFacts& facts);

  /// How many equality predicates/join edges across the workload touch
  /// `table.column`.
  int EqualityUseCount(std::string_view table, std::string_view column) const;

  /// True if any statement joins `left` and `right` on any columns.
  bool TablesJoined(std::string_view left, std::string_view right) const;

  /// Indices of statements referencing `table` in workload order, or nullptr
  /// when none do.
  const std::vector<size_t>* StatementsReferencing(std::string_view table) const;

  /// Number of statements folded in so far.
  size_t statement_count() const { return statement_count_; }

 private:
  static std::string PairKey(std::string_view a, std::string_view b);

  size_t statement_count_ = 0;
  /// lowercase "table\0column" -> use count.
  std::unordered_map<std::string, int> equality_use_;
  /// Unordered lowercase "min\0max" table pairs with at least one join edge.
  std::unordered_set<std::string> joined_pairs_;
  /// lowercase table -> referencing statement indices (ascending).
  std::unordered_map<std::string, std::vector<size_t>> by_table_;
};

}  // namespace sqlcheck
