#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sql/ast.h"

namespace sqlcheck {

// Facts borrow: every string_view below points into the analyzed statement's
// AST (or static storage), so facts are zero-copy to build and to rebase.
// The Context owns both the statements and the facts, which pins the
// lifetimes together; facts must not outlive their statement.

/// \brief One column-vs-literal predicate found in a WHERE clause.
struct PredicateUse {
  std::string_view table;    ///< Resolved table name ("" when unresolvable).
  std::string_view column;
  std::string_view op;       ///< "=", "<", "LIKE", "REGEXP", "IN", "BETWEEN", ...
  std::string_view literal;  ///< Display form of the literal side ("" if non-literal).
};

/// \brief One LIKE/REGEXP usage.
struct PatternUse {
  std::string_view table;
  std::string_view column;
  std::string_view op;       ///< LIKE / ILIKE / REGEXP / SIMILAR TO / ~ ...
  std::string_view pattern;  ///< Literal pattern text ("" when computed).
  bool leading_wildcard = false;  ///< '%...' / '.*...' — index-hostile.
  bool computed_pattern = false;  ///< Pattern built from expressions (e.g. ||).
  bool word_boundary = false;     ///< Uses [[:<:]] / [[:>:]] markers.
};

/// \brief One equality join edge `left_table.left_column = right_table.right_column`.
struct JoinEdge {
  std::string_view left_table;
  std::string_view left_column;
  std::string_view right_table;
  std::string_view right_column;
  bool expression_join = false;  ///< ON was not a plain equality.
};

/// \brief Facts extracted from a single statement by the query analyzer
/// (§4.1). Rules consume these instead of re-walking the AST.
struct QueryFacts {
  const sql::Statement* stmt = nullptr;  ///< Non-owning; Context keeps it alive.
  sql::StatementKind kind = sql::StatementKind::kUnknown;
  std::string_view raw_sql;  ///< View of stmt->raw_sql.

  std::vector<std::string_view> tables;  ///< Referenced table names (resolved, deduped).

  // SELECT shape.
  bool selects_wildcard = false;
  bool distinct = false;
  int join_count = 0;
  bool has_where = false;
  bool order_by_rand = false;
  std::vector<std::string> group_by_columns;      ///< "table.column" or "column" (owned).
  std::vector<PredicateUse> predicates;
  std::vector<PatternUse> patterns;
  std::vector<JoinEdge> joins;
  std::vector<std::string> concat_columns;        ///< Columns used under || / CONCAT.

  // INSERT shape.
  bool insert_without_columns = false;
  std::vector<std::string_view> insert_columns;

  // UPDATE/DELETE shape.
  std::vector<std::string_view> updated_columns;

  bool ReferencesTable(std::string_view table) const;
};

/// \brief Copies a fingerprint-group representative's facts onto another
/// occurrence of the same canonical statement: identical analysis results,
/// rebased onto the occurrence's own raw text and parse tree. Shared by the
/// batch context build and the incremental session so the two cannot drift.
QueryFacts RebaseFacts(const QueryFacts& rep, const sql::Statement& stmt);

}  // namespace sqlcheck
