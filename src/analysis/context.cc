#include "analysis/context.h"

#include <numeric>
#include <string_view>
#include <unordered_map>

#include "analysis/query_analyzer.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "sql/fingerprint.h"
#include "sql/parser.h"

namespace sqlcheck {

std::vector<const QueryFacts*> Context::QueriesReferencing(std::string_view table) const {
  std::vector<const QueryFacts*> out;
  if (stats_.statement_count() == query_facts_.size()) {
    const std::vector<size_t>* refs = stats_.StatementsReferencing(table);
    if (refs != nullptr) {
      out.reserve(refs->size());
      for (size_t i : *refs) out.push_back(&query_facts_[i]);
    }
    return out;
  }
  // Fallback scan for contexts whose aggregates were never populated.
  for (const auto& facts : query_facts_) {
    if (facts.ReferencesTable(table)) out.push_back(&facts);
  }
  return out;
}

int Context::EqualityUseCount(std::string_view table, std::string_view column) const {
  if (stats_.statement_count() == query_facts_.size()) {
    return stats_.EqualityUseCount(table, column);
  }
  int count = 0;
  for (const auto& facts : query_facts_) {
    for (const auto& p : facts.predicates) {
      if ((p.op == "=" || p.op == "==" || p.op == "IN") &&
          EqualsIgnoreCase(p.column, column) &&
          (p.table.empty() || EqualsIgnoreCase(p.table, table))) {
        // Unqualified predicates only count when the query touches the table.
        if (!p.table.empty() || facts.ReferencesTable(table)) ++count;
      }
    }
    for (const auto& j : facts.joins) {
      if (j.expression_join) continue;
      if (EqualsIgnoreCase(j.left_table, table) && EqualsIgnoreCase(j.left_column, column)) {
        ++count;
      }
      if (EqualsIgnoreCase(j.right_table, table) &&
          EqualsIgnoreCase(j.right_column, column)) {
        ++count;
      }
    }
  }
  return count;
}

bool Context::TablesJoined(std::string_view left, std::string_view right) const {
  if (stats_.statement_count() == query_facts_.size()) {
    return stats_.TablesJoined(left, right);
  }
  for (const auto& facts : query_facts_) {
    for (const auto& j : facts.joins) {
      if (j.expression_join) continue;
      bool forward = EqualsIgnoreCase(j.left_table, left) &&
                     EqualsIgnoreCase(j.right_table, right);
      bool backward = EqualsIgnoreCase(j.left_table, right) &&
                      EqualsIgnoreCase(j.right_table, left);
      if (forward || backward) return true;
    }
  }
  return false;
}

bool Context::ForeignKeyExists(std::string_view left, std::string_view right) const {
  auto has_fk = [&](std::string_view from, std::string_view to) {
    const TableSchema* schema = catalog_.FindTable(from);
    if (schema == nullptr) return false;
    for (const auto& fk : schema->foreign_keys) {
      if (EqualsIgnoreCase(fk.ref_table, to)) return true;
    }
    return false;
  };
  return has_fk(left, right) || has_fk(right, left);
}

bool Context::ColumnNullable(std::string_view table, std::string_view column) const {
  const TableSchema* schema = catalog_.FindTable(table);
  if (schema == nullptr) return true;
  const ColumnSchema* col = schema->FindColumn(column);
  if (col == nullptr) return true;
  return !col->not_null;
}

void ContextBuilder::AddQuery(std::string_view sql_text) {
  statements_.push_back(sql::ParseStatement(sql_text, arena_.get(), &buffer_));
}

void ContextBuilder::AddScript(std::string_view script) {
  for (auto& stmt : sql::ParseScript(script, arena_.get(), &buffer_)) {
    statements_.push_back(std::move(stmt));
  }
}

void ContextBuilder::AddStatement(sql::StatementPtr stmt) {
  statements_.push_back(std::move(stmt));
}

void ContextBuilder::AttachDatabase(const Database* db, DataAnalyzerOptions options) {
  database_ = db;
  data_options_ = options;
}

Context ContextBuilder::Build(int parallelism, ThreadPool* pool, bool dedup_queries) {
  Context context;
  // The accumulated statements live in the builder's arena; hand it over
  // (and start a fresh one so the builder stays usable).
  context.arena_ = std::move(arena_);
  arena_ = std::make_unique<Arena>();
  context.database_ = database_;

  // Catalog baseline: live database schema when available...
  if (database_ != nullptr) {
    context.catalog_ = database_->BuildCatalog();
    context.data_ = AnalyzeDatabase(*database_, data_options_);
  }
  // ...augmented (or fully constructed) from workload DDL.
  for (const auto& stmt : statements_) {
    context.catalog_.ApplyDdl(*stmt);  // ignores DML; duplicate DDL is a no-op error
  }

  context.statements_ = std::move(statements_);
  const size_t n = context.statements_.size();
  context.query_facts_.resize(n);
  int threads = ThreadPool::ResolveParallelism(parallelism);

  QueryGroups& groups = context.query_groups_;
  groups.representative.resize(n);
  if (dedup_queries) {
    // Group statements whose exact-canonical form matches: they are
    // guaranteed to analyze identically except for raw_sql/stmt. Grouping is
    // keyed by the canonical string itself, so a 64-bit fingerprint
    // collision can never merge distinct statements.
    //
    // Level 1: group byte-identical statements first — real query logs
    // re-issue the same parameterized text verbatim, so this cheap hash pass
    // shrinks the input before any canonicalization runs.
    std::vector<size_t> raw_rep(n);
    std::vector<size_t> raw_unique;
    {
      std::unordered_map<std::string_view, size_t> first_raw;
      first_raw.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        auto [it, inserted] = first_raw.try_emplace(context.statements_[i]->raw_sql, i);
        raw_rep[i] = it->second;
        if (inserted) raw_unique.push_back(i);
      }
    }
    // Level 2: canonicalize each distinct spelling (sharded — the scan is
    // independent per statement) and merge spellings that canonicalize
    // equal (whitespace / comment / keyword-case variants).
    std::vector<std::string> keys(n);
    groups.fingerprints.resize(n);
    ParallelShards(
        raw_unique.size(), threads,
        [&context, &keys, &groups, &raw_unique](int /*shard*/, size_t begin, size_t end) {
          for (size_t u = begin; u < end; ++u) {
            size_t i = raw_unique[u];
            keys[i] = sql::CanonicalizeSql(context.statements_[i]->raw_sql,
                                           sql::FingerprintOptions::Exact());
            groups.fingerprints[i] = sql::FingerprintCanonical(keys[i]);
          }
        },
        pool);
    std::vector<size_t> canon_rep(n);
    {
      std::unordered_map<std::string_view, size_t> first_canon;
      first_canon.reserve(raw_unique.size());
      for (size_t r : raw_unique) {
        auto [it, inserted] = first_canon.try_emplace(keys[r], r);
        canon_rep[r] = it->second;
        if (inserted) groups.unique.push_back(r);
      }
    }
    // A statement's representative is the first statement overall with the
    // same canonical form (the first spelling of a canonical group is also
    // the first occurrence of its own bytes, so composing the two levels
    // preserves "first occurrence").
    for (size_t i = 0; i < n; ++i) {
      groups.representative[i] = canon_rep[raw_rep[i]];
      groups.fingerprints[i] = groups.fingerprints[raw_rep[i]];
    }
  } else {
    std::iota(groups.representative.begin(), groups.representative.end(), size_t{0});
    groups.unique = groups.representative;
  }

  // Analysis is independent per unique statement; shard it and write each
  // group's facts into the representative's slot so the build order never
  // shows.
  ParallelShards(
      groups.unique.size(), threads,
      [&context, &groups](int /*shard*/, size_t begin, size_t end) {
        for (size_t u = begin; u < end; ++u) {
          size_t i = groups.unique[u];
          context.query_facts_[i] = AnalyzeQuery(*context.statements_[i]);
        }
      },
      pool);

  // Duplicates get a copy of their group's facts rebased onto their own raw
  // text and parse tree — exactly what a fresh analysis would produce. The
  // copies only read representative slots (already final) and write
  // non-representative slots, so they shard race-free.
  ParallelShards(
      n, threads,
      [&context, &groups](int /*shard*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          size_t rep = groups.representative[i];
          if (rep == i) continue;
          context.query_facts_[i] =
              RebaseFacts(context.query_facts_[rep], *context.statements_[i]);
        }
      },
      pool);

  // Fold every statement into the workload aggregates (workload order); the
  // queryable interface answers from these instead of re-scanning the facts.
  for (size_t i = 0; i < n; ++i) {
    context.stats_.AddStatementFacts(i, context.query_facts_[i]);
  }
  return context;
}

}  // namespace sqlcheck
