#include "analysis/context.h"

#include "analysis/query_analyzer.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "sql/parser.h"

namespace sqlcheck {

std::vector<const QueryFacts*> Context::QueriesReferencing(std::string_view table) const {
  std::vector<const QueryFacts*> out;
  for (const auto& facts : query_facts_) {
    if (facts.ReferencesTable(table)) out.push_back(&facts);
  }
  return out;
}

int Context::EqualityUseCount(std::string_view table, std::string_view column) const {
  int count = 0;
  for (const auto& facts : query_facts_) {
    for (const auto& p : facts.predicates) {
      if ((p.op == "=" || p.op == "==" || p.op == "IN") &&
          EqualsIgnoreCase(p.column, column) &&
          (p.table.empty() || EqualsIgnoreCase(p.table, table))) {
        // Unqualified predicates only count when the query touches the table.
        if (!p.table.empty() || facts.ReferencesTable(table)) ++count;
      }
    }
    for (const auto& j : facts.joins) {
      if (j.expression_join) continue;
      if (EqualsIgnoreCase(j.left_table, table) && EqualsIgnoreCase(j.left_column, column)) {
        ++count;
      }
      if (EqualsIgnoreCase(j.right_table, table) &&
          EqualsIgnoreCase(j.right_column, column)) {
        ++count;
      }
    }
  }
  return count;
}

bool Context::TablesJoined(std::string_view left, std::string_view right) const {
  for (const auto& facts : query_facts_) {
    for (const auto& j : facts.joins) {
      if (j.expression_join) continue;
      bool forward = EqualsIgnoreCase(j.left_table, left) &&
                     EqualsIgnoreCase(j.right_table, right);
      bool backward = EqualsIgnoreCase(j.left_table, right) &&
                      EqualsIgnoreCase(j.right_table, left);
      if (forward || backward) return true;
    }
  }
  return false;
}

bool Context::ForeignKeyExists(std::string_view left, std::string_view right) const {
  auto has_fk = [&](std::string_view from, std::string_view to) {
    const TableSchema* schema = catalog_.FindTable(from);
    if (schema == nullptr) return false;
    for (const auto& fk : schema->foreign_keys) {
      if (EqualsIgnoreCase(fk.ref_table, to)) return true;
    }
    return false;
  };
  return has_fk(left, right) || has_fk(right, left);
}

bool Context::ColumnNullable(std::string_view table, std::string_view column) const {
  const TableSchema* schema = catalog_.FindTable(table);
  if (schema == nullptr) return true;
  const ColumnSchema* col = schema->FindColumn(column);
  if (col == nullptr) return true;
  return !col->not_null;
}

void ContextBuilder::AddQuery(std::string_view sql_text) {
  statements_.push_back(sql::ParseStatement(sql_text));
}

void ContextBuilder::AddScript(std::string_view script) {
  for (auto& stmt : sql::ParseScript(script)) {
    statements_.push_back(std::move(stmt));
  }
}

void ContextBuilder::AddStatement(sql::StatementPtr stmt) {
  statements_.push_back(std::move(stmt));
}

void ContextBuilder::AttachDatabase(const Database* db, DataAnalyzerOptions options) {
  database_ = db;
  data_options_ = options;
}

Context ContextBuilder::Build(int parallelism, ThreadPool* pool) {
  Context context;
  context.database_ = database_;

  // Catalog baseline: live database schema when available...
  if (database_ != nullptr) {
    context.catalog_ = database_->BuildCatalog();
    context.data_ = AnalyzeDatabase(*database_, data_options_);
  }
  // ...augmented (or fully constructed) from workload DDL.
  for (const auto& stmt : statements_) {
    context.catalog_.ApplyDdl(*stmt);  // ignores DML; duplicate DDL is a no-op error
  }

  // Per-statement analysis is independent; shard it and write each
  // statement's facts into its original slot so the build order never shows.
  context.statements_ = std::move(statements_);
  context.query_facts_.resize(context.statements_.size());
  ParallelShards(
      context.statements_.size(), ThreadPool::ResolveParallelism(parallelism),
      [&context](int /*shard*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          context.query_facts_[i] = AnalyzeQuery(*context.statements_[i]);
        }
      },
      pool);
  return context;
}

}  // namespace sqlcheck
