#include "analysis/data_analyzer.h"

#include "common/strings.h"
#include "storage/sampler.h"

namespace sqlcheck {

DataContext AnalyzeDatabase(const Database& db, const DataAnalyzerOptions& options) {
  DataContext context;
  for (const Table* table : db.Tables()) {
    TableProfile profile;
    profile.table = table->schema().name;
    profile.stats = ComputeTableStats(*table, options.sample_limit, options.seed);
    size_t sample_limit =
        options.sample_limit == 0 ? table->live_row_count() : options.sample_limit;
    profile.sample = SampleRows(*table, sample_limit, options.seed);
    context.profiles.emplace(ToLower(profile.table), std::move(profile));
  }
  return context;
}

}  // namespace sqlcheck
