#pragma once

#include "analysis/query_context.h"
#include "sql/ast.h"

namespace sqlcheck {

/// \brief Extracts QueryFacts from one parsed statement (Algorithm 1's
/// Query-Analyser step). Alias resolution is local to the statement: facts
/// report real table names wherever they can be resolved.
QueryFacts AnalyzeQuery(const sql::Statement& stmt);

}  // namespace sqlcheck
