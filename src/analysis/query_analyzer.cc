#include "analysis/query_analyzer.h"

#include <string_view>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "engine/like.h"
#include "sql/printer.h"

namespace sqlcheck {

namespace {

/// Alias -> table bindings for one statement: a flat map with inline
/// case-insensitive probing. Statements bind a handful of sources, so a
/// linear scan beats the old `std::map<std::string, std::string>` — no
/// per-binding `ToLower` temporaries, no per-lookup allocation, no tree
/// nodes. Views borrow from the statement's AST, which outlives the map.
class AliasMap {
 public:
  /// Binds `key` -> `table`, overwriting a case-insensitively equal key
  /// (matching the old map's last-writer-wins insert semantics).
  void Bind(std::string_view key, std::string_view table) {
    for (auto& e : entries_) {
      if (EqualsIgnoreCase(e.first, key)) {
        e.second = table;
        return;
      }
    }
    entries_.emplace_back(key, table);
  }

  /// Binds a FROM/JOIN source: its effective name (alias if present) and —
  /// only when it actually differs — its real name. The old implementation
  /// inserted both unconditionally, wasting an insert per unaliased source.
  void AddBinding(const sql::TableRef& ref) {
    if (ref.name.empty()) return;
    Bind(ref.EffectiveName(), ref.name);
    if (!EqualsIgnoreCase(ref.EffectiveName(), ref.name)) Bind(ref.name, ref.name);
  }

  /// The bound table for `qualifier`, or an empty view when unbound.
  std::string_view Resolve(std::string_view qualifier) const {
    for (const auto& e : entries_) {
      if (EqualsIgnoreCase(e.first, qualifier)) return e.second;
    }
    return {};
  }

 private:
  std::vector<std::pair<std::string_view, std::string_view>> entries_;
};

/// Resolves a column ref's qualifier through the alias map. Falls back to the
/// sole bound table for unqualified refs in single-table statements.
std::string_view ResolveTable(const AliasMap& aliases, const sql::Expr& column_ref,
                              std::string_view sole_table) {
  std::string_view qualifier = column_ref.TableQualifier();
  if (!qualifier.empty()) {
    std::string_view resolved = aliases.Resolve(qualifier);
    return resolved.empty() ? qualifier : resolved;
  }
  return sole_table;
}

bool IsLiteralExpr(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kNullLiteral || e.kind == sql::ExprKind::kBoolLiteral ||
         e.kind == sql::ExprKind::kNumberLiteral || e.kind == sql::ExprKind::kStringLiteral ||
         e.kind == sql::ExprKind::kParam;
}

std::string_view LiteralDisplay(const sql::Expr& e) {
  switch (e.kind) {
    case sql::ExprKind::kNullLiteral: return "NULL";
    case sql::ExprKind::kBoolLiteral: return e.text;
    case sql::ExprKind::kNumberLiteral: return e.text;
    case sql::ExprKind::kStringLiteral: return e.text;
    case sql::ExprKind::kParam: return e.text;
    default: return "";
  }
}

class FactCollector {
 public:
  FactCollector(QueryFacts* facts, const AliasMap& aliases, std::string_view sole_table)
      : facts_(facts), aliases_(aliases), sole_table_(sole_table) {}

  /// Walks a predicate expression (WHERE/ON/HAVING) collecting predicate,
  /// pattern, and concat usages.
  void CollectPredicates(const sql::Expr& e) {
    using sql::ExprKind;
    switch (e.kind) {
      case ExprKind::kBinary: {
        std::string_view op = e.text;
        if (op == "AND" || op == "OR") {
          CollectPredicates(*e.children[0]);
          CollectPredicates(*e.children[1]);
          return;
        }
        if (op == "||") {
          CollectConcat(e);
          return;
        }
        if (op == "~" || op == "~*" || op == "!~" || op == "!~*") {
          RecordPattern(e, "REGEXP");
          return;
        }
        // Comparison between a column and a literal.
        const sql::Expr& lhs = *e.children[0];
        const sql::Expr& rhs = *e.children[1];
        if (lhs.kind == ExprKind::kColumnRef && IsLiteralExpr(rhs)) {
          RecordPredicate(lhs, op, LiteralDisplay(rhs));
        } else if (rhs.kind == ExprKind::kColumnRef && IsLiteralExpr(lhs)) {
          RecordPredicate(rhs, op, LiteralDisplay(lhs));
        } else {
          CollectPredicates(lhs);
          CollectPredicates(rhs);
        }
        return;
      }
      case ExprKind::kLike:
        // kLike nodes carry their operator pre-uppercased by the parser.
        RecordPattern(e, e.text);
        return;
      case ExprKind::kIn:
        if (!e.children.empty() && e.children[0]->kind == ExprKind::kColumnRef) {
          RecordPredicate(*e.children[0], "IN", "");
        }
        return;
      case ExprKind::kBetween:
        if (!e.children.empty() && e.children[0]->kind == ExprKind::kColumnRef) {
          RecordPredicate(*e.children[0], "BETWEEN", "");
        }
        return;
      case ExprKind::kIsNull:
        if (!e.children.empty() && e.children[0]->kind == ExprKind::kColumnRef) {
          RecordPredicate(*e.children[0], e.negated ? "IS NOT NULL" : "IS NULL", "");
        }
        return;
      case ExprKind::kUnary:
        if (!e.children.empty()) CollectPredicates(*e.children[0]);
        return;
      case ExprKind::kFunction:
        if (EqualsIgnoreCase(e.text, "concat")) {
          CollectConcat(e);
          return;
        }
        for (const auto& c : e.children) CollectPredicates(*c);
        return;
      default:
        for (const auto& c : e.children) CollectPredicates(*c);
        return;
    }
  }

  /// Records columns appearing under a concatenation (`a || b`, CONCAT(..)).
  /// Columns inside a NULL-defaulting wrapper (COALESCE/IFNULL/NVL) are
  /// skipped: the wrapper already supplies a fallback, so they cannot void
  /// the concatenation — and the COALESCE rewrite the fix engine emits must
  /// re-analyze clean.
  void CollectConcat(const sql::Expr& e) {
    if (IsNullDefaulted(e)) return;
    if (e.kind == sql::ExprKind::kColumnRef) {
      std::string_view table = ResolveTable(aliases_, e, sole_table_);
      std::string qualified;
      if (table.empty()) {
        qualified = e.ColumnName();
      } else {
        qualified = table;
        qualified += '.';
        qualified += e.ColumnName();
      }
      facts_->concat_columns.push_back(std::move(qualified));
    }
    for (const auto& child : e.children) CollectConcat(*child);
  }

  static bool IsNullDefaulted(const sql::Expr& e) {
    return e.kind == sql::ExprKind::kFunction &&
           (EqualsIgnoreCase(e.text, "coalesce") || EqualsIgnoreCase(e.text, "ifnull") ||
            EqualsIgnoreCase(e.text, "nvl"));
  }

  /// Scans any expression for embedded concat/pattern usages (select lists).
  void ScanExpression(const sql::Expr& e) {
    sql::VisitExpr(e, false, [&](const sql::Expr& node) {
      if (node.kind == sql::ExprKind::kBinary && node.text == "||") CollectConcat(node);
      if (node.kind == sql::ExprKind::kFunction && EqualsIgnoreCase(node.text, "concat")) {
        CollectConcat(node);
      }
      if (node.kind == sql::ExprKind::kLike) RecordPattern(node, node.text);
    });
  }

  void RecordJoinOn(const sql::Expr& on) {
    // Equality edges become JoinEdge records; anything else marks an
    // expression join and is also predicate-scanned.
    std::vector<const sql::Expr*> conjuncts;
    CollectConjunctsLocal(on, &conjuncts);
    for (const sql::Expr* conj : conjuncts) {
      if (conj->kind == sql::ExprKind::kBinary &&
          (conj->text == "=" || conj->text == "==") &&
          conj->children[0]->kind == sql::ExprKind::kColumnRef &&
          conj->children[1]->kind == sql::ExprKind::kColumnRef) {
        JoinEdge edge;
        edge.left_table = ResolveTable(aliases_, *conj->children[0], "");
        edge.left_column = conj->children[0]->ColumnName();
        edge.right_table = ResolveTable(aliases_, *conj->children[1], "");
        edge.right_column = conj->children[1]->ColumnName();
        facts_->joins.push_back(std::move(edge));
      } else {
        JoinEdge edge;
        edge.expression_join = true;
        facts_->joins.push_back(std::move(edge));
        CollectPredicates(*conj);
      }
    }
  }

 private:
  static void CollectConjunctsLocal(const sql::Expr& e,
                                    std::vector<const sql::Expr*>* out) {
    if (e.kind == sql::ExprKind::kBinary && e.text == "AND") {
      CollectConjunctsLocal(*e.children[0], out);
      CollectConjunctsLocal(*e.children[1], out);
    } else {
      out->push_back(&e);
    }
  }

  void RecordPredicate(const sql::Expr& column_ref, std::string_view op,
                       std::string_view literal) {
    PredicateUse use;
    use.table = ResolveTable(aliases_, column_ref, sole_table_);
    use.column = column_ref.ColumnName();
    use.op = op;
    use.literal = literal;
    facts_->predicates.push_back(std::move(use));
  }

  void RecordPattern(const sql::Expr& e, std::string_view op) {
    PatternUse use;
    use.op = op;
    if (!e.children.empty() && e.children[0]->kind == sql::ExprKind::kColumnRef) {
      use.table = ResolveTable(aliases_, *e.children[0], sole_table_);
      use.column = e.children[0]->ColumnName();
    }
    if (e.children.size() > 1) {
      const sql::Expr& pattern = *e.children[1];
      if (pattern.kind == sql::ExprKind::kStringLiteral) {
        use.pattern = pattern.text;
        use.leading_wildcard = !pattern.text.empty() &&
                               (pattern.text[0] == '%' || pattern.text[0] == '_' ||
                                pattern.text.rfind(".*", 0) == 0);
        use.word_boundary = HasWordBoundaryMarkers(pattern.text);
      } else {
        use.computed_pattern = true;
        // A computed pattern may still carry boundary-marker literals.
        sql::VisitExpr(pattern, false, [&](const sql::Expr& node) {
          if (node.kind == sql::ExprKind::kStringLiteral &&
              HasWordBoundaryMarkers(node.text)) {
            use.word_boundary = true;
          }
        });
      }
    }
    facts_->patterns.push_back(std::move(use));
  }

  QueryFacts* facts_;
  const AliasMap& aliases_;
  std::string_view sole_table_;
};

void AnalyzeSelect(const sql::SelectStatement& s, QueryFacts* facts) {
  AliasMap aliases;
  for (const auto& f : s.from) aliases.AddBinding(f);
  for (const auto& j : s.joins) aliases.AddBinding(j.table);

  std::string_view sole_table;
  if (s.from.size() == 1 && s.joins.empty() && !s.from[0].name.empty()) {
    sole_table = s.from[0].name;
  }
  FactCollector collector(facts, aliases, sole_table);

  facts->distinct = s.distinct;
  facts->join_count = s.JoinCount();
  facts->has_where = s.where != nullptr;
  std::vector<std::string_view> referenced;
  s.CollectReferencedTables(&referenced);
  for (std::string_view t : referenced) {
    bool seen = false;
    for (std::string_view existing : facts->tables) {
      if (EqualsIgnoreCase(existing, t)) seen = true;
    }
    if (!seen) facts->tables.push_back(t);
  }

  for (const auto& item : s.items) {
    if (item.expr->kind == sql::ExprKind::kStar) {
      facts->selects_wildcard = true;
    } else {
      collector.ScanExpression(*item.expr);
    }
  }
  for (const auto& j : s.joins) {
    if (j.on) collector.RecordJoinOn(*j.on);
    for (const auto& col : j.using_columns) {
      JoinEdge edge;
      if (!s.from.empty()) edge.left_table = s.from[0].name;
      edge.left_column = col;
      edge.right_table = j.table.name;
      edge.right_column = col;
      facts->joins.push_back(std::move(edge));
    }
  }
  if (s.where) collector.CollectPredicates(*s.where);
  if (s.having) collector.CollectPredicates(*s.having);
  for (const auto& g : s.group_by) {
    if (g->kind == sql::ExprKind::kColumnRef) {
      std::string_view table = g->TableQualifier();
      std::string_view resolved = aliases.Resolve(table);
      if (resolved.empty()) resolved = table;
      if (resolved.empty()) resolved = sole_table;
      std::string qualified;
      if (resolved.empty()) {
        qualified = g->ColumnName();
      } else {
        qualified = resolved;
        qualified += '.';
        qualified += g->ColumnName();
      }
      facts->group_by_columns.push_back(std::move(qualified));
    }
  }
  for (const auto& ob : s.order_by) {
    if (ob.expr->kind == sql::ExprKind::kFunction &&
        (EqualsIgnoreCase(ob.expr->text, "rand") ||
         EqualsIgnoreCase(ob.expr->text, "random"))) {
      facts->order_by_rand = true;
    }
    collector.ScanExpression(*ob.expr);
  }

  // Nested subqueries contribute facts too (joins/predicates seen anywhere).
  auto scan_subqueries = [&](const sql::SelectStatement& inner) {
    QueryFacts inner_facts;
    AnalyzeSelect(inner, &inner_facts);
    for (std::string_view t : inner_facts.tables) {
      if (!facts->ReferencesTable(t)) facts->tables.push_back(t);
    }
    for (auto& p : inner_facts.predicates) facts->predicates.push_back(std::move(p));
    for (auto& p : inner_facts.patterns) facts->patterns.push_back(std::move(p));
    for (auto& j : inner_facts.joins) facts->joins.push_back(std::move(j));
    facts->join_count += inner_facts.join_count;
    if (inner_facts.order_by_rand) facts->order_by_rand = true;
  };
  for (const auto& f : s.from) {
    if (f.subquery) scan_subqueries(*f.subquery);
  }
  auto visit_expr_subqueries = [&](const sql::Expr& root) {
    sql::VisitExpr(root, false, [&](const sql::Expr& node) {
      if (node.subquery) scan_subqueries(*node.subquery);
    });
  };
  if (s.where) visit_expr_subqueries(*s.where);
  for (const auto& item : s.items) {
    if (item.expr->kind != sql::ExprKind::kStar) visit_expr_subqueries(*item.expr);
  }
}

}  // namespace

QueryFacts AnalyzeQuery(const sql::Statement& stmt) {
  QueryFacts facts;
  facts.stmt = &stmt;
  facts.kind = stmt.kind;
  facts.raw_sql = stmt.raw_sql;

  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      AnalyzeSelect(static_cast<const sql::SelectStatement&>(stmt), &facts);
      break;
    case sql::StatementKind::kInsert: {
      const auto& s = static_cast<const sql::InsertStatement&>(stmt);
      facts.tables.emplace_back(s.table);
      facts.insert_without_columns = s.columns.empty();
      facts.insert_columns.reserve(s.columns.size());
      for (const auto& c : s.columns) facts.insert_columns.push_back(c);
      if (s.select) {
        QueryFacts inner;
        AnalyzeSelect(*s.select, &inner);
        for (std::string_view t : inner.tables) {
          if (!facts.ReferencesTable(t)) facts.tables.push_back(t);
        }
        facts.selects_wildcard = inner.selects_wildcard;
      }
      break;
    }
    case sql::StatementKind::kUpdate: {
      const auto& s = static_cast<const sql::UpdateStatement&>(stmt);
      facts.tables.emplace_back(s.table);
      facts.has_where = s.where != nullptr;
      AliasMap aliases;
      aliases.Bind(s.alias.empty() ? std::string_view(s.table) : std::string_view(s.alias),
                   s.table);
      aliases.Bind(s.table, s.table);
      FactCollector collector(&facts, aliases, s.table);
      for (const auto& [col, expr] : s.assignments) {
        facts.updated_columns.emplace_back(col);
        collector.ScanExpression(*expr);
      }
      if (s.where) collector.CollectPredicates(*s.where);
      break;
    }
    case sql::StatementKind::kDelete: {
      const auto& s = static_cast<const sql::DeleteStatement&>(stmt);
      facts.tables.emplace_back(s.table);
      facts.has_where = s.where != nullptr;
      AliasMap aliases;
      aliases.Bind(s.table, s.table);
      FactCollector collector(&facts, aliases, s.table);
      if (s.where) collector.CollectPredicates(*s.where);
      break;
    }
    case sql::StatementKind::kCreateTable:
      facts.tables.emplace_back(static_cast<const sql::CreateTableStatement&>(stmt).table);
      break;
    case sql::StatementKind::kCreateIndex:
      facts.tables.emplace_back(static_cast<const sql::CreateIndexStatement&>(stmt).table);
      break;
    case sql::StatementKind::kAlterTable:
      facts.tables.emplace_back(static_cast<const sql::AlterTableStatement&>(stmt).table);
      break;
    case sql::StatementKind::kDropTable:
      facts.tables.emplace_back(static_cast<const sql::DropTableStatement&>(stmt).table);
      break;
    default:
      break;
  }
  return facts;
}

}  // namespace sqlcheck
