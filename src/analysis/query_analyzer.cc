#include "analysis/query_analyzer.h"

#include <map>

#include "common/strings.h"
#include "engine/like.h"
#include "sql/printer.h"

namespace sqlcheck {

namespace {

/// Alias -> table map for one statement.
using AliasMap = std::map<std::string, std::string>;

void AddBinding(AliasMap* aliases, const sql::TableRef& ref) {
  if (ref.name.empty()) return;
  (*aliases)[ToLower(ref.EffectiveName())] = ref.name;
  (*aliases)[ToLower(ref.name)] = ref.name;
}

/// Resolves a column ref's qualifier through the alias map. Falls back to the
/// sole bound table for unqualified refs in single-table statements.
std::string ResolveTable(const AliasMap& aliases, const sql::Expr& column_ref,
                         const std::string& sole_table) {
  std::string qualifier = column_ref.TableQualifier();
  if (!qualifier.empty()) {
    auto it = aliases.find(ToLower(qualifier));
    return it != aliases.end() ? it->second : qualifier;
  }
  return sole_table;
}

bool IsLiteralExpr(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kNullLiteral || e.kind == sql::ExprKind::kBoolLiteral ||
         e.kind == sql::ExprKind::kNumberLiteral || e.kind == sql::ExprKind::kStringLiteral ||
         e.kind == sql::ExprKind::kParam;
}

std::string LiteralDisplay(const sql::Expr& e) {
  switch (e.kind) {
    case sql::ExprKind::kNullLiteral: return "NULL";
    case sql::ExprKind::kBoolLiteral: return e.text;
    case sql::ExprKind::kNumberLiteral: return e.text;
    case sql::ExprKind::kStringLiteral: return e.text;
    case sql::ExprKind::kParam: return e.text;
    default: return "";
  }
}

class FactCollector {
 public:
  FactCollector(QueryFacts* facts, AliasMap aliases, std::string sole_table)
      : facts_(facts), aliases_(std::move(aliases)), sole_table_(std::move(sole_table)) {}

  /// Walks a predicate expression (WHERE/ON/HAVING) collecting predicate,
  /// pattern, and concat usages.
  void CollectPredicates(const sql::Expr& e) {
    using sql::ExprKind;
    switch (e.kind) {
      case ExprKind::kBinary: {
        const std::string& op = e.text;
        if (op == "AND" || op == "OR") {
          CollectPredicates(*e.children[0]);
          CollectPredicates(*e.children[1]);
          return;
        }
        if (op == "||") {
          CollectConcat(e);
          return;
        }
        if (op == "~" || op == "~*" || op == "!~" || op == "!~*") {
          RecordPattern(e, "REGEXP");
          return;
        }
        // Comparison between a column and a literal.
        const sql::Expr& lhs = *e.children[0];
        const sql::Expr& rhs = *e.children[1];
        if (lhs.kind == ExprKind::kColumnRef && IsLiteralExpr(rhs)) {
          RecordPredicate(lhs, op, LiteralDisplay(rhs));
        } else if (rhs.kind == ExprKind::kColumnRef && IsLiteralExpr(lhs)) {
          RecordPredicate(rhs, op, LiteralDisplay(lhs));
        } else {
          CollectPredicates(lhs);
          CollectPredicates(rhs);
        }
        return;
      }
      case ExprKind::kLike:
        RecordPattern(e, ToUpper(e.text));
        return;
      case ExprKind::kIn:
        if (!e.children.empty() && e.children[0]->kind == ExprKind::kColumnRef) {
          RecordPredicate(*e.children[0], "IN", "");
        }
        return;
      case ExprKind::kBetween:
        if (!e.children.empty() && e.children[0]->kind == ExprKind::kColumnRef) {
          RecordPredicate(*e.children[0], "BETWEEN", "");
        }
        return;
      case ExprKind::kIsNull:
        if (!e.children.empty() && e.children[0]->kind == ExprKind::kColumnRef) {
          RecordPredicate(*e.children[0], e.negated ? "IS NOT NULL" : "IS NULL", "");
        }
        return;
      case ExprKind::kUnary:
        if (!e.children.empty()) CollectPredicates(*e.children[0]);
        return;
      case ExprKind::kFunction:
        if (EqualsIgnoreCase(e.text, "concat")) {
          CollectConcat(e);
          return;
        }
        for (const auto& c : e.children) CollectPredicates(*c);
        return;
      default:
        for (const auto& c : e.children) CollectPredicates(*c);
        return;
    }
  }

  /// Records columns appearing under a concatenation (`a || b`, CONCAT(..)).
  void CollectConcat(const sql::Expr& e) {
    sql::VisitExpr(e, false, [&](const sql::Expr& node) {
      if (node.kind == sql::ExprKind::kColumnRef) {
        std::string table = ResolveTable(aliases_, node, sole_table_);
        std::string qualified = table.empty() ? node.ColumnName()
                                              : table + "." + node.ColumnName();
        facts_->concat_columns.push_back(qualified);
      }
    });
  }

  /// Scans any expression for embedded concat/pattern usages (select lists).
  void ScanExpression(const sql::Expr& e) {
    sql::VisitExpr(e, false, [&](const sql::Expr& node) {
      if (node.kind == sql::ExprKind::kBinary && node.text == "||") CollectConcat(node);
      if (node.kind == sql::ExprKind::kFunction && EqualsIgnoreCase(node.text, "concat")) {
        CollectConcat(node);
      }
      if (node.kind == sql::ExprKind::kLike) RecordPattern(node, ToUpper(node.text));
    });
  }

  void RecordJoinOn(const sql::Expr& on) {
    // Equality edges become JoinEdge records; anything else marks an
    // expression join and is also predicate-scanned.
    std::vector<const sql::Expr*> conjuncts;
    CollectConjunctsLocal(on, &conjuncts);
    for (const sql::Expr* conj : conjuncts) {
      if (conj->kind == sql::ExprKind::kBinary &&
          (conj->text == "=" || conj->text == "==") &&
          conj->children[0]->kind == sql::ExprKind::kColumnRef &&
          conj->children[1]->kind == sql::ExprKind::kColumnRef) {
        JoinEdge edge;
        edge.left_table = ResolveTable(aliases_, *conj->children[0], "");
        edge.left_column = conj->children[0]->ColumnName();
        edge.right_table = ResolveTable(aliases_, *conj->children[1], "");
        edge.right_column = conj->children[1]->ColumnName();
        facts_->joins.push_back(std::move(edge));
      } else {
        JoinEdge edge;
        edge.expression_join = true;
        facts_->joins.push_back(std::move(edge));
        CollectPredicates(*conj);
      }
    }
  }

 private:
  static void CollectConjunctsLocal(const sql::Expr& e,
                                    std::vector<const sql::Expr*>* out) {
    if (e.kind == sql::ExprKind::kBinary && e.text == "AND") {
      CollectConjunctsLocal(*e.children[0], out);
      CollectConjunctsLocal(*e.children[1], out);
    } else {
      out->push_back(&e);
    }
  }

  void RecordPredicate(const sql::Expr& column_ref, std::string op, std::string literal) {
    PredicateUse use;
    use.table = ResolveTable(aliases_, column_ref, sole_table_);
    use.column = column_ref.ColumnName();
    use.op = std::move(op);
    use.literal = std::move(literal);
    facts_->predicates.push_back(std::move(use));
  }

  void RecordPattern(const sql::Expr& e, std::string op) {
    PatternUse use;
    use.op = std::move(op);
    if (!e.children.empty() && e.children[0]->kind == sql::ExprKind::kColumnRef) {
      use.table = ResolveTable(aliases_, *e.children[0], sole_table_);
      use.column = e.children[0]->ColumnName();
    }
    if (e.children.size() > 1) {
      const sql::Expr& pattern = *e.children[1];
      if (pattern.kind == sql::ExprKind::kStringLiteral) {
        use.pattern = pattern.text;
        use.leading_wildcard = !pattern.text.empty() &&
                               (pattern.text[0] == '%' || pattern.text[0] == '_' ||
                                pattern.text.rfind(".*", 0) == 0);
        use.word_boundary = HasWordBoundaryMarkers(pattern.text);
      } else {
        use.computed_pattern = true;
        // A computed pattern may still carry boundary-marker literals.
        sql::VisitExpr(pattern, false, [&](const sql::Expr& node) {
          if (node.kind == sql::ExprKind::kStringLiteral &&
              HasWordBoundaryMarkers(node.text)) {
            use.word_boundary = true;
          }
        });
      }
    }
    facts_->patterns.push_back(std::move(use));
  }

  QueryFacts* facts_;
  AliasMap aliases_;
  std::string sole_table_;
};

void AnalyzeSelect(const sql::SelectStatement& s, QueryFacts* facts) {
  AliasMap aliases;
  for (const auto& f : s.from) AddBinding(&aliases, f);
  for (const auto& j : s.joins) AddBinding(&aliases, j.table);

  std::string sole_table;
  if (s.from.size() == 1 && s.joins.empty() && !s.from[0].name.empty()) {
    sole_table = s.from[0].name;
  }
  FactCollector collector(facts, aliases, sole_table);

  facts->distinct = s.distinct;
  facts->join_count = s.JoinCount();
  facts->has_where = s.where != nullptr;
  for (const auto& t : s.ReferencedTables()) {
    bool seen = false;
    for (const auto& existing : facts->tables) {
      if (EqualsIgnoreCase(existing, t)) seen = true;
    }
    if (!seen) facts->tables.push_back(t);
  }

  for (const auto& item : s.items) {
    if (item.expr->kind == sql::ExprKind::kStar) {
      facts->selects_wildcard = true;
    } else {
      collector.ScanExpression(*item.expr);
    }
  }
  for (const auto& j : s.joins) {
    if (j.on) collector.RecordJoinOn(*j.on);
    for (const auto& col : j.using_columns) {
      JoinEdge edge;
      edge.left_table = s.from.empty() ? "" : s.from[0].name;
      edge.left_column = col;
      edge.right_table = j.table.name;
      edge.right_column = col;
      facts->joins.push_back(std::move(edge));
    }
  }
  if (s.where) collector.CollectPredicates(*s.where);
  if (s.having) collector.CollectPredicates(*s.having);
  for (const auto& g : s.group_by) {
    if (g->kind == sql::ExprKind::kColumnRef) {
      std::string table = g->TableQualifier();
      auto it = aliases.find(ToLower(table));
      std::string resolved = it != aliases.end() ? it->second : table;
      if (resolved.empty()) resolved = sole_table;
      facts->group_by_columns.push_back(
          resolved.empty() ? g->ColumnName() : resolved + "." + g->ColumnName());
    }
  }
  for (const auto& ob : s.order_by) {
    if (ob.expr->kind == sql::ExprKind::kFunction &&
        (EqualsIgnoreCase(ob.expr->text, "rand") ||
         EqualsIgnoreCase(ob.expr->text, "random"))) {
      facts->order_by_rand = true;
    }
    collector.ScanExpression(*ob.expr);
  }

  // Nested subqueries contribute facts too (joins/predicates seen anywhere).
  auto scan_subqueries = [&](const sql::SelectStatement& inner) {
    QueryFacts inner_facts;
    AnalyzeSelect(inner, &inner_facts);
    for (auto& t : inner_facts.tables) {
      if (!facts->ReferencesTable(t)) facts->tables.push_back(t);
    }
    for (auto& p : inner_facts.predicates) facts->predicates.push_back(std::move(p));
    for (auto& p : inner_facts.patterns) facts->patterns.push_back(std::move(p));
    for (auto& j : inner_facts.joins) facts->joins.push_back(std::move(j));
    facts->join_count += inner_facts.join_count;
    if (inner_facts.order_by_rand) facts->order_by_rand = true;
  };
  for (const auto& f : s.from) {
    if (f.subquery) scan_subqueries(*f.subquery);
  }
  auto visit_expr_subqueries = [&](const sql::Expr& root) {
    sql::VisitExpr(root, false, [&](const sql::Expr& node) {
      if (node.subquery) scan_subqueries(*node.subquery);
    });
  };
  if (s.where) visit_expr_subqueries(*s.where);
  for (const auto& item : s.items) {
    if (item.expr->kind != sql::ExprKind::kStar) visit_expr_subqueries(*item.expr);
  }
}

}  // namespace

QueryFacts AnalyzeQuery(const sql::Statement& stmt) {
  QueryFacts facts;
  facts.stmt = &stmt;
  facts.kind = stmt.kind;
  facts.raw_sql = stmt.raw_sql;

  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      AnalyzeSelect(static_cast<const sql::SelectStatement&>(stmt), &facts);
      break;
    case sql::StatementKind::kInsert: {
      const auto& s = static_cast<const sql::InsertStatement&>(stmt);
      facts.tables.push_back(s.table);
      facts.insert_without_columns = s.columns.empty();
      facts.insert_columns = s.columns;
      if (s.select) {
        QueryFacts inner;
        AnalyzeSelect(*s.select, &inner);
        for (auto& t : inner.tables) {
          if (!facts.ReferencesTable(t)) facts.tables.push_back(t);
        }
        facts.selects_wildcard = inner.selects_wildcard;
      }
      break;
    }
    case sql::StatementKind::kUpdate: {
      const auto& s = static_cast<const sql::UpdateStatement&>(stmt);
      facts.tables.push_back(s.table);
      facts.has_where = s.where != nullptr;
      AliasMap aliases;
      aliases[ToLower(s.alias.empty() ? s.table : s.alias)] = s.table;
      aliases[ToLower(s.table)] = s.table;
      FactCollector collector(&facts, aliases, s.table);
      for (const auto& [col, expr] : s.assignments) {
        facts.updated_columns.push_back(col);
        collector.ScanExpression(*expr);
      }
      if (s.where) collector.CollectPredicates(*s.where);
      break;
    }
    case sql::StatementKind::kDelete: {
      const auto& s = static_cast<const sql::DeleteStatement&>(stmt);
      facts.tables.push_back(s.table);
      facts.has_where = s.where != nullptr;
      AliasMap aliases;
      aliases[ToLower(s.table)] = s.table;
      FactCollector collector(&facts, aliases, s.table);
      if (s.where) collector.CollectPredicates(*s.where);
      break;
    }
    case sql::StatementKind::kCreateTable:
      facts.tables.push_back(static_cast<const sql::CreateTableStatement&>(stmt).table);
      break;
    case sql::StatementKind::kCreateIndex:
      facts.tables.push_back(static_cast<const sql::CreateIndexStatement&>(stmt).table);
      break;
    case sql::StatementKind::kAlterTable:
      facts.tables.push_back(static_cast<const sql::AlterTableStatement&>(stmt).table);
      break;
    case sql::StatementKind::kDropTable:
      facts.tables.push_back(static_cast<const sql::DropTableStatement&>(stmt).table);
      break;
    default:
      break;
  }
  return facts;
}

}  // namespace sqlcheck
