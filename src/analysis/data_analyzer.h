#pragma once

#include <cstdint>

#include "analysis/data_context.h"
#include "storage/database.h"

namespace sqlcheck {

/// \brief Knobs for the data analyzer. Sampling keeps profiling cheap; the
/// paper lets the developer configure the sampling frequency (§4.2).
struct DataAnalyzerOptions {
  size_t sample_limit = 1000;  ///< Max rows profiled per table (0 = full scan).
  uint64_t seed = 42;
};

/// \brief Profiles every table of `db` (Algorithm 1's Data-Analyser step).
DataContext AnalyzeDatabase(const Database& db, const DataAnalyzerOptions& options = {});

}  // namespace sqlcheck
