#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/data_analyzer.h"
#include "analysis/data_context.h"
#include "analysis/query_context.h"
#include "analysis/workload_stats.h"
#include "catalog/catalog.h"
#include "common/arena.h"
#include "sql/ast.h"
#include "sql/lexer.h"
#include "storage/database.h"

namespace sqlcheck {

class ThreadPool;

/// \brief Query fingerprint grouping produced by the dedup cache: every
/// statement maps to the first statement with the same exact-canonical form
/// (whitespace/comment/keyword-case folded, literal text preserved — see
/// sql::FingerprintOptions::Exact()). Statements in one group are guaranteed
/// to produce identical QueryFacts modulo their raw text and parse tree, so
/// analysis and rule evaluation run once per group. With dedup disabled the
/// mapping is the identity.
struct QueryGroups {
  /// Statement index -> index of its group's representative (first
  /// occurrence). `representative[i] == i` iff statement i leads a group.
  std::vector<size_t> representative;
  /// Representative indices in ascending statement order.
  std::vector<size_t> unique;
  /// Per-statement exact-canonical 64-bit fingerprint (empty when the
  /// context was built with dedup disabled).
  std::vector<uint64_t> fingerprints;

  size_t unique_count() const { return unique.size(); }
  bool has_duplicates() const { return unique.size() < representative.size(); }
};

/// \brief The application context of Algorithm 1: the catalog (from DDL or a
/// live database), the analyzed queries, and optional data profiles. It
/// exposes the queryable interface the inter-query and data rules consume.
class Context {
 public:
  const Catalog& catalog() const { return catalog_; }
  const std::vector<QueryFacts>& queries() const { return query_facts_; }
  const DataContext& data() const { return data_; }
  const Database* database() const { return database_; }
  bool has_data() const { return !data_.empty(); }

  /// Fingerprint grouping of the workload (identity when dedup was off).
  /// DetectAntiPatterns uses it to evaluate query rules once per group.
  const QueryGroups& query_groups() const { return query_groups_; }

  /// Maintained workload aggregates backing the queryable interface below.
  /// ContextBuilder populates them at Build(); AnalysisSession folds each
  /// statement in as it streams, so the O(1) answers stay current.
  const WorkloadStats& stats() const { return stats_; }

  /// Case-insensitive table/column name table populated as statements fold
  /// into the aggregates (one instance per Context; see NameInterner).
  const NameInterner& names() const { return stats_.names(); }

  /// The arena owning this context's parse trees. Statements placed here
  /// must not outlive the Context. Stable address for the Context's life
  /// (moved Contexts keep the same arena).
  Arena* arena() { return arena_.get(); }

  /// Parse-tree arena accounting across the primary arena and every arena
  /// adopted from merged ingestion shards (quota checks and SessionUsage
  /// must see the whole footprint, not just the primary arena).
  size_t arena_reserved_bytes() const {
    size_t total = arena_->bytes_reserved();
    for (const auto& a : adopted_arenas_) total += a->bytes_reserved();
    return total;
  }
  size_t arena_used_bytes() const {
    size_t total = arena_->bytes_used();
    for (const auto& a : adopted_arenas_) total += a->bytes_used();
    return total;
  }

  // ------------------------ queryable interface ----------------------------
  /// Queries referencing a table.
  std::vector<const QueryFacts*> QueriesReferencing(std::string_view table) const;

  /// How many equality predicates/join edges across the workload touch
  /// `table.column` (signals Index Underuse when unindexed).
  int EqualityUseCount(std::string_view table, std::string_view column) const;

  /// True if any query joins `left` and `right` on any columns.
  bool TablesJoined(std::string_view left, std::string_view right) const;

  /// True if the catalog records a foreign key between the two tables (in
  /// either direction).
  bool ForeignKeyExists(std::string_view left, std::string_view right) const;

  /// The table profile for `table`, or nullptr without data analysis.
  const TableProfile* ProfileFor(std::string_view table) const { return data_.Find(table); }

  /// True if the schema column is nullable (unknown tables count as nullable).
  bool ColumnNullable(std::string_view table, std::string_view column) const;

 private:
  friend class ContextBuilder;
  friend class AnalysisSession;

  Catalog catalog_;
  /// Owns every arena-tier parse tree in statements_ (created up front so
  /// incremental sessions can keep parsing into it). Held by pointer so the
  /// arena address survives Context moves.
  std::unique_ptr<Arena> arena_ = std::make_unique<Arena>();
  /// Arenas inherited from merged ingestion shards: a shard parses into its
  /// own arena, and when its statements move into this context the arena
  /// moves with them so the trees stay valid. Append-only; freed with the
  /// Context.
  std::vector<std::unique_ptr<Arena>> adopted_arenas_;
  std::vector<sql::StatementPtr> statements_;  ///< Owned parse trees.
  std::vector<QueryFacts> query_facts_;
  QueryGroups query_groups_;
  WorkloadStats stats_;
  DataContext data_;
  const Database* database_ = nullptr;  ///< Non-owning; may be null.
};

/// \brief Builds a Context from queries and (optionally) a database
/// connection, per Algorithm 1. When no database is attached, the catalog is
/// reconstructed purely from the DDL statements in the workload (§4.1).
class ContextBuilder {
 public:
  /// Adds one SQL statement (parsed internally).
  void AddQuery(std::string_view sql_text);

  /// Adds every statement in a script.
  void AddScript(std::string_view script);

  /// Adds an already-parsed statement (takes ownership).
  void AddStatement(sql::StatementPtr stmt);

  /// Attaches a live database: its schema becomes the catalog baseline and
  /// its tables are profiled by the data analyzer.
  void AttachDatabase(const Database* db, DataAnalyzerOptions options = {});

  /// Builds the context (consumes the builder's accumulated state). With
  /// `parallelism > 1`, per-statement query analysis is sharded across a
  /// ThreadPool; each statement's facts land in their original slot, so the
  /// result is identical to a serial build. `parallelism <= 0` uses every
  /// hardware thread. `pool` (optional) reuses an existing pool instead of
  /// spinning up a transient one.
  ///
  /// With `dedup_queries` (default on), statements are grouped by their
  /// exact-canonical fingerprint and the query analyzer runs once per unique
  /// group; duplicates receive a copy of the group's facts rebased onto
  /// their own raw text and parse tree. The resulting context — and any
  /// report derived from it — is byte-identical to a non-deduped build.
  Context Build(int parallelism = 1, ThreadPool* pool = nullptr,
                bool dedup_queries = true);

 private:
  std::unique_ptr<Arena> arena_ = std::make_unique<Arena>();  ///< Parse-tree arena.
  sql::TokenBuffer buffer_;  ///< Reused across AddQuery/AddScript parses.
  std::vector<sql::StatementPtr> statements_;
  const Database* database_ = nullptr;
  DataAnalyzerOptions data_options_;
};

}  // namespace sqlcheck
