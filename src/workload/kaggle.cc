#include "workload/kaggle.h"

#include "common/random.h"
#include "common/strings.h"
#include "engine/executor.h"

namespace sqlcheck::workload {

namespace {

using AP = AntiPattern;

void MustRun(Executor& exec, const std::string& sql_text) {
  auto r = exec.ExecuteSql(sql_text);
  if (!r.ok()) std::abort();
}

}  // namespace

const std::vector<KaggleSpec>& KaggleSpecs() {
  // Table 6 of the paper: database name, AP classes found, total AP count.
  static const std::vector<KaggleSpec>* kSpecs = new std::vector<KaggleSpec>{
      {"Board Games", {AP::kNoPrimaryKey, AP::kDataInMetadata, AP::kIncorrectDataType}, 12},
      {"Pennsylvania Safe Schools Report", {AP::kNoPrimaryKey}, 1},
      {"Soccer Dataset",
       {AP::kGenericPrimaryKey, AP::kDataInMetadata, AP::kMissingTimezone,
        AP::kMultiValuedAttribute},
       20},
      {"SF Bay Area Bike Share",
       {AP::kNoPrimaryKey, AP::kGenericPrimaryKey, AP::kIncorrectDataType,
        AP::kMissingTimezone, AP::kDenormalizedTable},
       11},
      {"US Baby Names", {AP::kGenericPrimaryKey}, 2},
      {"Pitchfork Music Data",
       {AP::kNoPrimaryKey, AP::kMissingTimezone, AP::kInformationDuplication,
        AP::kDenormalizedTable},
       10},
      {"Acad. Research from Indian Univ.",
       {AP::kNoPrimaryKey, AP::kIncorrectDataType, AP::kRedundantColumn,
        AP::kMultiValuedAttribute},
       17},
      {"What.CD HipHop", {AP::kNoPrimaryKey, AP::kMultiValuedAttribute}, 3},
      {"Snap Meme-Tracker", {AP::kMissingTimezone}, 1},
      {"NIPS papers", {AP::kGenericPrimaryKey, AP::kDenormalizedTable}, 4},
      {"US Wildfires", {AP::kNoPrimaryKey, AP::kRedundantColumn}, 2},
      {"Que from crossvalidated StackExc", {AP::kNoPrimaryKey}, 3},
      {"The History of Baseball",
       {AP::kNoPrimaryKey, AP::kDataInMetadata, AP::kIncorrectDataType,
        AP::kMultiValuedAttribute},
       41},
      {"Twitter US Airline Sentiment", {AP::kDenormalizedTable}, 2},
      {"Hilary Clinton Emails", {AP::kGenericPrimaryKey, AP::kIncorrectDataType}, 8},
      {"SEPTA - Regional Rail", {AP::kIncorrectDataType, AP::kMissingTimezone}, 2},
      {"US Consumer finance Complaints",
       {AP::kNoPrimaryKey, AP::kIncorrectDataType, AP::kMultiValuedAttribute,
        AP::kDenormalizedTable},
       9},
      {"1st GOP Debate Twitter Sentiment", {AP::kGenericPrimaryKey}, 1},
      {"SF Salaries", {AP::kGenericPrimaryKey, AP::kDenormalizedTable}, 2},
      {"Freight Matrix Transportation",
       {AP::kNoPrimaryKey, AP::kDataInMetadata, AP::kRedundantColumn},
       5},
      {"WDIdata", {AP::kNoPrimaryKey, AP::kMultiValuedAttribute}, 9},
      {"Amazon Movie Reviews Dataset", {AP::kNoPrimaryKey, AP::kMultiValuedAttribute}, 2},
      {"UK Arms Export License", {AP::kNoPrimaryKey}, 3},
      {"Amazon Fine Food Reviews", {AP::kGenericPrimaryKey}, 1},
      {"Stackoverflow Question Favourites", {AP::kMultiValuedAttribute}, 1},
      {"Iron March", {AP::kRedundantColumn}, 1},
      {"C# Methods with Doc. Comments", {AP::kGenericPrimaryKey}, 4},
      {"Pesticide Data Program",
       {AP::kNoPrimaryKey, AP::kIncorrectDataType, AP::kRedundantColumn},
       13},
      {"Monty Python Flying Circus",
       {AP::kNoPrimaryKey, AP::kMissingTimezone, AP::kDenormalizedTable},
       4},
      {"Twitter Conv. about Black Panther", {}, 0},
      {"2016 US Election",
       {AP::kNoPrimaryKey, AP::kDataInMetadata, AP::kDenormalizedTable},
       6},
  };
  return *kSpecs;
}

namespace {

/// Per-AP table seeders. Each creates one small table whose *data* exhibits
/// the AP class so the data-analysis rules (Algorithm 3) re-detect it.
class KaggleSeeder {
 public:
  KaggleSeeder(Database* db, uint64_t seed) : exec_(db, seed), rng_(seed) {}

  void Seed(AP type, int instance) {
    std::string t = "t" + std::to_string(table_counter_++) + "_" + Slug(type);
    switch (type) {
      case AP::kNoPrimaryKey: {
        MustRun(exec_, "CREATE TABLE " + t + " (label VARCHAR(20), v INTEGER)");
        Fill(t, {"label", "v"}, [&](size_t i) {
          return "('row_" + std::to_string(i) + "', " + std::to_string(i % 7) + ")";
        });
        break;
      }
      case AP::kGenericPrimaryKey: {
        MustRun(exec_, "CREATE TABLE " + t + " (id INTEGER PRIMARY KEY, v VARCHAR(20))");
        Fill(t, {"id", "v"}, [&](size_t i) {
          return "(" + std::to_string(i) + ", 'v" + std::to_string(i) + "')";
        });
        break;
      }
      case AP::kDataInMetadata: {
        MustRun(exec_, "CREATE TABLE " + t +
                           " (k INTEGER PRIMARY KEY, stat1 INTEGER, stat2 INTEGER, "
                           "stat3 INTEGER, stat4 INTEGER)");
        // Values vary and are arithmetically unrelated so only the numbered
        // column series fires (no RedundantColumn / InformationDuplication
        // cross-detections).
        Fill(t, {"k", "stat1", "stat2", "stat3", "stat4"}, [&](size_t i) {
          return "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ", " +
                 std::to_string((i * 3 + 1) % 11) + ", " + std::to_string((i * 5 + 2) % 13) +
                 ", " + std::to_string((i * 7 + 3) % 17) + ")";
        });
        break;
      }
      case AP::kIncorrectDataType: {
        MustRun(exec_, "CREATE TABLE " + t +
                           " (k INTEGER PRIMARY KEY, reading TEXT)");
        Fill(t, {"k", "reading"}, [&](size_t i) {
          return "(" + std::to_string(i) + ", '" + std::to_string(100 + i) + "')";
        });
        break;
      }
      case AP::kMissingTimezone: {
        // Declared TIMESTAMP (not TEXT) so Incorrect Data Type stays quiet;
        // the tz-less type itself is the AP.
        MustRun(exec_, "CREATE TABLE " + t +
                           " (k INTEGER PRIMARY KEY, observed_at TIMESTAMP)");
        Fill(t, {"k", "observed_at"}, [&](size_t i) {
          return "(" + std::to_string(i) + ", '2019-07-" +
                 std::to_string(1 + i % 28) + " 12:30:00')";
        });
        break;
      }
      case AP::kMultiValuedAttribute: {
        MustRun(exec_, "CREATE TABLE " + t +
                           " (k INTEGER PRIMARY KEY, member_ids TEXT)");
        Fill(t, {"k", "member_ids"}, [&](size_t i) {
          return "(" + std::to_string(i) + ", 'M" + std::to_string(i) + ",M" +
                 std::to_string(i + 1) + ",M" + std::to_string(i + 2) + "')";
        });
        break;
      }
      case AP::kDenormalizedTable: {
        MustRun(exec_, "CREATE TABLE " + t +
                           " (k INTEGER PRIMARY KEY, team_code VARCHAR(8), "
                           "team_city VARCHAR(20))");
        Fill(t, {"k", "team_code", "team_city"}, [&](size_t i) {
          size_t team = i % 4;
          return "(" + std::to_string(i) + ", 'TM" + std::to_string(team) + "', 'city_" +
                 std::to_string(team) + "')";
        });
        break;
      }
      case AP::kInformationDuplication: {
        MustRun(exec_, "CREATE TABLE " + t +
                           " (k INTEGER PRIMARY KEY, birth_year INTEGER, age INTEGER)");
        Fill(t, {"k", "birth_year", "age"}, [&](size_t i) {
          int year = 1960 + static_cast<int>(i % 40);
          return "(" + std::to_string(i) + ", " + std::to_string(year) + ", " +
                 std::to_string(2020 - year) + ")";
        });
        break;
      }
      case AP::kRedundantColumn: {
        // One redundant signal per table: the paper's hard-coded 'en-us'.
        MustRun(exec_, "CREATE TABLE " + t +
                           " (k INTEGER PRIMARY KEY, title VARCHAR(24), locale VARCHAR(8))");
        Fill(t, {"k", "title", "locale"}, [&](size_t i) {
          return "(" + std::to_string(i) + ", 'title_" + std::to_string(i) +
                 "', 'en-us')";
        });
        break;
      }
      default: {
        // AP classes not seeded by data (shouldn't appear in the spec table).
        MustRun(exec_, "CREATE TABLE " + t + " (k INTEGER PRIMARY KEY)");
        break;
      }
    }
    (void)instance;
  }

 private:
  static std::string Slug(AP type) {
    std::string slug = ToLower(ApName(type));
    for (char& c : slug) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return slug;
  }

  template <typename RowFn>
  void Fill(const std::string& table, const std::vector<std::string>& columns,
            RowFn&& row) {
    size_t rows = 24 + rng_.NextBelow(16);
    std::string cols = Join(columns, ", ");
    for (size_t i = 0; i < rows; ++i) {
      MustRun(exec_, "INSERT INTO " + table + " (" + cols + ") VALUES " + row(i));
    }
  }

  Executor exec_;
  Rng rng_;
  int table_counter_ = 0;
};

}  // namespace

std::unique_ptr<Database> SynthesizeKaggleDatabase(const KaggleSpec& spec, uint64_t seed) {
  auto db = std::make_unique<Database>(spec.name);
  KaggleSeeder seeder(db.get(), seed);
  if (spec.ap_types.empty()) {
    // The clean database still has content (Table 6 row 30 found 0 APs).
    Executor exec(db.get(), seed);
    MustRun(exec,
            "CREATE TABLE conversations (conv_id INTEGER PRIMARY KEY, "
            "author VARCHAR(20) NOT NULL, posted_at TIMESTAMP WITH TIME ZONE)");
    for (int i = 0; i < 20; ++i) {
      MustRun(exec, "INSERT INTO conversations (conv_id, author, posted_at) VALUES (" +
                        std::to_string(i) + ", 'a" + std::to_string(i) + "', '2020-01-" +
                        std::to_string(1 + i % 27) + " 10:00:00Z')");
    }
    return db;
  }
  // Seed round-robin over the spec's AP classes until we approach the target.
  int target = std::max<int>(spec.ap_target, static_cast<int>(spec.ap_types.size()));
  int seeded = 0;
  int instance = 0;
  while (seeded < target) {
    for (AP type : spec.ap_types) {
      if (seeded >= target) break;
      seeder.Seed(type, instance);
      ++seeded;
    }
    ++instance;
  }
  return db;
}

}  // namespace sqlcheck::workload
