#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck::workload {

/// \brief Spec for one Django-style application from Table 7 of the paper:
/// name, domain, the number of APs sqlcheck detected, and which high-impact
/// AP classes were reported upstream.
struct DjangoAppSpec {
  std::string name;
  std::string domain;
  int detected = 0;                       ///< Table 7 "# AP" column.
  std::vector<AntiPattern> reported;      ///< Table 7 "APs Reported" names.
};

/// \brief The 15 applications of Table 7.
const std::vector<DjangoAppSpec>& DjangoAppSpecs();

/// \brief Generates the SQL workload of one application: ORM-flavoured
/// queries carrying `detected` seeded AP instances, biased toward the app's
/// reported AP classes — the stand-in for deploying the app on PostgreSQL
/// and capturing its queries (§8.4).
std::vector<std::string> GenerateDjangoWorkload(const DjangoAppSpec& spec,
                                                uint64_t seed = 15);

}  // namespace sqlcheck::workload
