#include "workload/user_study.h"

#include "common/random.h"

namespace sqlcheck::workload {

namespace {
using AP = AntiPattern;

/// The bike e-commerce domain of §8.3: sixteen features, each tempting one
/// or more APs. Participants with low skill take the tempting shortcut.
struct Feature {
  const char* name;
  AP tempted;
};

const std::vector<Feature>& Features() {
  static const std::vector<Feature>* kFeatures = new std::vector<Feature>{
      {"products", AP::kNoPrimaryKey},
      {"catalog_browse", AP::kColumnWildcard},
      {"cart_items", AP::kMultiValuedAttribute},
      {"order_status", AP::kEnumeratedTypes},
      {"price_totals", AP::kRoundingErrors},
      {"user_accounts", AP::kReadablePassword},
      {"product_search", AP::kPatternMatching},
      {"order_insert", AP::kImplicitColumns},
      {"daily_deals", AP::kOrderingByRand},
      {"inventory_lookup", AP::kIndexUnderuse},
      {"catalog_tables", AP::kGodTable},
      {"archive_tables", AP::kCloneTable},
      {"spec_columns", AP::kDataInMetadata},
      {"surrogate_keys", AP::kGenericPrimaryKey},
      {"order_items_join", AP::kNoForeignKey},
      {"report_dedup", AP::kDistinctAndJoin},
  };
  return *kFeatures;
}

/// Emits the AP or clean variant of one feature's SQL for participant `p`.
void EmitFeature(const Feature& feature, bool take_shortcut, int p,
                 std::vector<std::string>* statements,
                 std::vector<std::vector<AP>>* truth) {
  // Letter-coded suffix: numeric suffixes would read as Clone Table names.
  std::string suffix = "_p";
  for (int v = p + 1; v > 0; v /= 26) {
    suffix.push_back(static_cast<char>('a' + v % 26));
  }
  auto add = [&](std::string sql, std::vector<AP> labels) {
    statements->push_back(std::move(sql));
    truth->push_back(std::move(labels));
  };

  switch (feature.tempted) {
    case AP::kNoPrimaryKey:
      if (take_shortcut) {
        add("CREATE TABLE products" + suffix + " (sku VARCHAR(20), name VARCHAR(40))",
            {AP::kNoPrimaryKey});
      } else {
        add("CREATE TABLE products" + suffix +
                " (sku VARCHAR(20) PRIMARY KEY, name VARCHAR(40))",
            {});
      }
      break;
    case AP::kColumnWildcard:
      add(take_shortcut ? "SELECT * FROM products" + suffix
                        : "SELECT sku, name FROM products" + suffix,
          take_shortcut ? std::vector<AP>{AP::kColumnWildcard} : std::vector<AP>{});
      break;
    case AP::kMultiValuedAttribute:
      if (take_shortcut) {
        add("CREATE TABLE cart" + suffix + " (cart_id INTEGER PRIMARY KEY, item_ids TEXT)",
            {AP::kMultiValuedAttribute});
        add("SELECT * FROM cart" + suffix + " WHERE item_ids LIKE '%,42,%'",
            {AP::kMultiValuedAttribute, AP::kColumnWildcard, AP::kPatternMatching});
      } else {
        add("CREATE TABLE cart_items" + suffix +
                " (cart_id INTEGER, sku VARCHAR(20), PRIMARY KEY (cart_id, sku))",
            {});
      }
      break;
    case AP::kEnumeratedTypes:
      add(take_shortcut
              ? "CREATE TABLE orders" + suffix +
                    " (order_id INTEGER PRIMARY KEY, status ENUM('new', 'paid', "
                    "'shipped'))"
              : "CREATE TABLE orders" + suffix +
                    " (order_id INTEGER PRIMARY KEY, status_id INTEGER)",
          take_shortcut ? std::vector<AP>{AP::kEnumeratedTypes} : std::vector<AP>{});
      break;
    case AP::kRoundingErrors:
      add(take_shortcut ? "CREATE TABLE totals" + suffix +
                              " (order_id INTEGER PRIMARY KEY, amount FLOAT)"
                        : "CREATE TABLE totals" + suffix +
                              " (order_id INTEGER PRIMARY KEY, amount NUMERIC(12, 2))",
          take_shortcut ? std::vector<AP>{AP::kRoundingErrors} : std::vector<AP>{});
      break;
    case AP::kReadablePassword:
      add(take_shortcut ? "CREATE TABLE accounts" + suffix +
                              " (account_id INTEGER PRIMARY KEY, password VARCHAR(32))"
                        : "CREATE TABLE accounts" + suffix +
                              " (account_id INTEGER PRIMARY KEY, pass_hash VARCHAR(64))",
          take_shortcut ? std::vector<AP>{AP::kReadablePassword} : std::vector<AP>{});
      break;
    case AP::kPatternMatching:
      add(take_shortcut
              ? "SELECT sku FROM products" + suffix + " WHERE name LIKE '%gravel%'"
              : "SELECT sku FROM products" + suffix + " WHERE name = 'gravel bike'",
          take_shortcut ? std::vector<AP>{AP::kPatternMatching} : std::vector<AP>{});
      break;
    case AP::kImplicitColumns:
      add(take_shortcut
              ? "INSERT INTO orders" + suffix + " VALUES (1, 'new')"
              : "INSERT INTO orders" + suffix + " (order_id, status) VALUES (1, 'new')",
          take_shortcut ? std::vector<AP>{AP::kImplicitColumns} : std::vector<AP>{});
      break;
    case AP::kOrderingByRand:
      add(take_shortcut
              ? "SELECT sku FROM products" + suffix + " ORDER BY RAND() LIMIT 3"
              : "SELECT sku FROM products" + suffix + " WHERE sku >= 'G' LIMIT 3",
          take_shortcut ? std::vector<AP>{AP::kOrderingByRand} : std::vector<AP>{});
      break;
    case AP::kIndexUnderuse:
      if (take_shortcut) {
        add("SELECT name FROM products" + suffix + " WHERE name = 'saddle'",
            {AP::kIndexUnderuse});
      } else {
        add("CREATE INDEX idx_products" + suffix + "_name ON products" + suffix +
                " (name)",
            {});
        add("SELECT name FROM products" + suffix + " WHERE name = 'saddle'", {});
      }
      break;
    case AP::kGodTable:
      if (take_shortcut) {
        std::string cols = "pid INTEGER PRIMARY KEY";
        for (int i = 0; i < 11; ++i) cols += ", attr_" + std::to_string(i) + " VARCHAR(10)";
        add("CREATE TABLE megacatalog" + suffix + " (" + cols + ")", {AP::kGodTable});
      } else {
        add("CREATE TABLE specs" + suffix +
                " (sku VARCHAR(20) PRIMARY KEY, weight_g INTEGER, color VARCHAR(12))",
            {});
      }
      break;
    case AP::kCloneTable:
      if (take_shortcut) {
        // Year suffix LAST so the clone pattern <base>_N stays visible.
        add("CREATE TABLE sales" + suffix + "_2019" +
                " (sale_id INTEGER PRIMARY KEY, total NUMERIC(10, 2))",
            {AP::kCloneTable});
        add("CREATE TABLE sales" + suffix + "_2020" +
                " (sale_id INTEGER PRIMARY KEY, total NUMERIC(10, 2))",
            {AP::kCloneTable});
      } else {
        add("CREATE TABLE sales" + suffix +
                " (sale_id INTEGER PRIMARY KEY, yr INTEGER, total NUMERIC(10, 2))",
            {});
      }
      break;
    case AP::kDataInMetadata:
      add(take_shortcut ? "CREATE TABLE gears" + suffix +
                              " (gid INTEGER PRIMARY KEY, ratio1 INTEGER, ratio2 "
                              "INTEGER, ratio3 INTEGER)"
                        : "CREATE TABLE gear_ratios" + suffix +
                              " (gid INTEGER, slot INTEGER, ratio INTEGER, PRIMARY KEY "
                              "(gid, slot))",
          take_shortcut ? std::vector<AP>{AP::kDataInMetadata} : std::vector<AP>{});
      break;
    case AP::kGenericPrimaryKey:
      add(take_shortcut ? "CREATE TABLE brands" + suffix +
                              " (id INTEGER PRIMARY KEY, brand VARCHAR(20))"
                        : "CREATE TABLE brands" + suffix +
                              " (brand_id INTEGER PRIMARY KEY, brand VARCHAR(20))",
          take_shortcut ? std::vector<AP>{AP::kGenericPrimaryKey} : std::vector<AP>{});
      break;
    case AP::kNoForeignKey:
      if (take_shortcut) {
        add("CREATE TABLE order_items" + suffix +
                " (item_id INTEGER PRIMARY KEY, order_id INTEGER)",
            {});
        add("SELECT i.item_id FROM orders" + suffix + " o JOIN order_items" + suffix +
                " i ON o.order_id = i.order_id",
            {AP::kNoForeignKey});
      } else {
        add("CREATE TABLE order_items" + suffix +
                " (item_id INTEGER PRIMARY KEY, order_id INTEGER REFERENCES orders" +
                suffix + " (order_id))",
            {});
      }
      break;
    case AP::kDistinctAndJoin:
      add(take_shortcut ? "SELECT DISTINCT o.order_id FROM orders" + suffix +
                              " o JOIN order_items" + suffix +
                              " i ON o.order_id = i.order_id"
                        : "SELECT o.order_id FROM orders" + suffix +
                              " o WHERE EXISTS (SELECT 1 FROM order_items" + suffix +
                              " i WHERE i.order_id = o.order_id)",
          take_shortcut ? std::vector<AP>{AP::kDistinctAndJoin, AP::kNoForeignKey}
                        : std::vector<AP>{});
      break;
    default:
      break;
  }
}

}  // namespace

std::vector<Participant> GenerateUserStudy(const UserStudyOptions& options) {
  std::vector<Participant> participants;
  Rng rng(options.seed);
  participants.reserve(static_cast<size_t>(options.participant_count));

  // Rounds per participant so totals land near target_statements. Each
  // feature emits 1-2 statements (~1.3 avg over the 16 features).
  double stmts_per_round = 16 * 1.3;
  int rounds = std::max<int>(
      1, static_cast<int>(options.target_statements /
                          (options.participant_count * stmts_per_round)));

  for (int p = 0; p < options.participant_count; ++p) {
    Participant participant;
    participant.id = p;
    participant.skill = rng.NextDouble();  // "varying degrees of expertise"
    for (int round = 0; round < rounds; ++round) {
      for (const Feature& feature : Features()) {
        bool shortcut = rng.NextBool(0.75 * (1.0 - participant.skill) + 0.08);
        EmitFeature(feature, shortcut, p * 100 + round, &participant.statements,
                    &participant.truth);
      }
    }
    participants.push_back(std::move(participant));
  }
  return participants;
}

FixOutcome SimulateFixOutcome(const Participant& participant, AntiPattern type,
                              uint64_t seed) {
  // Calibrated to the §8.3 split over considered fixes: 96/187 resolved,
  // 31/187 ambiguous, 60/187 incorrect-for-requirements.
  Rng rng(seed ^ (static_cast<uint64_t>(participant.id) << 32) ^
          static_cast<uint64_t>(type));
  double roll = rng.NextDouble();
  // Skilled participants resolve a bit more.
  double resolve_p = 0.45 + 0.15 * participant.skill;
  if (roll < resolve_p) return FixOutcome::kResolved;
  if (roll < resolve_p + 0.17) return FixOutcome::kAmbiguous;
  return FixOutcome::kIncorrect;
}

}  // namespace sqlcheck::workload
