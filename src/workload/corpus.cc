#include "workload/corpus.h"

#include <map>
#include <set>

#include "common/random.h"
#include "common/strings.h"

namespace sqlcheck::workload {

bool LabeledStatement::HasTruth(AntiPattern type) const {
  for (AntiPattern t : truth) {
    if (t == type) return true;
  }
  return false;
}

std::vector<LabeledStatement> Corpus::AllStatements() const {
  std::vector<LabeledStatement> out;
  for (const auto& repo : repos) {
    out.insert(out.end(), repo.statements.begin(), repo.statements.end());
  }
  return out;
}

size_t Corpus::StatementCount() const {
  size_t n = 0;
  for (const auto& repo : repos) n += repo.statements.size();
  return n;
}

namespace {

const std::vector<std::string>& Nouns() {
  static const std::vector<std::string>* kNouns = new std::vector<std::string>{
      "users",    "orders",   "products", "invoices", "tickets",  "articles",
      "comments", "payments", "sessions", "events",   "accounts", "shipments",
      "reviews",  "tenants",  "projects", "tasks",    "messages", "customers",
  };
  return *kNouns;
}

const std::vector<std::string>& Attrs() {
  static const std::vector<std::string>* kAttrs = new std::vector<std::string>{
      "name",  "title",  "status", "amount", "quantity", "email",
      "phone", "city",   "state",  "zip",    "notes",    "created_at",
      "kind",  "weight", "height", "color",  "vendor",   "category",
  };
  return *kAttrs;
}

/// Builder for one repository's source file + labels.
class RepoBuilder {
 public:
  RepoBuilder(std::string name, Rng* rng) : name_(std::move(name)), rng_(rng) {
    source_ = "# " + name_ + " — data access layer\nimport db\n\n";
  }

  /// Appends a statement with its truth labels, embedding it in host code.
  void Add(std::string sql, std::vector<AntiPattern> truth) {
    source_ += "db.execute(\"" + sql + "\")\n";
    LabeledStatement labeled;
    labeled.sql = std::move(sql);
    labeled.truth = std::move(truth);
    statements_.push_back(std::move(labeled));
  }

  CorpusRepo Finish() {
    CorpusRepo repo;
    repo.name = name_;
    repo.source = std::move(source_);
    repo.statements = std::move(statements_);
    return repo;
  }

  Rng& rng() { return *rng_; }

 private:
  std::string name_;
  Rng* rng_;
  std::string source_;
  std::vector<LabeledStatement> statements_;
};

/// Emits one table's schema with randomized AP seeding; returns the chosen
/// table name and remembers per-table facts for the DML phase.
struct TableInfo {
  std::string name;
  std::string pk;             // "" => no PK seeded (an AP)
  bool has_mva_column = false;
  std::string mva_column;
  bool indexed_status = false;
};

TableInfo EmitSchema(RepoBuilder& repo, const std::string& base, const std::string& noun,
                     bool force_plain) {
  Rng& rng = repo.rng();
  TableInfo info;
  info.name = noun;

  std::vector<AntiPattern> truth;
  std::string cols;

  // Primary key seeding: none (AP) / generic id (AP) / descriptive (clean).
  int pk_style = force_plain ? 2 : static_cast<int>(rng.NextBelow(4));
  if (pk_style == 0) {
    truth.push_back(AntiPattern::kNoPrimaryKey);
    cols += base.substr(0, base.size() - 1) + "_code VARCHAR(16)";
  } else if (pk_style == 1) {
    truth.push_back(AntiPattern::kGenericPrimaryKey);
    cols += "id INTEGER PRIMARY KEY";
    info.pk = "id";
  } else {
    info.pk = base.substr(0, base.size() - 1) + "_id";
    cols += info.pk + " INTEGER PRIMARY KEY";
  }

  // A few ordinary attributes.
  int attr_count = static_cast<int>(rng.NextInRange(2, 5));
  std::set<std::string> used;
  for (int i = 0; i < attr_count; ++i) {
    const std::string& attr = rng.Choice(Attrs());
    if (!used.insert(attr).second) continue;
    cols += ", " + attr + " VARCHAR(40)";
  }

  // Optional AP columns.
  if (!force_plain && rng.NextBool(0.18)) {
    cols += ", price FLOAT";
    truth.push_back(AntiPattern::kRoundingErrors);
  }
  if (!force_plain && rng.NextBool(0.10)) {
    cols += ", level ENUM('low', 'mid', 'high')";
    truth.push_back(AntiPattern::kEnumeratedTypes);
  }
  if (!force_plain && rng.NextBool(0.12)) {
    info.has_mva_column = true;
    info.mva_column = "tag_ids";
    cols += ", tag_ids TEXT";
    truth.push_back(AntiPattern::kMultiValuedAttribute);
  }
  if (!force_plain && rng.NextBool(0.06)) {
    cols += ", password VARCHAR(64)";
    truth.push_back(AntiPattern::kReadablePassword);
  }
  if (!force_plain && rng.NextBool(0.06)) {
    cols += ", attachment_path VARCHAR(255)";
    truth.push_back(AntiPattern::kExternalDataStorage);
  }
  if (!force_plain && rng.NextBool(0.08)) {
    cols += ", updated_at TIMESTAMP";
    truth.push_back(AntiPattern::kMissingTimezone);
  }
  if (!force_plain && rng.NextBool(0.07)) {
    cols += ", extra1 VARCHAR(20), extra2 VARCHAR(20), extra3 VARCHAR(20)";
    truth.push_back(AntiPattern::kDataInMetadata);
  }
  if (!force_plain && rng.NextBool(0.06) && !info.pk.empty()) {
    cols += ", parent_" + info.pk + " INTEGER REFERENCES " + noun + " (" + info.pk + ")";
    truth.push_back(AntiPattern::kAdjacencyList);
  }
  if (!force_plain && rng.NextBool(0.10)) {
    // God table: pad to 12+ columns (letter suffixes, so the numbered-series
    // Data-in-Metadata rule stays quiet — that is a different AP).
    for (int i = 0; i < 9; ++i) {
      cols += ", aux_" + rng.NextWord(4, 7) + "_" + std::string(1, static_cast<char>('a' + i)) +
              " VARCHAR(10)";
    }
    truth.push_back(AntiPattern::kGodTable);
  }

  repo.Add("CREATE TABLE " + noun + " (" + cols + ")", std::move(truth));
  return info;
}

void EmitDml(RepoBuilder& repo, const TableInfo& table) {
  Rng& rng = repo.rng();

  // Wildcard select (AP) or explicit select (clean).
  if (rng.NextBool(0.55)) {
    repo.Add("SELECT * FROM " + table.name, {AntiPattern::kColumnWildcard});
  } else {
    repo.Add("SELECT name, status FROM " + table.name, {});
  }

  // Insert: implicit columns (AP) vs explicit (clean).
  if (rng.NextBool(0.6)) {
    repo.Add("INSERT INTO " + table.name + " VALUES (1, 'a', 'b')",
             {AntiPattern::kImplicitColumns});
  } else {
    repo.Add("INSERT INTO " + table.name + " (name, status) VALUES ('a', 'open')", {});
  }

  // Multi-valued attribute queries in several idioms. Idiom 3 is the §4.1
  // "Limitation": the packed column is fetched whole and split in application
  // code — a true AP that NO query rule can see (false negative for both
  // sqlcheck and dbdeo; only data analysis would catch it).
  if (table.has_mva_column) {
    switch (rng.NextBelow(4)) {
      case 0:
        repo.Add("SELECT * FROM " + table.name + " WHERE " + table.mva_column +
                     " LIKE '%,42,%'",
                 {AntiPattern::kMultiValuedAttribute, AntiPattern::kColumnWildcard,
                  AntiPattern::kPatternMatching});
        break;
      case 1:
        repo.Add("SELECT name FROM " + table.name + " WHERE " + table.mva_column +
                     " REGEXP '[[:<:]]42[[:>:]]'",
                 {AntiPattern::kMultiValuedAttribute, AntiPattern::kPatternMatching});
        break;
      case 2:
        repo.Add("UPDATE " + table.name + " SET " + table.mva_column + " = REPLACE(" +
                     table.mva_column + ", ',42', '') WHERE " + table.mva_column +
                     " LIKE '%42%'",
                 {AntiPattern::kMultiValuedAttribute, AntiPattern::kPatternMatching});
        break;
      default:
        repo.Add("SELECT " + table.mva_column + " FROM " + table.name +
                     " WHERE status = 'open'",
                 {AntiPattern::kMultiValuedAttribute});
        break;
    }
  }

  // Pattern matching AP: leading wildcard.
  if (rng.NextBool(0.25)) {
    repo.Add("SELECT name FROM " + table.name + " WHERE name LIKE '%son'",
             {AntiPattern::kPatternMatching});
  }
  // dbdeo FP bait: prefix LIKE is index-friendly — not an AP.
  if (rng.NextBool(0.25)) {
    repo.Add("SELECT name FROM " + table.name + " WHERE name LIKE 'jo%'", {});
  }
  // sqlcheck-intra FP bait: prose columns whose delimiters are punctuation,
  // not value separators. The intra-only MVA regex fires here; the
  // inter-query prose-name check suppresses it (§4.1 "Limitation").
  if (rng.NextBool(0.45)) {
    repo.Add("SELECT * FROM " + table.name + " WHERE notes LIKE '%,%'",
             {AntiPattern::kColumnWildcard, AntiPattern::kPatternMatching});
  }
  if (rng.NextBool(0.3)) {
    repo.Add("SELECT name FROM " + table.name + " WHERE address LIKE '%, %'",
             {AntiPattern::kPatternMatching});
  }

  // Ordering by RAND.
  if (rng.NextBool(0.04)) {
    repo.Add("SELECT name FROM " + table.name + " ORDER BY RAND() LIMIT 1",
             {AntiPattern::kOrderingByRand});
  }

  // Concatenate nulls.
  if (rng.NextBool(0.06)) {
    repo.Add("SELECT name || ' - ' || notes FROM " + table.name,
             {AntiPattern::kConcatenateNulls});
  }

  // Filtered select; when the repo also creates an index on the column this
  // is clean — dbdeo still flags it (Index Underuse FP).
  if (!table.pk.empty() && rng.NextBool(0.5)) {
    bool indexed = rng.NextBool(0.5);
    if (indexed) {
      repo.Add("CREATE INDEX idx_" + table.name + "_status ON " + table.name + " (status)",
               {});
      repo.Add("SELECT name FROM " + table.name + " WHERE status = 'open'", {});
    } else {
      repo.Add("SELECT name FROM " + table.name + " WHERE status = 'open'",
               {AntiPattern::kIndexUnderuse});
    }
  }
}

void EmitRepoExtras(RepoBuilder& repo, const std::vector<TableInfo>& tables) {
  Rng& rng = repo.rng();

  // Join without FK between the first two tables (No Foreign Key AP: neither
  // CREATE TABLE declared it, and here is the JOIN that needs it).
  if (tables.size() >= 2 && !tables[0].pk.empty() && rng.NextBool(0.5)) {
    repo.Add("SELECT a.name FROM " + tables[0].name + " a JOIN " + tables[1].name +
                 " b ON a." + tables[0].pk + " = b." + tables[0].pk,
             {AntiPattern::kNoForeignKey});
  }

  // DISTINCT + JOIN.
  if (tables.size() >= 2 && rng.NextBool(0.05)) {
    repo.Add("SELECT DISTINCT a.name FROM " + tables[0].name + " a JOIN " +
                 tables[1].name + " b ON a.name = b.name",
             {AntiPattern::kDistinctAndJoin,
              AntiPattern::kNoForeignKey});
  }

  // Too many joins (6-way chain).
  if (rng.NextBool(0.03)) {
    std::string join_sql = "SELECT t0.name FROM " + tables[0].name + " t0";
    std::vector<AntiPattern> truth{AntiPattern::kTooManyJoins};
    for (int i = 1; i <= 5; ++i) {
      join_sql += " JOIN " + tables[0].name + " t" + std::to_string(i) + " ON t" +
                  std::to_string(i - 1) + ".name = t" + std::to_string(i) + ".name";
    }
    // Note: t0..t5 aliases also bait dbdeo's numbered-identifier regex
    // (Data in Metadata FP).
    repo.Add(join_sql, std::move(truth));
  }

  // Clone tables: a real clone family...
  if (rng.NextBool(0.12)) {
    std::string base = rng.Choice(Nouns());
    repo.Add("CREATE TABLE " + base + "_2019 (entry_id INTEGER PRIMARY KEY, v VARCHAR(10))",
             {AntiPattern::kCloneTable});
    repo.Add("CREATE TABLE " + base + "_2020 (entry_id INTEGER PRIMARY KEY, v VARCHAR(10))",
             {AntiPattern::kCloneTable});
  }
  // ...and a lone numeric-suffix table (dbdeo FP bait: no sibling exists).
  if (rng.NextBool(0.12)) {
    repo.Add("CREATE TABLE snapshot_7 (snap_id INTEGER PRIMARY KEY, blob TEXT)", {});
  }

  // dbdeo FP bait: identifier containing 'enum' / literal containing 'float'.
  if (rng.NextBool(0.15)) {
    repo.Add("SELECT enumeration_state FROM " + tables[0].name +
                 " WHERE kind = 'floaty'",
             {});
  }

  // Index overuse: several single-column indexes on one table while queries
  // only ever filter both columns together.
  if (rng.NextBool(0.08) && !tables[0].pk.empty()) {
    repo.Add("CREATE INDEX idx_" + tables[0].name + "_a ON " + tables[0].name +
                 " (city, state)",
             {});
    repo.Add("CREATE INDEX idx_" + tables[0].name + "_b ON " + tables[0].name + " (city)",
             {AntiPattern::kIndexOveruse});
    repo.Add("SELECT name FROM " + tables[0].name +
                 " WHERE city = 'x' AND state = 'y'",
             {});
  }
}

}  // namespace

Corpus GenerateCorpus(const CorpusOptions& options) {
  Corpus corpus;
  Rng rng(options.seed);
  corpus.repos.reserve(static_cast<size_t>(options.repo_count));
  for (int r = 0; r < options.repo_count; ++r) {
    RepoBuilder builder("repo_" + std::to_string(r), &rng);
    int table_count = static_cast<int>(rng.NextInRange(2, 4));
    std::vector<TableInfo> tables;
    std::set<std::string> used;
    // Letter-coded repo suffix keeps statement texts globally unique (for
    // unambiguous ground-truth matching) without tripping numeric-suffix
    // heuristics in either detector.
    std::string repo_tag;
    for (int v = r + 1; v > 0; v /= 26) {
      repo_tag.push_back(static_cast<char>('a' + v % 26));
    }
    for (int t = 0; t < table_count; ++t) {
      std::string base = rng.Choice(Nouns());
      std::string noun = base + "_" + repo_tag;
      if (!used.insert(noun).second) continue;
      tables.push_back(EmitSchema(builder, base, noun, /*force_plain=*/t == 1));
    }
    for (const auto& table : tables) EmitDml(builder, table);
    if (!tables.empty()) EmitRepoExtras(builder, tables);
    corpus.repos.push_back(builder.Finish());
  }
  return corpus;
}

std::map<AntiPattern, DetectionScore> ScoreDetections(
    const Corpus& corpus, const std::vector<Detection>& detections,
    const std::vector<AntiPattern>& types) {
  std::set<AntiPattern> scoring(types.begin(), types.end());
  auto in_scope = [&](AntiPattern t) { return scoring.empty() || scoring.count(t) > 0; };

  // Truth and detection sets keyed by (sql, type).
  std::map<std::string, std::set<AntiPattern>> truth;
  for (const auto& repo : corpus.repos) {
    for (const auto& stmt : repo.statements) {
      for (AntiPattern t : stmt.truth) {
        if (in_scope(t)) truth[stmt.sql].insert(t);
      }
    }
  }
  std::map<std::string, std::set<AntiPattern>> found;
  for (const auto& d : detections) {
    if (in_scope(d.type) && !d.query.empty()) found[d.query].insert(d.type);
  }

  std::map<AntiPattern, DetectionScore> scores;
  for (const auto& repo : corpus.repos) {
    for (const auto& stmt : repo.statements) {
      const auto& detected = found[stmt.sql];
      std::set<AntiPattern> labels(stmt.truth.begin(), stmt.truth.end());
      for (AntiPattern t : detected) {
        if (!in_scope(t)) continue;
        if (labels.count(t) > 0) {
          ++scores[t].true_positives;
        } else {
          ++scores[t].false_positives;
        }
      }
      for (AntiPattern t : labels) {
        if (!in_scope(t)) continue;
        if (detected.count(t) == 0) ++scores[t].false_negatives;
      }
    }
  }
  return scores;
}

}  // namespace sqlcheck::workload
