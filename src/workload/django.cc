#include "workload/django.h"

#include "common/random.h"
#include "common/strings.h"

namespace sqlcheck::workload {

namespace {
using AP = AntiPattern;
}  // namespace

const std::vector<DjangoAppSpec>& DjangoAppSpecs() {
  // Table 7 of the paper (app, domain, #APs detected, APs reported).
  static const std::vector<DjangoAppSpec>* kSpecs = new std::vector<DjangoAppSpec>{
      {"Globaleaks", "Whistleblower", 10, {AP::kNoForeignKey, AP::kEnumeratedTypes}},
      {"Django-oscar", "E-commerce", 12, {AP::kRoundingErrors, AP::kIndexOveruse}},
      {"Saleor", "E-commerce", 10, {AP::kMultiValuedAttribute, AP::kIndexOveruse}},
      {"Django-crm", "CRM", 8,
       {AP::kIndexUnderuse, AP::kIndexOveruse, AP::kPatternMatching,
        AP::kNoDomainConstraint}},
      {"django-cms", "CMS", 11, {AP::kIndexOveruse}},
      {"wagtail-autocomplete", "Utility", 1, {AP::kPatternMatching}},
      {"shuup", "E-commerce", 6, {AP::kIndexOveruse}},
      {"Pretix", "E-commerce", 11,
       {AP::kIndexOveruse, AP::kPatternMatching, AP::kNoDomainConstraint}},
      {"Django-countries", "Library", 1, {AP::kMultiValuedAttribute}},
      {"micro-finance", "Finance", 8,
       {AP::kIndexUnderuse, AP::kIndexOveruse, AP::kPatternMatching,
        AP::kNoDomainConstraint}},
      {"bootcamp", "Social Ntwrk", 5, {AP::kIndexOveruse}},
      {"NetBox", "DCIM", 9,
       {AP::kIndexOveruse, AP::kPatternMatching, AP::kNoDomainConstraint}},
      {"Ralph", "Asset Mgmt", 12,
       {AP::kIndexOveruse, AP::kPatternMatching, AP::kNoDomainConstraint}},
      {"Tiaga", "E-commerce", 9, {AP::kIndexOveruse, AP::kNoDomainConstraint}},
      {"wagtail", "CMS", 10, {AP::kIndexOveruse, AP::kNoDomainConstraint}},
  };
  return *kSpecs;
}

namespace {

/// Emits statements that plant one instance of `type` in an ORM-ish workload.
void EmitAp(AP type, const std::string& app_slug, int n, std::vector<std::string>* out,
            Rng& rng) {
  // Letter-coded table id: a numeric suffix would read as a Clone Table.
  std::string t = app_slug + "_t";
  for (int v = n + 1; v > 0; v /= 26) {
    t.push_back(static_cast<char>('a' + v % 26));
  }
  switch (type) {
    case AP::kIndexOveruse:
      out->push_back("CREATE TABLE " + t +
                     " (entry_id INTEGER PRIMARY KEY, a VARCHAR(10), b VARCHAR(10), "
                     "c VARCHAR(10))");
      out->push_back("CREATE INDEX idx_" + t + "_ab ON " + t + " (a, b)");
      out->push_back("CREATE INDEX idx_" + t + "_a ON " + t + " (a)");
      out->push_back("SELECT entry_id FROM " + t + " WHERE a = 'x' AND b = 'y'");
      break;
    case AP::kIndexUnderuse:
      out->push_back("CREATE TABLE " + t +
                     " (entry_id INTEGER PRIMARY KEY, owner VARCHAR(20), v INTEGER)");
      out->push_back("SELECT v FROM " + t + " WHERE owner = 'o1'");
      break;
    case AP::kPatternMatching:
      out->push_back("CREATE TABLE " + t +
                     " (entry_id INTEGER PRIMARY KEY, title VARCHAR(80))");
      out->push_back("SELECT entry_id FROM " + t + " WHERE title LIKE '%term%'");
      break;
    case AP::kNoDomainConstraint:
      // Data AP: visible once the workload is executed and the database
      // profiled (the bench deploys the app like §8.4 deployed on PostgreSQL).
      out->push_back("CREATE TABLE " + t +
                     " (entry_id INTEGER PRIMARY KEY, rating INTEGER)");
      for (int i = 0; i < 8; ++i) {
        out->push_back("INSERT INTO " + t + " (entry_id, rating) VALUES (" +
                       std::to_string(i) + ", " + std::to_string(1 + i % 5) + ")");
      }
      break;
    case AP::kRoundingErrors:
      out->push_back("CREATE TABLE " + t +
                     " (entry_id INTEGER PRIMARY KEY, total FLOAT)");
      break;
    case AP::kEnumeratedTypes:
      out->push_back("CREATE TABLE " + t +
                     " (entry_id INTEGER PRIMARY KEY, state VARCHAR(8) CHECK (state IN "
                     "('new', 'open', 'done')))");
      break;
    case AP::kMultiValuedAttribute:
      out->push_back("CREATE TABLE " + t +
                     " (entry_id INTEGER PRIMARY KEY, country_ids TEXT)");
      out->push_back("SELECT entry_id FROM " + t + " WHERE country_ids LIKE '%,US,%'");
      break;
    case AP::kNoForeignKey:
      out->push_back("CREATE TABLE " + t +
                     " (entry_id INTEGER PRIMARY KEY, name VARCHAR(20))");
      out->push_back("CREATE TABLE " + t +
                     "_child (child_id INTEGER PRIMARY KEY, entry_id INTEGER)");
      out->push_back("SELECT c.child_id FROM " + t + " p JOIN " + t +
                     "_child c ON p.entry_id = c.entry_id");
      break;
    case AP::kGenericPrimaryKey:
      out->push_back("CREATE TABLE " + t + " (id INTEGER PRIMARY KEY, v VARCHAR(10))");
      break;
    case AP::kColumnWildcard:
      out->push_back("CREATE TABLE " + t + " (entry_id INTEGER PRIMARY KEY, v VARCHAR(10))");
      out->push_back("SELECT * FROM " + t);
      break;
    case AP::kImplicitColumns:
      out->push_back("CREATE TABLE " + t + " (entry_id INTEGER PRIMARY KEY, v VARCHAR(10))");
      out->push_back("INSERT INTO " + t + " VALUES (" + std::to_string(n) + ", 'v')");
      break;
    default:
      out->push_back("CREATE TABLE " + t + " (id INTEGER PRIMARY KEY, v VARCHAR(10))");
      break;
  }
  (void)rng;
}

/// Low-severity filler APs Django ORMs emit by default (the paper attributes
/// several detections to Django's defaults, §8.4).
const std::vector<AP>& FillerAps() {
  static const std::vector<AP>* kFiller = new std::vector<AP>{
      AP::kGenericPrimaryKey, AP::kColumnWildcard, AP::kImplicitColumns,
  };
  return *kFiller;
}

}  // namespace

std::vector<std::string> GenerateDjangoWorkload(const DjangoAppSpec& spec, uint64_t seed) {
  std::vector<std::string> out;
  Rng rng(seed + std::hash<std::string>{}(spec.name));
  std::string slug = ToLower(spec.name);
  for (char& c : slug) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }

  int n = 0;
  // High-impact APs first (the ones the paper reported upstream)...
  for (AP type : spec.reported) EmitAp(type, slug, n++, &out, rng);
  // ...then ORM-default filler up to the detected count.
  int remaining = spec.detected - static_cast<int>(spec.reported.size());
  for (int i = 0; i < remaining; ++i) {
    EmitAp(FillerAps()[static_cast<size_t>(i) % FillerAps().size()], slug, n++, &out, rng);
  }
  // A clean query so detection has negatives to skip (filters on the PK,
  // which is implicitly indexed).
  out.push_back("SELECT entry_id FROM " + slug + "_ta WHERE entry_id = 1");
  return out;
}

}  // namespace sqlcheck::workload
