#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck::workload {

/// \brief One embedded SQL statement with its seeded ground truth.
struct LabeledStatement {
  std::string sql;
  std::vector<AntiPattern> truth;  ///< APs genuinely present (may be empty).

  bool HasTruth(AntiPattern type) const;
};

/// \brief One synthetic "repository": a host-language source file carrying
/// string-quoted embedded SQL, plus the per-statement ground truth.
struct CorpusRepo {
  std::string name;
  std::string source;  ///< Python-ish file contents (fed to the extractor).
  std::vector<LabeledStatement> statements;
};

struct CorpusOptions {
  int repo_count = 200;
  uint64_t seed = 1406;  ///< Homage to the paper's 1406 repositories.
};

/// \brief The synthetic query benchmark standing in for the paper's GitHub
/// corpus (§8.1). Statements carry ground-truth labels so precision/recall
/// can be computed mechanically — the substitute for the authors' manual
/// analysis. The generator seeds:
///   * true positives for all query-detectable AP types, with realistic
///     variants (e.g. several multi-valued-attribute idioms);
///   * false-positive bait for dbdeo's context-free regexes (identifiers
///     containing type keywords, t1/t2 aliases, prefix LIKEs, indexed
///     columns filtered in other statements, lone numeric-suffix tables);
///   * false-positive bait for sqlcheck's intra-query rules that only the
///     inter-query context resolves (prose columns queried with LIKE).
struct Corpus {
  std::vector<CorpusRepo> repos;

  std::vector<LabeledStatement> AllStatements() const;
  size_t StatementCount() const;
};

Corpus GenerateCorpus(const CorpusOptions& options = {});

/// \brief Precision/recall bookkeeping for one detector run against the
/// corpus ground truth, per AP type.
struct DetectionScore {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;

  double Precision() const {
    int denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double Recall() const {
    int denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
};

/// \brief Scores detections against the corpus truth. Detections are matched
/// to statements by raw SQL text; `types` restricts scoring to a subset (as
/// Table 2 does) — pass empty to score every type.
std::map<AntiPattern, DetectionScore> ScoreDetections(
    const Corpus& corpus, const std::vector<Detection>& detections,
    const std::vector<AntiPattern>& types);

}  // namespace sqlcheck::workload
