#include "workload/globaleaks.h"

#include "common/random.h"
#include "engine/executor.h"

namespace sqlcheck::workload {

namespace {

std::string UserId(size_t i) { return "U" + std::to_string(i); }
std::string TenantId(size_t i) { return "T" + std::to_string(i); }
std::string Zone(Rng& rng) { return "Z" + std::to_string(rng.NextBelow(8)); }
std::string Role(Rng& rng) { return "R" + std::to_string(1 + rng.NextBelow(3)); }

void MustRun(Executor& exec, const std::string& sql_text) {
  auto r = exec.ExecuteSql(sql_text);
  if (!r.ok()) {
    // Workload construction bugs should fail loudly in tests/benches.
    std::abort();
  }
}

}  // namespace

void Globaleaks::BuildWithAps(Database* db, const GlobaleaksOptions& options) {
  Executor exec(db, options.seed);
  Rng rng(options.seed);

  MustRun(exec,
          "CREATE TABLE Tenants (tenant_id VARCHAR(16) PRIMARY KEY, zone_id VARCHAR(8), "
          "active BOOLEAN, user_ids TEXT)");
  MustRun(exec,
          "CREATE TABLE Users (user_id VARCHAR(16) PRIMARY KEY, name VARCHAR(32), "
          "role VARCHAR(4) CHECK (role IN ('R1', 'R2', 'R3')), email VARCHAR(48))");
  // Questionnaire deliberately lacks the FK to Tenants (Example 3).
  MustRun(exec,
          "CREATE TABLE Questionnaire (questionnaire_id INTEGER PRIMARY KEY, "
          "tenant_id VARCHAR(16), name VARCHAR(32), editable BOOLEAN)");

  size_t user_count = options.tenant_count * options.users_per_tenant;
  for (size_t u = 0; u < user_count; ++u) {
    MustRun(exec, "INSERT INTO Users (user_id, name, role, email) VALUES ('" + UserId(u) +
                      "', 'name_" + std::to_string(u) + "', '" + Role(rng) + "', 'u" +
                      std::to_string(u) + "@example.org')");
  }
  for (size_t t = 0; t < options.tenant_count; ++t) {
    // Pack this tenant's users into the comma-separated user_ids column.
    std::string csv;
    for (size_t k = 0; k < options.users_per_tenant; ++k) {
      if (k > 0) csv += ",";
      csv += UserId(t * options.users_per_tenant + k);
    }
    MustRun(exec, "INSERT INTO Tenants (tenant_id, zone_id, active, user_ids) VALUES ('" +
                      TenantId(t) + "', '" + Zone(rng) + "', true, '" + csv + "')");
    MustRun(exec,
            "INSERT INTO Questionnaire (questionnaire_id, tenant_id, name, editable) "
            "VALUES (" +
                std::to_string(t) + ", '" + TenantId(t) + "', 'q_" + std::to_string(t) +
                "', true)");
  }
}

void Globaleaks::BuildRefactored(Database* db, const GlobaleaksOptions& options) {
  Executor exec(db, options.seed);
  Rng rng(options.seed);

  MustRun(exec,
          "CREATE TABLE Tenants (tenant_id VARCHAR(16) PRIMARY KEY, zone_id VARCHAR(8), "
          "active BOOLEAN)");
  MustRun(exec,
          "CREATE TABLE Role (role_id INTEGER PRIMARY KEY, role_name VARCHAR(8) UNIQUE)");
  MustRun(exec,
          "CREATE TABLE Users (user_id VARCHAR(16) PRIMARY KEY, name VARCHAR(32), "
          "role_id INTEGER REFERENCES Role (role_id), email VARCHAR(48))");
  MustRun(exec,
          "CREATE TABLE Hosting (user_id VARCHAR(16) REFERENCES Users (user_id), "
          "tenant_id VARCHAR(16) REFERENCES Tenants (tenant_id), "
          "PRIMARY KEY (user_id, tenant_id))");
  MustRun(exec,
          "CREATE TABLE Questionnaire (questionnaire_id INTEGER PRIMARY KEY, "
          "tenant_id VARCHAR(16) REFERENCES Tenants (tenant_id), name VARCHAR(32), "
          "editable BOOLEAN)");
  // The intersection table is queried by user; index it (the refactor's point).
  MustRun(exec, "CREATE INDEX idx_hosting_user ON Hosting (user_id)");
  MustRun(exec, "CREATE INDEX idx_hosting_tenant ON Hosting (tenant_id)");

  for (int r = 1; r <= 3; ++r) {
    MustRun(exec, "INSERT INTO Role (role_id, role_name) VALUES (" + std::to_string(r) +
                      ", 'R" + std::to_string(r) + "')");
  }
  size_t user_count = options.tenant_count * options.users_per_tenant;
  for (size_t u = 0; u < user_count; ++u) {
    MustRun(exec, "INSERT INTO Users (user_id, name, role_id, email) VALUES ('" +
                      UserId(u) + "', 'name_" + std::to_string(u) + "', " +
                      std::to_string(1 + rng.NextBelow(3)) + ", 'u" + std::to_string(u) +
                      "@example.org')");
  }
  for (size_t t = 0; t < options.tenant_count; ++t) {
    MustRun(exec, "INSERT INTO Tenants (tenant_id, zone_id, active) VALUES ('" +
                      TenantId(t) + "', '" + Zone(rng) + "', true)");
    MustRun(exec,
            "INSERT INTO Questionnaire (questionnaire_id, tenant_id, name, editable) "
            "VALUES (" +
                std::to_string(t) + ", '" + TenantId(t) + "', 'q_" + std::to_string(t) +
                "', true)");
  }
  for (size_t t = 0; t < options.tenant_count; ++t) {
    for (size_t k = 0; k < options.users_per_tenant; ++k) {
      MustRun(exec, "INSERT INTO Hosting (user_id, tenant_id) VALUES ('" +
                        UserId(t * options.users_per_tenant + k) + "', '" + TenantId(t) +
                        "')");
    }
  }
}

std::string Globaleaks::ApWorkloadScript() {
  return R"sql(
CREATE TABLE Tenants (tenant_id VARCHAR(16) PRIMARY KEY, zone_id VARCHAR(8), active BOOLEAN, user_ids TEXT);
CREATE TABLE Users (user_id VARCHAR(16) PRIMARY KEY, name VARCHAR(32), role VARCHAR(4) CHECK (role IN ('R1', 'R2', 'R3')), email VARCHAR(48));
CREATE TABLE Questionnaire (questionnaire_id INTEGER PRIMARY KEY, tenant_id VARCHAR(16), name VARCHAR(32), editable BOOLEAN);
SELECT * FROM Tenants WHERE user_ids LIKE '[[:<:]]U1[[:>:]]';
SELECT * FROM Tenants AS t JOIN Users AS u ON t.user_ids LIKE '[[:<:]]' || u.user_id || '[[:>:]]' WHERE t.tenant_id = 'T1';
SELECT q.name, q.editable, t.active FROM Questionnaire q JOIN Tenants t ON t.tenant_id = q.tenant_id WHERE q.editable = true;
INSERT INTO Tenants VALUES ('T1', 'Z1', true, 'U1,U2');
UPDATE Tenants SET user_ids = REPLACE(user_ids, ',U1', '') WHERE user_ids LIKE '%U1%';
)sql";
}

std::string Globaleaks::Task1Ap(const std::string& user_id) {
  return "SELECT * FROM Tenants WHERE user_ids LIKE '[[:<:]]" + user_id + "[[:>:]]'";
}

std::string Globaleaks::Task1Fixed(const std::string& user_id) {
  return "SELECT t.tenant_id, t.zone_id, t.active FROM Hosting h JOIN Tenants t "
         "ON h.tenant_id = t.tenant_id WHERE h.user_id = '" +
         user_id + "'";
}

std::string Globaleaks::Task2Ap(const std::string& tenant_id) {
  return "SELECT u.user_id, u.name, u.email FROM Tenants AS t JOIN Users AS u "
         "ON t.user_ids LIKE '[[:<:]]' || u.user_id || '[[:>:]]' WHERE t.tenant_id = '" +
         tenant_id + "'";
}

std::string Globaleaks::Task2Fixed(const std::string& tenant_id) {
  return "SELECT u.user_id, u.name, u.email FROM Hosting h JOIN Users u "
         "ON h.user_id = u.user_id WHERE h.tenant_id = '" +
         tenant_id + "'";
}

std::string Globaleaks::Task3Ap(const std::string& user_id) {
  return "UPDATE Tenants SET user_ids = REPLACE(REPLACE(user_ids, '," + user_id +
         "', ''), '" + user_id + ",', '') WHERE user_ids LIKE '%" + user_id + "%'";
}

std::string Globaleaks::Task3Fixed(const std::string& user_id) {
  return "DELETE FROM Hosting WHERE user_id = '" + user_id + "'";
}

std::string Globaleaks::SomeUserId(const GlobaleaksOptions& options) {
  return UserId(options.tenant_count * options.users_per_tenant / 2);
}

std::string Globaleaks::SomeTenantId(const GlobaleaksOptions& options) {
  return TenantId(options.tenant_count / 2);
}

}  // namespace sqlcheck::workload
