#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "storage/database.h"

namespace sqlcheck::workload {

/// \brief Scale knobs for the synthetic GlobaLeaks deployment. The paper
/// loads 10M rows into PostgreSQL; we default to a laptop-scale row count
/// that preserves the *ratios* the figures report.
struct GlobaleaksOptions {
  size_t tenant_count = 400;
  size_t users_per_tenant = 25;  ///< => users = tenant_count * users_per_tenant.
  uint64_t seed = 17;
};

/// \brief Builders for the GlobaLeaks case study (§2.1, §8.2): the same
/// application in its anti-pattern form and its refactored form.
///
/// AP form (Figure 1):
///   Tenants(tenant_id, zone_id, active, user_ids /* comma-separated! */)
///   Users(user_id, name, role /* CHECK IN ('R1','R2','R3') */, email)
///   Questionnaire(questionnaire_id, tenant_id /* no FK! */, name, editable)
///
/// Refactored form (Figures 2 and 5):
///   Tenants(tenant_id, zone_id, active)
///   Users(user_id, name, role_id -> Role, email)
///   Role(role_id, role_name)
///   Hosting(user_id -> Users, tenant_id -> Tenants)  [intersection table]
///   Questionnaire(questionnaire_id, tenant_id -> Tenants, name, editable)
class Globaleaks {
 public:
  /// Builds the anti-pattern deployment into `db`.
  static void BuildWithAps(Database* db, const GlobaleaksOptions& options = {});

  /// Builds the refactored deployment into `db`.
  static void BuildRefactored(Database* db, const GlobaleaksOptions& options = {});

  /// The application's SQL workload (DDL + representative queries) in AP
  /// form — what sqlcheck analyzes in the §8.2 experiment.
  static std::string ApWorkloadScript();

  // --------- the three tasks of Figure 3 (AP vs no-AP variants) -----------
  /// Task 1: list the tenants a user is associated with.
  static std::string Task1Ap(const std::string& user_id);
  static std::string Task1Fixed(const std::string& user_id);
  /// Task 2: retrieve the users served by a tenant.
  static std::string Task2Ap(const std::string& tenant_id);
  static std::string Task2Fixed(const std::string& tenant_id);
  /// Task 3: detach a deleted user from every tenant (the §5.1 integrity
  /// chore vs a single indexed DELETE).
  static std::string Task3Ap(const std::string& user_id);
  static std::string Task3Fixed(const std::string& user_id);

  /// Deterministic existing user/tenant ids at scale `options`.
  static std::string SomeUserId(const GlobaleaksOptions& options);
  static std::string SomeTenantId(const GlobaleaksOptions& options);
};

}  // namespace sqlcheck::workload
