#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rules/rule.h"

namespace sqlcheck::workload {

/// \brief One simulated study participant: their SQL for the bike e-commerce
/// application (§8.3) plus the seeded ground truth per statement.
struct Participant {
  int id = 0;
  double skill = 0.5;  ///< 0 = novice (many APs), 1 = expert (few APs).
  std::vector<std::string> statements;
  std::vector<std::vector<AntiPattern>> truth;  ///< Parallel to `statements`.
};

struct UserStudyOptions {
  int participant_count = 23;       ///< The paper recruited 23 students.
  int target_statements = 987;      ///< Total statements across participants.
  uint64_t seed = 23;
};

/// \brief Simulated acceptance decision for one suggested fix, following the
/// observed §8.3 split: resolved / ignored-as-ambiguous / ignored-as-incorrect.
enum class FixOutcome { kResolved, kAmbiguous, kIncorrect };

/// \brief Generates the 23 participants' query sets for the bike e-commerce
/// schema, with per-participant AP propensity scaled by (1 - skill).
std::vector<Participant> GenerateUserStudy(const UserStudyOptions& options = {});

/// \brief Deterministically simulates whether a participant adopts a fix.
/// Calibrated to the paper's observed acceptance rates (96 resolved, 31
/// ambiguous, 60 incorrect out of 187 considered).
FixOutcome SimulateFixOutcome(const Participant& participant, AntiPattern type,
                              uint64_t seed);

}  // namespace sqlcheck::workload
