#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rules/rule.h"
#include "storage/database.h"

namespace sqlcheck::workload {

/// \brief Spec for one synthetic Kaggle-style database: its display name and
/// the AP classes the paper reports finding in the real dataset (Table 6).
/// `ap_target` is the paper's per-database AP count; the synthesizer seeds
/// enough instances of each class to land near it.
struct KaggleSpec {
  std::string name;
  std::vector<AntiPattern> ap_types;
  int ap_target = 0;
};

/// \brief The 31 database specs of Table 6 (name, detected AP classes, count).
const std::vector<KaggleSpec>& KaggleSpecs();

/// \brief Materializes one spec as a populated in-memory database whose data
/// exhibits exactly the seeded AP classes — the stand-in for downloading the
/// SQLite file from Kaggle (§8.4 "Data Analysis").
std::unique_ptr<Database> SynthesizeKaggleDatabase(const KaggleSpec& spec,
                                                   uint64_t seed = 31);

}  // namespace sqlcheck::workload
