#pragma once

#include <string>
#include <vector>

#include "catalog/value.h"
#include "sql/ast.h"

namespace sqlcheck {

/// \brief Resolved SQL data types (union of the dialects we target).
enum class TypeId {
  kSmallInt,
  kInteger,
  kBigInt,
  kSerial,       ///< Auto-incrementing integer (PostgreSQL SERIAL/BIGSERIAL).
  kFloat,        ///< Finite-precision binary float — the Rounding Errors AP type.
  kDouble,
  kNumeric,      ///< Exact decimal (NUMERIC/DECIMAL).
  kChar,
  kVarchar,
  kText,
  kBoolean,
  kDate,
  kTime,
  kTimestamp,    ///< Without time zone — the Missing Timezone AP type.
  kTimestampTz,
  kEnum,         ///< MySQL ENUM — the Enumerated Types AP type.
  kBlob,
  kUuid,
  kJson,
  kUnknown,
};

const char* TypeIdName(TypeId id);

/// \brief A fully resolved column type.
struct DataType {
  TypeId id = TypeId::kUnknown;
  int64_t length = 0;     ///< VARCHAR(n)/CHAR(n).
  int64_t precision = 0;  ///< NUMERIC(p,s).
  int64_t scale = 0;
  std::vector<std::string> enum_values;

  /// Resolves a parsed type name (dialect keyword) to a DataType.
  static DataType FromTypeName(const sql::TypeName& name);
  static DataType Make(TypeId id) {
    DataType t;
    t.id = id;
    return t;
  }

  bool IsNumeric() const;
  /// True for binary floating types that make aggregate math inexact.
  bool IsFiniteBinaryFloat() const { return id == TypeId::kFloat || id == TypeId::kDouble; }
  bool IsTextual() const { return id == TypeId::kChar || id == TypeId::kVarchar || id == TypeId::kText; }
  bool IsTemporal() const {
    return id == TypeId::kDate || id == TypeId::kTime || id == TypeId::kTimestamp ||
           id == TypeId::kTimestampTz;
  }
  bool IsIntegerLike() const {
    return id == TypeId::kSmallInt || id == TypeId::kInteger || id == TypeId::kBigInt ||
           id == TypeId::kSerial;
  }

  /// SQL rendering ("VARCHAR(30)", "NUMERIC(10, 2)", ...).
  std::string ToSql() const;

  /// Coerces `v` toward this type where a lossless conversion exists
  /// (e.g. int literal into FLOAT column). Returns `v` unchanged otherwise.
  Value Coerce(const Value& v) const;

  /// True if `v` is storable in this type without obvious mismatch. NULL is
  /// always accepted (nullability is a separate constraint).
  bool Accepts(const Value& v) const;
};

}  // namespace sqlcheck
