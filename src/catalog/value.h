#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sqlcheck {

/// \brief Runtime value held in a table cell or produced by evaluation.
///
/// SQL three-valued-logic NULL handling lives in the evaluator; Value itself
/// only records *that* a cell is null.
class Value {
 public:
  Value() : data_(Null{}) {}

  static Value Null_() { return Value(); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Real(double v) { return Value(Data(v)); }
  static Value Str(std::string v) { return Value(Data(std::move(v))); }
  static Value Bool(bool v) { return Value(Data(v)); }

  bool is_null() const { return std::holds_alternative<Null>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_real() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }
  bool is_numeric() const { return is_int() || is_real(); }

  int64_t AsInt() const;
  double AsReal() const;       ///< Int promotes to double.
  bool AsBool() const;
  const std::string& AsString() const;

  /// Display form ("NULL", "42", "3.14", "abc", "true").
  std::string ToDisplay() const;

  /// Total order used by indexes and ORDER BY: NULL < bool < numeric < string.
  /// (SQL NULL comparison semantics are applied above this layer.)
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  size_t Hash() const;

 private:
  struct Null {
    bool operator==(const Null&) const { return true; }
  };
  using Data = std::variant<Null, int64_t, double, std::string, bool>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

/// \brief A physical row.
using Row = std::vector<Value>;

/// \brief Composite key (one or more column values) for index lookups.
struct CompositeKey {
  std::vector<Value> values;

  bool operator==(const CompositeKey& other) const;
  bool operator<(const CompositeKey& other) const;
};

struct CompositeKeyHash {
  size_t operator()(const CompositeKey& key) const;
};

}  // namespace sqlcheck
