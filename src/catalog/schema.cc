#include "catalog/schema.h"

#include "common/strings.h"
#include "sql/printer.h"

namespace sqlcheck {

const ColumnSchema* TableSchema::FindColumn(std::string_view column) const {
  for (const auto& c : columns) {
    if (EqualsIgnoreCase(c.name, column)) return &c;
  }
  return nullptr;
}

int TableSchema::ColumnIndex(std::string_view column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, column)) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::string> TableSchema::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(columns.size());
  for (const auto& c : columns) out.push_back(c.name);
  return out;
}

namespace {

Value LiteralToValue(const sql::Expr& e) {
  switch (e.kind) {
    case sql::ExprKind::kNullLiteral:
      return Value::Null_();
    case sql::ExprKind::kBoolLiteral:
      return Value::Bool(e.text == "true");
    case sql::ExprKind::kNumberLiteral:
      if (e.text.find('.') != std::string::npos || e.text.find('e') != std::string::npos ||
          e.text.find('E') != std::string::npos) {
        return Value::Real(std::strtod(e.text.c_str(), nullptr));
      }
      return Value::Int(std::strtoll(e.text.c_str(), nullptr, 10));
    case sql::ExprKind::kStringLiteral:
      return Value::Str(std::string(e.text));
    default:
      return Value::Null_();
  }
}

}  // namespace

TableSchema TableSchema::FromCreateTable(const sql::CreateTableStatement& stmt) {
  TableSchema schema;
  schema.name = stmt.table;
  for (const auto& col : stmt.columns) {
    ColumnSchema c;
    c.name = col.name;
    c.type = DataType::FromTypeName(col.type);
    c.not_null = col.not_null || col.primary_key;
    c.unique = col.unique;
    c.auto_increment = col.auto_increment || c.type.id == TypeId::kSerial;
    if (col.default_value) c.default_value = LiteralToValue(*col.default_value);
    schema.columns.push_back(std::move(c));

    if (col.primary_key) schema.primary_key.emplace_back(col.name);
    if (col.references.has_value()) {
      ForeignKeySchema fk;
      fk.columns = {std::string(col.name)};
      fk.ref_table = col.references->table;
      fk.ref_columns = sql::ToStringVector(col.references->columns);
      fk.on_delete_cascade = col.references->on_delete_cascade;
      schema.foreign_keys.push_back(std::move(fk));
    }
    if (col.check) {
      CheckConstraintSchema check;
      check.expression_sql = sql::PrintExpr(*col.check);
      check.expression = std::shared_ptr<const sql::Expr>(col.check->Clone().release());
      schema.checks.push_back(std::move(check));
    }
  }
  for (const auto& con : stmt.constraints) {
    switch (con.kind) {
      case sql::TableConstraintKind::kPrimaryKey:
        schema.primary_key = sql::ToStringVector(con.columns);
        for (const auto& pk_col : con.columns) {
          int idx = schema.ColumnIndex(pk_col);
          if (idx >= 0) schema.columns[static_cast<size_t>(idx)].not_null = true;
        }
        break;
      case sql::TableConstraintKind::kForeignKey: {
        ForeignKeySchema fk;
        fk.name = con.name;
        fk.columns = sql::ToStringVector(con.columns);
        fk.ref_table = con.reference.table;
        fk.ref_columns = sql::ToStringVector(con.reference.columns);
        fk.on_delete_cascade = con.reference.on_delete_cascade;
        schema.foreign_keys.push_back(std::move(fk));
        break;
      }
      case sql::TableConstraintKind::kUnique:
        schema.unique_constraints.push_back(sql::ToStringVector(con.columns));
        break;
      case sql::TableConstraintKind::kCheck: {
        CheckConstraintSchema check;
        check.name = con.name;
        if (con.check) {
          check.expression_sql = sql::PrintExpr(*con.check);
          check.expression = std::shared_ptr<const sql::Expr>(con.check->Clone().release());
        }
        schema.checks.push_back(std::move(check));
        break;
      }
    }
  }
  return schema;
}

}  // namespace sqlcheck
