#include "catalog/data_type.h"

#include "common/strings.h"

namespace sqlcheck {

const char* TypeIdName(TypeId id) {
  switch (id) {
    case TypeId::kSmallInt: return "SMALLINT";
    case TypeId::kInteger: return "INTEGER";
    case TypeId::kBigInt: return "BIGINT";
    case TypeId::kSerial: return "SERIAL";
    case TypeId::kFloat: return "FLOAT";
    case TypeId::kDouble: return "DOUBLE PRECISION";
    case TypeId::kNumeric: return "NUMERIC";
    case TypeId::kChar: return "CHAR";
    case TypeId::kVarchar: return "VARCHAR";
    case TypeId::kText: return "TEXT";
    case TypeId::kBoolean: return "BOOLEAN";
    case TypeId::kDate: return "DATE";
    case TypeId::kTime: return "TIME";
    case TypeId::kTimestamp: return "TIMESTAMP";
    case TypeId::kTimestampTz: return "TIMESTAMP WITH TIME ZONE";
    case TypeId::kEnum: return "ENUM";
    case TypeId::kBlob: return "BLOB";
    case TypeId::kUuid: return "UUID";
    case TypeId::kJson: return "JSON";
    case TypeId::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

DataType DataType::FromTypeName(const sql::TypeName& name) {
  DataType t;
  std::string n = ToLower(name.name);
  if (!name.enum_values.empty() || n == "enum") {
    t.id = TypeId::kEnum;
    t.enum_values = name.enum_values;
    return t;
  }
  if (n == "smallint" || n == "int2" || n == "tinyint") {
    t.id = TypeId::kSmallInt;
  } else if (n == "int" || n == "integer" || n == "int4" || n == "mediumint") {
    t.id = TypeId::kInteger;
  } else if (n == "bigint" || n == "int8") {
    t.id = TypeId::kBigInt;
  } else if (n == "serial" || n == "bigserial" || n == "smallserial") {
    t.id = TypeId::kSerial;
  } else if (n == "float" || n == "real" || n == "float4") {
    t.id = TypeId::kFloat;
  } else if (n == "double" || n == "double precision" || n == "float8") {
    t.id = TypeId::kDouble;
  } else if (n == "numeric" || n == "decimal" || n == "dec" || n == "money") {
    t.id = TypeId::kNumeric;
    if (!name.params.empty()) t.precision = name.params[0];
    if (name.params.size() > 1) t.scale = name.params[1];
  } else if (n == "char" || n == "character" || n == "nchar") {
    t.id = TypeId::kChar;
    if (!name.params.empty()) t.length = name.params[0];
  } else if (n == "varchar" || n == "character varying" || n == "nvarchar" || n == "varchar2") {
    t.id = TypeId::kVarchar;
    if (!name.params.empty()) t.length = name.params[0];
  } else if (n == "text" || n == "clob" || n == "string" || n == "tinytext" ||
             n == "mediumtext" || n == "longtext") {
    t.id = TypeId::kText;
  } else if (n == "boolean" || n == "bool" || n == "bit") {
    t.id = TypeId::kBoolean;
  } else if (n == "date") {
    t.id = TypeId::kDate;
  } else if (n == "time") {
    t.id = TypeId::kTime;
  } else if (n == "timestamp" || n == "datetime" || n == "smalldatetime") {
    t.id = name.with_time_zone ? TypeId::kTimestampTz : TypeId::kTimestamp;
  } else if (n == "timestamptz" || n == "datetimeoffset") {
    t.id = TypeId::kTimestampTz;
  } else if (n == "blob" || n == "bytea" || n == "binary" || n == "varbinary" ||
             n == "longblob" || n == "mediumblob" || n == "image") {
    t.id = TypeId::kBlob;
  } else if (n == "uuid" || n == "uniqueidentifier" || n == "guid") {
    t.id = TypeId::kUuid;
  } else if (n == "json" || n == "jsonb") {
    t.id = TypeId::kJson;
  } else {
    t.id = TypeId::kUnknown;
  }
  return t;
}

bool DataType::IsNumeric() const {
  return IsIntegerLike() || IsFiniteBinaryFloat() || id == TypeId::kNumeric;
}

std::string DataType::ToSql() const {
  std::string out = TypeIdName(id);
  if (id == TypeId::kEnum && !enum_values.empty()) {
    out += "(";
    for (size_t i = 0; i < enum_values.size(); ++i) {
      if (i > 0) out += ", ";
      out += "'" + enum_values[i] + "'";
    }
    out += ")";
  } else if ((id == TypeId::kVarchar || id == TypeId::kChar) && length > 0) {
    out += "(" + std::to_string(length) + ")";
  } else if (id == TypeId::kNumeric && precision > 0) {
    out += "(" + std::to_string(precision);
    if (scale > 0) out += ", " + std::to_string(scale);
    out += ")";
  }
  return out;
}

Value DataType::Coerce(const Value& v) const {
  if (v.is_null()) return v;
  if (id == TypeId::kFloat && v.is_numeric()) {
    // Single-precision storage really loses bits — this is what makes the
    // Rounding Errors AP measurable (aggregates and equality drift).
    return Value::Real(static_cast<double>(static_cast<float>(v.AsReal())));
  }
  if (id == TypeId::kDouble || id == TypeId::kNumeric) {
    if (v.is_int()) return Value::Real(v.AsReal());
    return v;
  }
  if (IsIntegerLike() && v.is_real()) {
    double d = v.AsReal();
    if (d == static_cast<double>(static_cast<int64_t>(d))) return Value::Int(v.AsInt());
    return v;
  }
  if (id == TypeId::kBoolean && v.is_int()) return Value::Bool(v.AsInt() != 0);
  return v;
}

bool DataType::Accepts(const Value& v) const {
  if (v.is_null()) return true;
  switch (id) {
    case TypeId::kSmallInt:
    case TypeId::kInteger:
    case TypeId::kBigInt:
    case TypeId::kSerial:
      return v.is_int() || (v.is_real() && v.AsReal() == static_cast<double>(v.AsInt()));
    case TypeId::kFloat:
    case TypeId::kDouble:
    case TypeId::kNumeric:
      return v.is_numeric();
    case TypeId::kBoolean:
      return v.is_bool() || v.is_int();
    case TypeId::kEnum:
      // Membership is enforced as a domain constraint; type-wise it's a string.
      return v.is_string();
    case TypeId::kChar:
    case TypeId::kVarchar:
    case TypeId::kText:
    case TypeId::kDate:
    case TypeId::kTime:
    case TypeId::kTimestamp:
    case TypeId::kTimestampTz:
    case TypeId::kBlob:
    case TypeId::kUuid:
    case TypeId::kJson:
      return v.is_string();
    case TypeId::kUnknown:
      return true;
  }
  return true;
}

}  // namespace sqlcheck
