#include "catalog/data_type.h"

#include <string_view>
#include <unordered_map>

#include "common/strings.h"

namespace sqlcheck {

const char* TypeIdName(TypeId id) {
  switch (id) {
    case TypeId::kSmallInt: return "SMALLINT";
    case TypeId::kInteger: return "INTEGER";
    case TypeId::kBigInt: return "BIGINT";
    case TypeId::kSerial: return "SERIAL";
    case TypeId::kFloat: return "FLOAT";
    case TypeId::kDouble: return "DOUBLE PRECISION";
    case TypeId::kNumeric: return "NUMERIC";
    case TypeId::kChar: return "CHAR";
    case TypeId::kVarchar: return "VARCHAR";
    case TypeId::kText: return "TEXT";
    case TypeId::kBoolean: return "BOOLEAN";
    case TypeId::kDate: return "DATE";
    case TypeId::kTime: return "TIME";
    case TypeId::kTimestamp: return "TIMESTAMP";
    case TypeId::kTimestampTz: return "TIMESTAMP WITH TIME ZONE";
    case TypeId::kEnum: return "ENUM";
    case TypeId::kBlob: return "BLOB";
    case TypeId::kUuid: return "UUID";
    case TypeId::kJson: return "JSON";
    case TypeId::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

namespace {

/// Lowercased spelling -> TypeId; one hash probe instead of the ~40 string
/// compares this function used to chain (it runs per column per type-aware
/// rule evaluation). "enum"/"timestamp"-family special cases are handled by
/// the caller.
const std::unordered_map<std::string_view, TypeId>& TypeNameMap() {
  static const auto* map = new std::unordered_map<std::string_view, TypeId>{
      {"smallint", TypeId::kSmallInt}, {"int2", TypeId::kSmallInt},
      {"tinyint", TypeId::kSmallInt},  {"int", TypeId::kInteger},
      {"integer", TypeId::kInteger},   {"int4", TypeId::kInteger},
      {"mediumint", TypeId::kInteger}, {"bigint", TypeId::kBigInt},
      {"int8", TypeId::kBigInt},       {"serial", TypeId::kSerial},
      {"bigserial", TypeId::kSerial},  {"smallserial", TypeId::kSerial},
      {"float", TypeId::kFloat},       {"real", TypeId::kFloat},
      {"float4", TypeId::kFloat},      {"double", TypeId::kDouble},
      {"double precision", TypeId::kDouble}, {"float8", TypeId::kDouble},
      {"numeric", TypeId::kNumeric},   {"decimal", TypeId::kNumeric},
      {"dec", TypeId::kNumeric},       {"money", TypeId::kNumeric},
      {"char", TypeId::kChar},         {"character", TypeId::kChar},
      {"nchar", TypeId::kChar},        {"varchar", TypeId::kVarchar},
      {"character varying", TypeId::kVarchar}, {"nvarchar", TypeId::kVarchar},
      {"varchar2", TypeId::kVarchar},  {"text", TypeId::kText},
      {"clob", TypeId::kText},         {"string", TypeId::kText},
      {"tinytext", TypeId::kText},     {"mediumtext", TypeId::kText},
      {"longtext", TypeId::kText},     {"boolean", TypeId::kBoolean},
      {"bool", TypeId::kBoolean},      {"bit", TypeId::kBoolean},
      {"date", TypeId::kDate},         {"time", TypeId::kTime},
      {"timestamp", TypeId::kTimestamp}, {"datetime", TypeId::kTimestamp},
      {"smalldatetime", TypeId::kTimestamp}, {"timestamptz", TypeId::kTimestampTz},
      {"datetimeoffset", TypeId::kTimestampTz}, {"blob", TypeId::kBlob},
      {"bytea", TypeId::kBlob},        {"binary", TypeId::kBlob},
      {"varbinary", TypeId::kBlob},    {"longblob", TypeId::kBlob},
      {"mediumblob", TypeId::kBlob},   {"image", TypeId::kBlob},
      {"uuid", TypeId::kUuid},         {"uniqueidentifier", TypeId::kUuid},
      {"guid", TypeId::kUuid},         {"json", TypeId::kJson},
      {"jsonb", TypeId::kJson},
  };
  return *map;
}

}  // namespace

DataType DataType::FromTypeName(const sql::TypeName& name) {
  DataType t;
  LowerProbe probe(name.name);
  std::string_view n = probe.view();
  if (!name.enum_values.empty() || n == "enum") {
    t.id = TypeId::kEnum;
    t.enum_values = sql::ToStringVector(name.enum_values);
    return t;
  }
  auto it = TypeNameMap().find(n);
  t.id = it == TypeNameMap().end() ? TypeId::kUnknown : it->second;
  switch (t.id) {
    case TypeId::kNumeric:
      if (!name.params.empty()) t.precision = name.params[0];
      if (name.params.size() > 1) t.scale = name.params[1];
      break;
    case TypeId::kChar:
    case TypeId::kVarchar:
      if (!name.params.empty()) t.length = name.params[0];
      break;
    case TypeId::kTimestamp:
      if (name.with_time_zone) t.id = TypeId::kTimestampTz;
      break;
    default:
      break;
  }
  return t;
}

bool DataType::IsNumeric() const {
  return IsIntegerLike() || IsFiniteBinaryFloat() || id == TypeId::kNumeric;
}

std::string DataType::ToSql() const {
  std::string out = TypeIdName(id);
  if (id == TypeId::kEnum && !enum_values.empty()) {
    out += "(";
    for (size_t i = 0; i < enum_values.size(); ++i) {
      if (i > 0) out += ", ";
      out += "'" + enum_values[i] + "'";
    }
    out += ")";
  } else if ((id == TypeId::kVarchar || id == TypeId::kChar) && length > 0) {
    out += "(" + std::to_string(length) + ")";
  } else if (id == TypeId::kNumeric && precision > 0) {
    out += "(" + std::to_string(precision);
    if (scale > 0) out += ", " + std::to_string(scale);
    out += ")";
  }
  return out;
}

Value DataType::Coerce(const Value& v) const {
  if (v.is_null()) return v;
  if (id == TypeId::kFloat && v.is_numeric()) {
    // Single-precision storage really loses bits — this is what makes the
    // Rounding Errors AP measurable (aggregates and equality drift).
    return Value::Real(static_cast<double>(static_cast<float>(v.AsReal())));
  }
  if (id == TypeId::kDouble || id == TypeId::kNumeric) {
    if (v.is_int()) return Value::Real(v.AsReal());
    return v;
  }
  if (IsIntegerLike() && v.is_real()) {
    double d = v.AsReal();
    if (d == static_cast<double>(static_cast<int64_t>(d))) return Value::Int(v.AsInt());
    return v;
  }
  if (id == TypeId::kBoolean && v.is_int()) return Value::Bool(v.AsInt() != 0);
  return v;
}

bool DataType::Accepts(const Value& v) const {
  if (v.is_null()) return true;
  switch (id) {
    case TypeId::kSmallInt:
    case TypeId::kInteger:
    case TypeId::kBigInt:
    case TypeId::kSerial:
      return v.is_int() || (v.is_real() && v.AsReal() == static_cast<double>(v.AsInt()));
    case TypeId::kFloat:
    case TypeId::kDouble:
    case TypeId::kNumeric:
      return v.is_numeric();
    case TypeId::kBoolean:
      return v.is_bool() || v.is_int();
    case TypeId::kEnum:
      // Membership is enforced as a domain constraint; type-wise it's a string.
      return v.is_string();
    case TypeId::kChar:
    case TypeId::kVarchar:
    case TypeId::kText:
    case TypeId::kDate:
    case TypeId::kTime:
    case TypeId::kTimestamp:
    case TypeId::kTimestampTz:
    case TypeId::kBlob:
    case TypeId::kUuid:
    case TypeId::kJson:
      return v.is_string();
    case TypeId::kUnknown:
      return true;
  }
  return true;
}

}  // namespace sqlcheck
