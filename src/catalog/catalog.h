#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/strings.h"
#include "sql/ast.h"

namespace sqlcheck {

/// \brief Logical catalog: table + index schemas, buildable either from DDL
/// statements alone (when no database connection exists — §4.1) or from a
/// live Database (§4.2).
class Catalog {
 public:
  Status AddTable(TableSchema schema);
  Status AddIndex(IndexSchema index);
  Status DropTable(std::string_view name);
  Status DropIndex(std::string_view name);

  /// Applies a DDL statement (CREATE TABLE/INDEX, ALTER TABLE, DROP ...).
  /// Non-DDL statements are ignored with OK status.
  Status ApplyDdl(const sql::Statement& stmt);

  const TableSchema* FindTable(std::string_view name) const;
  TableSchema* FindTableMutable(std::string_view name);
  const IndexSchema* FindIndex(std::string_view name) const;

  std::vector<const TableSchema*> Tables() const;
  std::vector<const IndexSchema*> Indexes() const;
  std::vector<const IndexSchema*> IndexesOnTable(std::string_view table) const;

  /// True if some index covers exactly/prefix the given column of the table.
  bool HasIndexOnColumn(std::string_view table, std::string_view column) const;

  size_t table_count() const { return tables_.size(); }

 private:
  // Keyed by lowercased name; values keep original casing. Probes stack-
  // lower the caller's name (LowerProbe) and descend with plain byte
  // compares — no ToLower temporary, no per-character case folding.
  std::map<std::string, TableSchema, std::less<>> tables_;
  std::map<std::string, IndexSchema, std::less<>> indexes_;
};

}  // namespace sqlcheck
