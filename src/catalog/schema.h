#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/data_type.h"
#include "sql/ast.h"

namespace sqlcheck {

/// \brief CHECK constraint: expression kept both parsed (for enforcement)
/// and as SQL text (for reporting). Shared so schemas stay copyable.
struct CheckConstraintSchema {
  std::string name;
  std::string expression_sql;
  std::shared_ptr<const sql::Expr> expression;
};

/// \brief FOREIGN KEY ... REFERENCES constraint.
struct ForeignKeySchema {
  std::string name;
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;  ///< Empty means the target's PK.
  bool on_delete_cascade = false;
};

/// \brief One column of a table.
struct ColumnSchema {
  std::string name;
  DataType type;
  bool not_null = false;
  bool unique = false;
  bool auto_increment = false;
  std::optional<Value> default_value;
};

/// \brief Logical schema of a table.
struct TableSchema {
  std::string name;
  std::vector<ColumnSchema> columns;
  std::vector<std::string> primary_key;  ///< Empty => no PK (an AP!).
  std::vector<ForeignKeySchema> foreign_keys;
  std::vector<CheckConstraintSchema> checks;
  std::vector<std::vector<std::string>> unique_constraints;

  /// Case-insensitive column lookup; nullptr when absent.
  const ColumnSchema* FindColumn(std::string_view column) const;
  /// Case-insensitive column position; -1 when absent.
  int ColumnIndex(std::string_view column) const;
  std::vector<std::string> ColumnNames() const;
  bool HasPrimaryKey() const { return !primary_key.empty(); }

  /// Builds a schema from a parsed CREATE TABLE.
  static TableSchema FromCreateTable(const sql::CreateTableStatement& stmt);
};

/// \brief A secondary index definition.
struct IndexSchema {
  std::string name;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
  /// Auto-created by the engine (PK/UNIQUE backing indexes). System indexes
  /// are invisible to the Index Overuse/Underuse detection rules, matching
  /// how the paper counts only user-created indexes.
  bool system = false;
};

}  // namespace sqlcheck
