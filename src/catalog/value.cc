#include "catalog/value.h"

#include <functional>

namespace sqlcheck {

int64_t Value::AsInt() const {
  if (is_int()) return std::get<int64_t>(data_);
  if (is_real()) return static_cast<int64_t>(std::get<double>(data_));
  if (is_bool()) return std::get<bool>(data_) ? 1 : 0;
  return 0;
}

double Value::AsReal() const {
  if (is_real()) return std::get<double>(data_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
  if (is_bool()) return std::get<bool>(data_) ? 1.0 : 0.0;
  return 0.0;
}

bool Value::AsBool() const {
  if (is_bool()) return std::get<bool>(data_);
  if (is_int()) return std::get<int64_t>(data_) != 0;
  if (is_real()) return std::get<double>(data_) != 0.0;
  return false;
}

const std::string& Value::AsString() const {
  static const std::string kEmpty;
  if (is_string()) return std::get<std::string>(data_);
  return kEmpty;
}

std::string Value::ToDisplay() const {
  if (is_null()) return "NULL";
  if (is_bool()) return AsBool() ? "true" : "false";
  if (is_int()) return std::to_string(AsInt());
  if (is_real()) {
    std::string s = std::to_string(AsReal());
    // Trim trailing zeros but keep one decimal.
    size_t dot = s.find('.');
    if (dot != std::string::npos) {
      size_t last = s.find_last_not_of('0');
      s.erase(last == dot ? dot + 2 : last + 1);
    }
    return s;
  }
  return AsString();
}

namespace {
int TypeRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return 1;
  if (v.is_numeric()) return 2;
  return 3;  // string
}
}  // namespace

int Value::Compare(const Value& other) const {
  int lr = TypeRank(*this);
  int rr = TypeRank(other);
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (lr) {
    case 0:
      return 0;
    case 1:
      return AsBool() == other.AsBool() ? 0 : (!AsBool() ? -1 : 1);
    case 2: {
      // Mixed int/real compares numerically; int/int stays exact.
      if (is_int() && other.is_int()) {
        int64_t a = AsInt();
        int64_t b = other.AsInt();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = AsReal();
      double b = other.AsReal();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    default: {
      int c = AsString().compare(other.AsString());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b9;
  if (is_bool()) return AsBool() ? 0x51ed2701 : 0x2127599b;
  if (is_int()) return std::hash<int64_t>{}(AsInt());
  if (is_real()) {
    double d = AsReal();
    // Hash integral doubles like the equivalent int so 1 and 1.0 collide
    // (they also Compare() equal).
    if (d == static_cast<double>(static_cast<int64_t>(d))) {
      return std::hash<int64_t>{}(static_cast<int64_t>(d));
    }
    return std::hash<double>{}(d);
  }
  return std::hash<std::string>{}(AsString());
}

bool CompositeKey::operator==(const CompositeKey& other) const {
  if (values.size() != other.values.size()) return false;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].Compare(other.values[i]) != 0) return false;
  }
  return true;
}

bool CompositeKey::operator<(const CompositeKey& other) const {
  size_t n = std::min(values.size(), other.values.size());
  for (size_t i = 0; i < n; ++i) {
    int c = values[i].Compare(other.values[i]);
    if (c != 0) return c < 0;
  }
  return values.size() < other.values.size();
}

size_t CompositeKeyHash::operator()(const CompositeKey& key) const {
  size_t h = 0x811c9dc5;
  for (const Value& v : key.values) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace sqlcheck
