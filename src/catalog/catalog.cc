#include "catalog/catalog.h"

#include "common/strings.h"
#include "sql/printer.h"

namespace sqlcheck {

Status Catalog::AddTable(TableSchema schema) {
  std::string key = ToLower(schema.name);
  if (tables_.count(key) > 0) {
    return Status::Error("table already exists: " + schema.name);
  }
  tables_.emplace(std::move(key), std::move(schema));
  return Status::Ok();
}

Status Catalog::AddIndex(IndexSchema index) {
  std::string key = ToLower(index.name);
  if (indexes_.count(key) > 0) {
    return Status::Error("index already exists: " + index.name);
  }
  indexes_.emplace(std::move(key), std::move(index));
  return Status::Ok();
}

Status Catalog::DropTable(std::string_view name) {
  if (tables_.erase(std::string(ToLower(name))) == 0) {
    return Status::Error("no such table: " + std::string(name));
  }
  // Indexes on the table go with it.
  for (auto it = indexes_.begin(); it != indexes_.end();) {
    if (EqualsIgnoreCase(it->second.table, name)) {
      it = indexes_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

Status Catalog::DropIndex(std::string_view name) {
  if (indexes_.erase(ToLower(name)) == 0) {
    return Status::Error("no such index: " + std::string(name));
  }
  return Status::Ok();
}

Status Catalog::ApplyDdl(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kCreateTable: {
      const auto& create = static_cast<const sql::CreateTableStatement&>(stmt);
      // Existence pre-check before materializing the schema: workloads
      // re-issue the same CREATE TABLE constantly, and converting the full
      // column/constraint list (check-expression clones included) only to
      // have AddTable reject the duplicate was pure waste.
      if (FindTable(create.table) != nullptr) {
        if (create.if_not_exists) return Status::Ok();
        return Status::Error("table already exists: " + std::string(create.table));
      }
      return AddTable(TableSchema::FromCreateTable(create));
    }
    case sql::StatementKind::kCreateIndex: {
      const auto& create = static_cast<const sql::CreateIndexStatement&>(stmt);
      if (FindIndex(create.index) != nullptr) {
        if (create.if_not_exists) return Status::Ok();
        return Status::Error("index already exists: " + std::string(create.index));
      }
      IndexSchema index;
      index.name = create.index;
      index.table = create.table;
      index.columns = sql::ToStringVector(create.columns);
      index.unique = create.unique;
      return AddIndex(std::move(index));
    }
    case sql::StatementKind::kDropTable: {
      const auto& drop = static_cast<const sql::DropTableStatement&>(stmt);
      Status s = DropTable(drop.table);
      return drop.if_exists ? Status::Ok() : s;
    }
    case sql::StatementKind::kDropIndex: {
      const auto& drop = static_cast<const sql::DropIndexStatement&>(stmt);
      Status s = DropIndex(drop.index);
      return drop.if_exists ? Status::Ok() : s;
    }
    case sql::StatementKind::kAlterTable: {
      const auto& alter = static_cast<const sql::AlterTableStatement&>(stmt);
      TableSchema* table = FindTableMutable(alter.table);
      if (table == nullptr) {
        return alter.if_exists ? Status::Ok()
                               : Status::Error("no such table: " + std::string(alter.table));
      }
      switch (alter.action) {
        case sql::AlterAction::kAddColumn: {
          ColumnSchema c;
          c.name = alter.column.name;
          c.type = DataType::FromTypeName(alter.column.type);
          c.not_null = alter.column.not_null;
          c.unique = alter.column.unique;
          table->columns.push_back(std::move(c));
          if (alter.column.primary_key) table->primary_key.emplace_back(alter.column.name);
          if (alter.column.references.has_value()) {
            ForeignKeySchema fk;
            fk.columns = {std::string(alter.column.name)};
            fk.ref_table = alter.column.references->table;
            fk.ref_columns = sql::ToStringVector(alter.column.references->columns);
            fk.on_delete_cascade = alter.column.references->on_delete_cascade;
            table->foreign_keys.push_back(std::move(fk));
          }
          return Status::Ok();
        }
        case sql::AlterAction::kDropColumn: {
          int idx = table->ColumnIndex(alter.target_name);
          if (idx < 0) {
            return alter.if_exists ? Status::Ok()
                                   : Status::Error("no such column: " + std::string(alter.target_name));
          }
          table->columns.erase(table->columns.begin() + idx);
          std::erase_if(table->primary_key, [&](const std::string& c) {
            return EqualsIgnoreCase(c, alter.target_name);
          });
          std::erase_if(table->foreign_keys, [&](const ForeignKeySchema& fk) {
            for (const auto& c : fk.columns) {
              if (EqualsIgnoreCase(c, alter.target_name)) return true;
            }
            return false;
          });
          return Status::Ok();
        }
        case sql::AlterAction::kAddConstraint: {
          const auto& con = alter.constraint;
          switch (con.kind) {
            case sql::TableConstraintKind::kPrimaryKey:
              table->primary_key = sql::ToStringVector(con.columns);
              break;
            case sql::TableConstraintKind::kForeignKey: {
              ForeignKeySchema fk;
              fk.name = con.name;
              fk.columns = sql::ToStringVector(con.columns);
              fk.ref_table = con.reference.table;
              fk.ref_columns = sql::ToStringVector(con.reference.columns);
              fk.on_delete_cascade = con.reference.on_delete_cascade;
              table->foreign_keys.push_back(std::move(fk));
              break;
            }
            case sql::TableConstraintKind::kUnique:
              table->unique_constraints.push_back(sql::ToStringVector(con.columns));
              break;
            case sql::TableConstraintKind::kCheck: {
              CheckConstraintSchema check;
              check.name = con.name;
              if (con.check) {
                check.expression_sql = sql::PrintExpr(*con.check);
                check.expression =
                    std::shared_ptr<const sql::Expr>(con.check->Clone().release());
              }
              table->checks.push_back(std::move(check));
              break;
            }
          }
          return Status::Ok();
        }
        case sql::AlterAction::kDropConstraint: {
          size_t before = table->checks.size() + table->foreign_keys.size();
          std::erase_if(table->checks, [&](const CheckConstraintSchema& c) {
            return EqualsIgnoreCase(c.name, alter.target_name);
          });
          std::erase_if(table->foreign_keys, [&](const ForeignKeySchema& fk) {
            return EqualsIgnoreCase(fk.name, alter.target_name);
          });
          size_t after = table->checks.size() + table->foreign_keys.size();
          if (before == after && !alter.if_exists) {
            return Status::Error("no such constraint: " + std::string(alter.target_name));
          }
          return Status::Ok();
        }
        case sql::AlterAction::kAlterColumnType: {
          int idx = table->ColumnIndex(alter.column.name);
          if (idx < 0) return Status::Error("no such column: " + std::string(alter.column.name));
          table->columns[static_cast<size_t>(idx)].type =
              DataType::FromTypeName(alter.column.type);
          return Status::Ok();
        }
        case sql::AlterAction::kRenameTable: {
          TableSchema moved = *table;
          moved.name = alter.new_name;
          DropTable(alter.table);
          return AddTable(std::move(moved));
        }
        case sql::AlterAction::kRenameColumn: {
          int idx = table->ColumnIndex(alter.target_name);
          if (idx < 0) return Status::Error("no such column: " + std::string(alter.target_name));
          table->columns[static_cast<size_t>(idx)].name = alter.new_name;
          for (auto& pk : table->primary_key) {
            if (EqualsIgnoreCase(pk, alter.target_name)) pk = alter.new_name;
          }
          return Status::Ok();
        }
        case sql::AlterAction::kUnknown:
          return Status::Error("unsupported ALTER action");
      }
      return Status::Ok();
    }
    default:
      return Status::Ok();  // DML — nothing to do.
  }
}

const TableSchema* Catalog::FindTable(std::string_view name) const {
  auto it = tables_.find(LowerProbe(name).view());
  return it == tables_.end() ? nullptr : &it->second;
}

TableSchema* Catalog::FindTableMutable(std::string_view name) {
  auto it = tables_.find(LowerProbe(name).view());
  return it == tables_.end() ? nullptr : &it->second;
}

const IndexSchema* Catalog::FindIndex(std::string_view name) const {
  auto it = indexes_.find(LowerProbe(name).view());
  return it == indexes_.end() ? nullptr : &it->second;
}

std::vector<const TableSchema*> Catalog::Tables() const {
  std::vector<const TableSchema*> out;
  out.reserve(tables_.size());
  for (const auto& [_, schema] : tables_) out.push_back(&schema);
  return out;
}

std::vector<const IndexSchema*> Catalog::Indexes() const {
  std::vector<const IndexSchema*> out;
  out.reserve(indexes_.size());
  for (const auto& [_, index] : indexes_) out.push_back(&index);
  return out;
}

std::vector<const IndexSchema*> Catalog::IndexesOnTable(std::string_view table) const {
  std::vector<const IndexSchema*> out;
  for (const auto& [_, index] : indexes_) {
    if (EqualsIgnoreCase(index.table, table)) out.push_back(&index);
  }
  return out;
}

bool Catalog::HasIndexOnColumn(std::string_view table, std::string_view column) const {
  for (const auto& [_, index] : indexes_) {
    if (EqualsIgnoreCase(index.table, table) && !index.columns.empty() &&
        EqualsIgnoreCase(index.columns[0], column)) {
      return true;
    }
  }
  return false;
}

}  // namespace sqlcheck
