#pragma once

#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/random.h"
#include "common/status.h"
#include "sql/ast.h"

namespace sqlcheck {

/// \brief Name-resolution scope for expression evaluation: a stack of bound
/// row sources (table or alias name -> schema + current row pointer).
class EvalScope {
 public:
  struct Source {
    std::string binding;           ///< Alias if present, else table name.
    const TableSchema* schema = nullptr;
    const Row* row = nullptr;      ///< Rebound per evaluated tuple.
  };

  void AddSource(std::string binding, const TableSchema* schema) {
    sources_.push_back({std::move(binding), schema, nullptr});
  }
  void BindRow(size_t source_index, const Row* row) { sources_[source_index].row = row; }
  size_t source_count() const { return sources_.size(); }
  const std::vector<Source>& sources() const { return sources_; }

  /// Resolves `parts` (possibly qualified) to a value in the bound rows.
  Result<Value> ResolveColumn(const sql::AstVector<sql::AstString>& parts) const;

  /// Resolves to (source index, column index) without reading a value — used
  /// by the planner.
  bool ResolvePosition(const sql::AstVector<sql::AstString>& parts, size_t* source_index,
                       int* column_index) const;

  Rng* rng = nullptr;  ///< For RAND()/RANDOM(); owned by the executor.

  /// Pre-computed aggregate values keyed by canonical printed expression
  /// ("SUM(amount)"); set by the executor when evaluating grouped output.
  const std::map<std::string, Value>* aggregates = nullptr;

 private:
  std::vector<Source> sources_;
};

/// \brief Evaluates `expr` against the scope with SQL semantics: three-valued
/// logic, NULL-propagating operators (including `||` — the Concatenate NULLs
/// AP is directly observable here), LIKE/REGEXP matching, scalar functions.
/// Aggregate functions are NOT handled here (the executor computes them).
Result<Value> Eval(const sql::Expr& expr, const EvalScope& scope);

/// \brief Truthiness for WHERE/HAVING: NULL and FALSE both reject the row.
bool IsTrue(const Value& v);

/// \brief True if the expression contains an aggregate call (SUM/COUNT/...).
bool ContainsAggregate(const sql::Expr& expr);

/// \brief True if `name` is an aggregate function name.
bool IsAggregateName(std::string_view name);

}  // namespace sqlcheck
