#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sql/ast.h"
#include "storage/database.h"

namespace sqlcheck {

/// \brief Result of executing one statement.
struct QueryResult {
  std::vector<std::string> columns;  ///< Output column names (SELECT only).
  std::vector<Row> rows;             ///< Result rows (SELECT only).
  size_t affected = 0;               ///< Rows inserted/updated/deleted.

  /// First row / first column convenience accessor (NULL when empty).
  Value Scalar() const {
    return rows.empty() || rows[0].empty() ? Value::Null_() : rows[0][0];
  }
};

/// \brief Query executor over the in-memory Database — the substrate the
/// performance experiments (Figs. 3 and 8) run on. It preserves the cost
/// mechanisms those figures depend on:
///   * equality predicates use hash indexes when present, else scan;
///   * expression joins (LIKE/REGEXP) are nested-loop and cannot use indexes;
///   * every secondary index adds write amplification on INSERT/UPDATE;
///   * FK constraints are validated on write (scan unless an index helps);
///   * ALTER ... ADD CHECK revalidates the whole table.
class Executor {
 public:
  explicit Executor(Database* db, uint64_t seed = 7) : db_(db), rng_(seed) {}

  Result<QueryResult> Execute(const sql::Statement& stmt);

  /// Parses and executes a single statement.
  Result<QueryResult> ExecuteSql(std::string_view sql_text);

  /// Parses and executes a multi-statement script; returns the last result.
  Result<QueryResult> ExecuteScript(std::string_view script);

 private:
  Result<QueryResult> ExecuteSelect(const sql::SelectStatement& stmt);
  Result<QueryResult> ExecuteInsert(const sql::InsertStatement& stmt);
  Result<QueryResult> ExecuteUpdate(const sql::UpdateStatement& stmt);
  Result<QueryResult> ExecuteDelete(const sql::DeleteStatement& stmt);
  Result<QueryResult> ExecuteCreateTable(const sql::CreateTableStatement& stmt);
  Result<QueryResult> ExecuteCreateIndex(const sql::CreateIndexStatement& stmt);
  Result<QueryResult> ExecuteAlterTable(const sql::AlterTableStatement& stmt);
  Result<QueryResult> ExecuteDropTable(const sql::DropTableStatement& stmt);
  Result<QueryResult> ExecuteDropIndex(const sql::DropIndexStatement& stmt);

  /// Validates a candidate row against every constraint on `table`
  /// (types, NOT NULL, enum domain, CHECK, PK/UNIQUE, FK). `self_slot` is
  /// the row being replaced on UPDATE (excluded from uniqueness), or SIZE_MAX.
  Status ValidateRow(Table& table, const Row& row, size_t self_slot);

  /// Pre-executes uncorrelated subqueries inside `expr`, replacing them with
  /// literal results so Eval() never sees a subquery node.
  Status FlattenSubqueries(sql::Expr* expr);

  Status DeleteRowsCascading(Table& table, std::vector<size_t> slots, int depth);

  Database* db_;
  Rng rng_;
};

}  // namespace sqlcheck
