#include "engine/like.h"

#include <cctype>

namespace sqlcheck {

namespace {

char FoldCase(char c, bool fold) {
  return fold ? static_cast<char>(std::tolower(static_cast<unsigned char>(c))) : c;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool LikeMatchAt(const std::string& text, size_t ti, const std::string& pattern, size_t pi,
                 bool fold) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive %.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t k = ti; k <= text.size(); ++k) {
        if (LikeMatchAt(text, k, pattern, pi, fold)) return true;
      }
      return false;
    }
    if (ti >= text.size()) return false;
    if (pc == '_') {
      ++ti;
      ++pi;
      continue;
    }
    if (pc == '\\' && pi + 1 < pattern.size()) {
      ++pi;
      pc = pattern[pi];
    }
    if (FoldCase(text[ti], fold) != FoldCase(pc, fold)) return false;
    ++ti;
    ++pi;
  }
  return ti == text.size();
}

}  // namespace

bool LikeMatch(const std::string& text, const std::string& pattern, bool case_insensitive) {
  return LikeMatchAt(text, 0, pattern, 0, case_insensitive);
}

bool HasWordBoundaryMarkers(std::string_view pattern) {
  return pattern.find("[[:<:]]") != std::string::npos ||
         pattern.find("[[:>:]]") != std::string::npos;
}

bool WordBoundaryMatch(const std::string& text, const std::string& pattern) {
  static constexpr std::string_view kOpen = "[[:<:]]";
  static constexpr std::string_view kClose = "[[:>:]]";

  std::string body = pattern;
  bool need_left = false;
  bool need_right = false;
  // Strip leading % wildcards, then the open marker.
  size_t b = 0;
  while (b < body.size() && body[b] == '%') ++b;
  body.erase(0, b);
  if (body.rfind(kOpen, 0) == 0) {
    need_left = true;
    body.erase(0, kOpen.size());
  }
  size_t e = body.size();
  while (e > 0 && body[e - 1] == '%') --e;
  body.erase(e);
  if (body.size() >= kClose.size() &&
      body.compare(body.size() - kClose.size(), kClose.size(), kClose) == 0) {
    need_right = true;
    body.erase(body.size() - kClose.size());
  }
  if (body.empty()) return true;

  // Find an occurrence of `body` with the required boundaries.
  for (size_t pos = 0; (pos = text.find(body, pos)) != std::string::npos; ++pos) {
    bool left_ok = !need_left || pos == 0 || !IsWordChar(text[pos - 1]);
    size_t after = pos + body.size();
    bool right_ok = !need_right || after == text.size() || !IsWordChar(text[after]);
    if (left_ok && right_ok) return true;
  }
  return false;
}

bool SqlPatternMatch(const std::string& text, const std::string& pattern,
                     bool case_insensitive) {
  if (HasWordBoundaryMarkers(pattern)) return WordBoundaryMatch(text, pattern);
  return LikeMatch(text, pattern, case_insensitive);
}

namespace {

bool RegexMatchAt(const std::string& text, size_t ti, const std::string& pattern, size_t pi);

bool RegexMatchHere(const std::string& text, size_t ti, const std::string& pattern,
                    size_t pi) {
  static constexpr std::string_view kOpen = "[[:<:]]";
  static constexpr std::string_view kClose = "[[:>:]]";
  while (pi < pattern.size()) {
    if (pattern.compare(pi, kOpen.size(), kOpen) == 0) {
      if (!(ti == 0 || !IsWordChar(text[ti - 1]))) return false;
      pi += kOpen.size();
      continue;
    }
    if (pattern.compare(pi, kClose.size(), kClose) == 0) {
      if (!(ti == text.size() || !IsWordChar(text[ti]))) return false;
      pi += kClose.size();
      continue;
    }
    if (pattern[pi] == '$' && pi + 1 == pattern.size()) return ti == text.size();
    char pc = pattern[pi];
    bool star = pi + 1 < pattern.size() && pattern[pi + 1] == '*';
    if (star) {
      // Greedy-enough backtracking match of pc*.
      size_t k = ti;
      while (k < text.size() && (pc == '.' || text[k] == pc)) ++k;
      for (size_t stop = k + 1; stop-- > ti;) {
        if (RegexMatchHere(text, stop, pattern, pi + 2)) return true;
        if (stop == ti) break;
      }
      return RegexMatchHere(text, ti, pattern, pi + 2);
    }
    if (pc == '\\' && pi + 1 < pattern.size()) {
      ++pi;
      pc = pattern[pi];
    }
    if (ti >= text.size()) return false;
    if (pc != '.' && text[ti] != pc) return false;
    ++ti;
    ++pi;
  }
  return true;  // pattern exhausted — substring match semantics
}

bool RegexMatchAt(const std::string& text, size_t ti, const std::string& pattern, size_t pi) {
  return RegexMatchHere(text, ti, pattern, pi);
}

}  // namespace

bool SimpleRegexMatch(const std::string& text, const std::string& pattern) {
  if (!pattern.empty() && pattern[0] == '^') {
    return RegexMatchAt(text, 0, pattern, 1);
  }
  for (size_t start = 0; start <= text.size(); ++start) {
    if (RegexMatchAt(text, start, pattern, 0)) return true;
  }
  return false;
}

}  // namespace sqlcheck
