#include "engine/eval.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"
#include "engine/like.h"
#include "sql/printer.h"

namespace sqlcheck {

Result<Value> EvalScope::ResolveColumn(const sql::AstVector<sql::AstString>& parts) const {
  size_t source_index = 0;
  int column_index = -1;
  if (!ResolvePosition(parts, &source_index, &column_index)) {
    return Result<Value>::Error("unknown column: " + Join(sql::ToStringVector(parts), "."));
  }
  const Source& src = sources_[source_index];
  if (src.row == nullptr) {
    return Result<Value>::Error("column outside row context: " + Join(sql::ToStringVector(parts), "."));
  }
  size_t ci = static_cast<size_t>(column_index);
  return ci < src.row->size() ? (*src.row)[ci] : Value::Null_();
}

bool EvalScope::ResolvePosition(const sql::AstVector<sql::AstString>& parts, size_t* source_index,
                                int* column_index) const {
  if (parts.empty()) return false;
  std::string_view column = parts.back();
  if (parts.size() >= 2) {
    std::string_view qualifier = parts[parts.size() - 2];
    for (size_t s = 0; s < sources_.size(); ++s) {
      if (!EqualsIgnoreCase(sources_[s].binding, qualifier)) continue;
      int ci = sources_[s].schema->ColumnIndex(column);
      if (ci < 0) return false;
      *source_index = s;
      *column_index = ci;
      return true;
    }
    return false;
  }
  for (size_t s = 0; s < sources_.size(); ++s) {
    int ci = sources_[s].schema->ColumnIndex(column);
    if (ci >= 0) {
      *source_index = s;
      *column_index = ci;
      return true;
    }
  }
  return false;
}

bool IsTrue(const Value& v) { return !v.is_null() && v.AsBool(); }

bool IsAggregateName(std::string_view name) {
  return EqualsIgnoreCase(name, "sum") || EqualsIgnoreCase(name, "count") ||
         EqualsIgnoreCase(name, "avg") || EqualsIgnoreCase(name, "min") ||
         EqualsIgnoreCase(name, "max");
}

bool ContainsAggregate(const sql::Expr& expr) {
  bool found = false;
  sql::VisitExpr(expr, /*enter_subqueries=*/false, [&](const sql::Expr& e) {
    if (e.kind == sql::ExprKind::kFunction && IsAggregateName(e.text)) found = true;
  });
  return found;
}

namespace {

Value ParseNumberLiteral(const std::string& text) {
  if (text.find('.') != std::string::npos || text.find('e') != std::string::npos ||
      text.find('E') != std::string::npos) {
    return Value::Real(std::strtod(text.c_str(), nullptr));
  }
  return Value::Int(std::strtoll(text.c_str(), nullptr, 10));
}

/// SQL comparison: NULL if either side is NULL, else Bool.
Value CompareValues(const Value& lhs, const Value& rhs, const std::string& op) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null_();
  int c = lhs.Compare(rhs);
  if (op == "=" || op == "==") return Value::Bool(c == 0);
  if (op == "!=" || op == "<>") return Value::Bool(c != 0);
  if (op == "<") return Value::Bool(c < 0);
  if (op == ">") return Value::Bool(c > 0);
  if (op == "<=") return Value::Bool(c <= 0);
  if (op == ">=") return Value::Bool(c >= 0);
  return Value::Null_();
}

Value Arithmetic(const Value& lhs, const Value& rhs, char op) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null_();
  bool int_math = lhs.is_int() && rhs.is_int();
  switch (op) {
    case '+':
      return int_math ? Value::Int(lhs.AsInt() + rhs.AsInt())
                      : Value::Real(lhs.AsReal() + rhs.AsReal());
    case '-':
      return int_math ? Value::Int(lhs.AsInt() - rhs.AsInt())
                      : Value::Real(lhs.AsReal() - rhs.AsReal());
    case '*':
      return int_math ? Value::Int(lhs.AsInt() * rhs.AsInt())
                      : Value::Real(lhs.AsReal() * rhs.AsReal());
    case '/':
      if (int_math) {
        return rhs.AsInt() == 0 ? Value::Null_() : Value::Int(lhs.AsInt() / rhs.AsInt());
      }
      return rhs.AsReal() == 0.0 ? Value::Null_() : Value::Real(lhs.AsReal() / rhs.AsReal());
    case '%':
      if (lhs.is_int() && rhs.is_int() && rhs.AsInt() != 0) {
        return Value::Int(lhs.AsInt() % rhs.AsInt());
      }
      return Value::Null_();
    default:
      return Value::Null_();
  }
}

std::string ToStringValue(const Value& v) { return v.is_string() ? v.AsString() : v.ToDisplay(); }

Result<Value> EvalFunction(const sql::Expr& expr, const EvalScope& scope);

Result<Value> EvalImpl(const sql::Expr& expr, const EvalScope& scope) {
  using sql::ExprKind;
  switch (expr.kind) {
    case ExprKind::kNullLiteral:
      return Value::Null_();
    case ExprKind::kBoolLiteral:
      return Value::Bool(expr.text == "true");
    case ExprKind::kNumberLiteral:
      return ParseNumberLiteral(std::string(expr.text));
    case ExprKind::kStringLiteral:
      return Value::Str(std::string(expr.text));
    case ExprKind::kParam:
      return Result<Value>::Error("unbound parameter: " + std::string(expr.text));
    case ExprKind::kColumnRef:
      return scope.ResolveColumn(expr.name_parts);
    case ExprKind::kStar:
      return Result<Value>::Error("* is not a scalar expression");
    case ExprKind::kUnary: {
      auto v = EvalImpl(*expr.children[0], scope);
      if (!v.ok()) return v;
      if (EqualsIgnoreCase(expr.text, "not")) {
        if (v->is_null()) return Value::Null_();
        return Value::Bool(!v->AsBool());
      }
      if (expr.text == "-") {
        if (v->is_null()) return Value::Null_();
        return v->is_int() ? Value::Int(-v->AsInt()) : Value::Real(-v->AsReal());
      }
      return Result<Value>::Error("unknown unary operator: " + std::string(expr.text));
    }
    case ExprKind::kBinary: {
      std::string_view op = expr.text;
      if (op == "AND" || op == "OR") {
        auto lhs = EvalImpl(*expr.children[0], scope);
        if (!lhs.ok()) return lhs;
        // Short-circuit with three-valued logic.
        if (op == "AND") {
          if (!lhs->is_null() && !lhs->AsBool()) return Value::Bool(false);
          auto rhs = EvalImpl(*expr.children[1], scope);
          if (!rhs.ok()) return rhs;
          if (!rhs->is_null() && !rhs->AsBool()) return Value::Bool(false);
          if (lhs->is_null() || rhs->is_null()) return Value::Null_();
          return Value::Bool(true);
        }
        if (!lhs->is_null() && lhs->AsBool()) return Value::Bool(true);
        auto rhs = EvalImpl(*expr.children[1], scope);
        if (!rhs.ok()) return rhs;
        if (!rhs->is_null() && rhs->AsBool()) return Value::Bool(true);
        if (lhs->is_null() || rhs->is_null()) return Value::Null_();
        return Value::Bool(false);
      }
      auto lhs = EvalImpl(*expr.children[0], scope);
      if (!lhs.ok()) return lhs;
      auto rhs = EvalImpl(*expr.children[1], scope);
      if (!rhs.ok()) return rhs;
      if (op == "||") {
        // SQL concatenation: NULL poisons the result — the very behaviour
        // the Concatenate NULLs AP warns about.
        if (lhs->is_null() || rhs->is_null()) return Value::Null_();
        return Value::Str(ToStringValue(*lhs) + ToStringValue(*rhs));
      }
      if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
        return Arithmetic(*lhs, *rhs, op[0]);
      }
      if (op == "IS") return Value::Bool(lhs->Compare(*rhs) == 0);
      if (op == "IS NOT") return Value::Bool(lhs->Compare(*rhs) != 0);
      if (op == "~" || op == "~*") {
        if (lhs->is_null() || rhs->is_null()) return Value::Null_();
        return Value::Bool(SimpleRegexMatch(ToStringValue(*lhs), ToStringValue(*rhs)));
      }
      if (op == "!~" || op == "!~*") {
        if (lhs->is_null() || rhs->is_null()) return Value::Null_();
        return Value::Bool(!SimpleRegexMatch(ToStringValue(*lhs), ToStringValue(*rhs)));
      }
      return CompareValues(*lhs, *rhs, std::string(op));
    }
    case ExprKind::kLike: {
      auto text = EvalImpl(*expr.children[0], scope);
      if (!text.ok()) return text;
      auto pattern = EvalImpl(*expr.children[1], scope);
      if (!pattern.ok()) return pattern;
      if (text->is_null() || pattern->is_null()) return Value::Null_();
      bool matched;
      if (EqualsIgnoreCase(expr.text, "regexp") || EqualsIgnoreCase(expr.text, "rlike") ||
          EqualsIgnoreCase(expr.text, "similar to")) {
        matched = SimpleRegexMatch(ToStringValue(*text), ToStringValue(*pattern));
      } else {
        matched = SqlPatternMatch(ToStringValue(*text), ToStringValue(*pattern),
                                  EqualsIgnoreCase(expr.text, "ilike"));
      }
      return Value::Bool(expr.negated ? !matched : matched);
    }
    case ExprKind::kIsNull: {
      auto v = EvalImpl(*expr.children[0], scope);
      if (!v.ok()) return v;
      return Value::Bool(expr.negated ? !v->is_null() : v->is_null());
    }
    case ExprKind::kIn: {
      auto needle = EvalImpl(*expr.children[0], scope);
      if (!needle.ok()) return needle;
      if (needle->is_null()) return Value::Null_();
      if (expr.subquery != nullptr) {
        return Result<Value>::Error("IN subquery must be handled by the executor");
      }
      bool saw_null = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        auto candidate = EvalImpl(*expr.children[i], scope);
        if (!candidate.ok()) return candidate;
        if (candidate->is_null()) {
          saw_null = true;
          continue;
        }
        if (needle->Compare(*candidate) == 0) return Value::Bool(!expr.negated);
      }
      if (saw_null) return Value::Null_();
      return Value::Bool(expr.negated);
    }
    case ExprKind::kBetween: {
      auto v = EvalImpl(*expr.children[0], scope);
      if (!v.ok()) return v;
      auto lo = EvalImpl(*expr.children[1], scope);
      if (!lo.ok()) return lo;
      auto hi = EvalImpl(*expr.children[2], scope);
      if (!hi.ok()) return hi;
      if (v->is_null() || lo->is_null() || hi->is_null()) return Value::Null_();
      bool in_range = v->Compare(*lo) >= 0 && v->Compare(*hi) <= 0;
      return Value::Bool(expr.negated ? !in_range : in_range);
    }
    case ExprKind::kFunction:
      return EvalFunction(expr, scope);
    case ExprKind::kCase: {
      size_t i = 0;
      Value operand;
      bool has_operand = expr.text == "operand";
      if (has_operand) {
        auto v = EvalImpl(*expr.children[i++], scope);
        if (!v.ok()) return v;
        operand = *v;
      }
      bool has_else = expr.negated;
      size_t pair_end = expr.children.size() - (has_else ? 1 : 0);
      for (; i + 2 <= pair_end; i += 2) {
        auto when = EvalImpl(*expr.children[i], scope);
        if (!when.ok()) return when;
        bool hit;
        if (has_operand) {
          hit = !when->is_null() && operand.Compare(*when) == 0;
        } else {
          hit = IsTrue(*when);
        }
        if (hit) return EvalImpl(*expr.children[i + 1], scope);
      }
      if (has_else) return EvalImpl(*expr.children.back(), scope);
      return Value::Null_();
    }
    case ExprKind::kExists:
    case ExprKind::kSubquery:
      return Result<Value>::Error("subquery must be handled by the executor");
    case ExprKind::kCast: {
      auto v = EvalImpl(*expr.children[0], scope);
      if (!v.ok()) return v;
      if (v->is_null()) return Value::Null_();
      std::string target = ToLower(expr.text);
      if (target.find("int") != std::string::npos || target.find("serial") != std::string::npos) {
        if (v->is_string()) return Value::Int(std::strtoll(v->AsString().c_str(), nullptr, 10));
        return Value::Int(v->AsInt());
      }
      if (target.find("float") != std::string::npos || target.find("real") != std::string::npos ||
          target.find("double") != std::string::npos ||
          target.find("numeric") != std::string::npos ||
          target.find("decimal") != std::string::npos) {
        if (v->is_string()) return Value::Real(std::strtod(v->AsString().c_str(), nullptr));
        return Value::Real(v->AsReal());
      }
      if (target.find("bool") != std::string::npos) return Value::Bool(v->AsBool());
      return Value::Str(ToStringValue(*v));
    }
    case ExprKind::kRaw:
      return Result<Value>::Error("cannot evaluate raw token run");
  }
  return Result<Value>::Error("unhandled expression kind");
}

Result<Value> EvalFunction(const sql::Expr& expr, const EvalScope& scope) {
  std::string name = ToLower(expr.text);
  if (IsAggregateName(name)) {
    if (scope.aggregates != nullptr) {
      auto it = scope.aggregates->find(sql::PrintExpr(expr));
      if (it != scope.aggregates->end()) return it->second;
    }
    return Result<Value>::Error("aggregate outside aggregation context: " + std::string(expr.text));
  }

  // COALESCE short-circuits, so evaluate args lazily.
  if (name == "coalesce" || name == "ifnull" || name == "nvl") {
    for (const auto& arg : expr.children) {
      auto v = EvalImpl(*arg, scope);
      if (!v.ok()) return v;
      if (!v->is_null()) return v;
    }
    return Value::Null_();
  }
  if (name == "rand" || name == "random") {
    if (scope.rng == nullptr) return Result<Value>::Error("RAND() needs an executor RNG");
    return Value::Real(scope.rng->NextDouble());
  }
  if (name == "now" || name == "current_timestamp") {
    // Deterministic clock: reproducible experiments beat wall-clock realism.
    return Value::Str("2020-06-14 00:00:00");
  }

  std::vector<Value> args;
  args.reserve(expr.children.size());
  for (const auto& arg : expr.children) {
    auto v = EvalImpl(*arg, scope);
    if (!v.ok()) return v;
    args.push_back(std::move(*v));
  }

  auto require = [&](size_t n) { return args.size() >= n; };
  if (name == "upper" || name == "ucase") {
    if (!require(1)) return Result<Value>::Error("UPPER needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    return Value::Str(ToUpper(ToStringValue(args[0])));
  }
  if (name == "lower" || name == "lcase") {
    if (!require(1)) return Result<Value>::Error("LOWER needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    return Value::Str(ToLower(ToStringValue(args[0])));
  }
  if (name == "length" || name == "len" || name == "char_length") {
    if (!require(1)) return Result<Value>::Error("LENGTH needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    return Value::Int(static_cast<int64_t>(ToStringValue(args[0]).size()));
  }
  if (name == "abs") {
    if (!require(1)) return Result<Value>::Error("ABS needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    return args[0].is_int() ? Value::Int(std::llabs(args[0].AsInt()))
                            : Value::Real(std::fabs(args[0].AsReal()));
  }
  if (name == "round") {
    if (!require(1)) return Result<Value>::Error("ROUND needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    double scale = args.size() > 1 ? std::pow(10.0, args[1].AsReal()) : 1.0;
    return Value::Real(std::round(args[0].AsReal() * scale) / scale);
  }
  if (name == "concat") {
    // MySQL CONCAT: NULL in, NULL out (same trap as ||).
    std::string out;
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null_();
      out += ToStringValue(v);
    }
    return Value::Str(out);
  }
  if (name == "concat_ws") {
    if (args.empty() || args[0].is_null()) return Value::Null_();
    std::string sep = ToStringValue(args[0]);
    std::string out;
    bool first = true;
    for (size_t i = 1; i < args.size(); ++i) {
      if (args[i].is_null()) continue;  // CONCAT_WS skips NULLs
      if (!first) out += sep;
      out += ToStringValue(args[i]);
      first = false;
    }
    return Value::Str(out);
  }
  if (name == "replace") {
    if (!require(3)) return Result<Value>::Error("REPLACE needs 3 args");
    if (args[0].is_null() || args[1].is_null() || args[2].is_null()) return Value::Null_();
    std::string s = ToStringValue(args[0]);
    const std::string from = ToStringValue(args[1]);
    const std::string to = ToStringValue(args[2]);
    if (from.empty()) return Value::Str(s);
    std::string out;
    size_t pos = 0;
    while (true) {
      size_t hit = s.find(from, pos);
      if (hit == std::string::npos) {
        out += s.substr(pos);
        break;
      }
      out += s.substr(pos, hit - pos);
      out += to;
      pos = hit + from.size();
    }
    return Value::Str(out);
  }
  if (name == "substr" || name == "substring") {
    if (!require(2)) return Result<Value>::Error("SUBSTR needs 2+ args");
    if (args[0].is_null() || args[1].is_null()) return Value::Null_();
    std::string s = ToStringValue(args[0]);
    int64_t start = args[1].AsInt();  // 1-based per SQL
    if (start < 1) start = 1;
    size_t begin = static_cast<size_t>(start - 1);
    if (begin >= s.size()) return Value::Str("");
    size_t count = args.size() > 2 && !args[2].is_null()
                       ? static_cast<size_t>(std::max<int64_t>(0, args[2].AsInt()))
                       : std::string::npos;
    return Value::Str(s.substr(begin, count));
  }
  if (name == "trim") {
    if (!require(1)) return Result<Value>::Error("TRIM needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    return Value::Str(std::string(Trim(ToStringValue(args[0]))));
  }
  if (name == "nullif") {
    if (!require(2)) return Result<Value>::Error("NULLIF needs 2 args");
    if (!args[0].is_null() && !args[1].is_null() && args[0].Compare(args[1]) == 0) {
      return Value::Null_();
    }
    return args[0];
  }
  if (name == "reverse") {
    // Byte-wise, matching the rewriter's ReversibleTail guard (it refuses
    // multi-byte tails precisely because engines reverse bytes, not glyphs).
    if (!require(1)) return Result<Value>::Error("REVERSE needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    std::string s = ToStringValue(args[0]);
    std::reverse(s.begin(), s.end());
    return Value::Str(s);
  }
  if (name == "floor") {
    if (!require(1)) return Result<Value>::Error("FLOOR needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    if (args[0].is_int()) return args[0];
    return Value::Int(static_cast<int64_t>(std::floor(args[0].AsReal())));
  }
  if (name == "ceil" || name == "ceiling") {
    if (!require(1)) return Result<Value>::Error("CEIL needs 1 arg");
    if (args[0].is_null()) return Value::Null_();
    if (args[0].is_int()) return args[0];
    return Value::Int(static_cast<int64_t>(std::ceil(args[0].AsReal())));
  }
  return Result<Value>::Error("unknown function: " + std::string(expr.text));
}

}  // namespace

Result<Value> Eval(const sql::Expr& expr, const EvalScope& scope) {
  return EvalImpl(expr, scope);
}

}  // namespace sqlcheck
