#include "engine/executor.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "engine/eval.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace sqlcheck {

namespace {

constexpr size_t kNoSlot = static_cast<size_t>(-1);
constexpr int kMaxCascadeDepth = 16;

/// One bound FROM/JOIN source: a real table or a materialized subquery.
struct BoundSource {
  std::string binding;
  const Table* table = nullptr;           // null for materialized subqueries
  const TableSchema* schema = nullptr;
  std::vector<Row> materialized;          // subquery rows
  Row null_row;                           // for LEFT JOIN padding
};

/// A joined tuple: one row pointer per bound source.
using Tuple = std::vector<const Row*>;

Value LiteralOf(const sql::Expr& e) {
  switch (e.kind) {
    case sql::ExprKind::kNullLiteral: return Value::Null_();
    case sql::ExprKind::kBoolLiteral: return Value::Bool(e.text == "true");
    case sql::ExprKind::kStringLiteral: return Value::Str(std::string(e.text));
    case sql::ExprKind::kNumberLiteral:
      if (e.text.find('.') != std::string::npos || e.text.find('e') != std::string::npos ||
          e.text.find('E') != std::string::npos) {
        return Value::Real(std::strtod(e.text.c_str(), nullptr));
      }
      return Value::Int(std::strtoll(e.text.c_str(), nullptr, 10));
    default: return Value::Null_();
  }
}

bool IsLiteral(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kNullLiteral || e.kind == sql::ExprKind::kBoolLiteral ||
         e.kind == sql::ExprKind::kStringLiteral || e.kind == sql::ExprKind::kNumberLiteral;
}

/// Collects top-level AND conjuncts.
void CollectConjuncts(const sql::Expr& e, std::vector<const sql::Expr*>* out) {
  if (e.kind == sql::ExprKind::kBinary && e.text == "AND") {
    CollectConjuncts(*e.children[0], out);
    CollectConjuncts(*e.children[1], out);
  } else {
    out->push_back(&e);
  }
}

/// Matches `col = literal` (either order) against a single-table scope.
/// Returns the column name and value, or false.
bool MatchEqualityLiteral(const sql::Expr& e, std::string* column, Value* value) {
  if (e.kind != sql::ExprKind::kBinary || (e.text != "=" && e.text != "==")) return false;
  const sql::Expr& lhs = *e.children[0];
  const sql::Expr& rhs = *e.children[1];
  if (lhs.kind == sql::ExprKind::kColumnRef && IsLiteral(rhs)) {
    *column = lhs.ColumnName();
    *value = LiteralOf(rhs);
    return true;
  }
  if (rhs.kind == sql::ExprKind::kColumnRef && IsLiteral(lhs)) {
    *column = rhs.ColumnName();
    *value = LiteralOf(lhs);
    return true;
  }
  return false;
}

std::string OutputNameFor(const sql::SelectItem& item) {
  if (!item.alias.empty()) return std::string(item.alias);
  if (item.expr->kind == sql::ExprKind::kColumnRef) return std::string(item.expr->ColumnName());
  return sql::PrintExpr(*item.expr);
}

}  // namespace

Result<QueryResult> Executor::Execute(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(static_cast<const sql::SelectStatement&>(stmt));
    case sql::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStatement&>(stmt));
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStatement&>(stmt));
    case sql::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStatement&>(stmt));
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(static_cast<const sql::CreateTableStatement&>(stmt));
    case sql::StatementKind::kCreateIndex:
      return ExecuteCreateIndex(static_cast<const sql::CreateIndexStatement&>(stmt));
    case sql::StatementKind::kAlterTable:
      return ExecuteAlterTable(static_cast<const sql::AlterTableStatement&>(stmt));
    case sql::StatementKind::kDropTable:
      return ExecuteDropTable(static_cast<const sql::DropTableStatement&>(stmt));
    case sql::StatementKind::kDropIndex:
      return ExecuteDropIndex(static_cast<const sql::DropIndexStatement&>(stmt));
    case sql::StatementKind::kUnknown:
      return Result<QueryResult>::Error("cannot execute unparsed statement: " + std::string(stmt.raw_sql));
  }
  return Result<QueryResult>::Error("unhandled statement kind");
}

Result<QueryResult> Executor::ExecuteSql(std::string_view sql_text) {
  sql::StatementPtr stmt = sql::ParseStatement(sql_text);
  return Execute(*stmt);
}

Result<QueryResult> Executor::ExecuteScript(std::string_view script) {
  QueryResult last;
  for (const auto& stmt : sql::ParseScript(script)) {
    auto result = Execute(*stmt);
    if (!result.ok()) return result;
    last = std::move(*result);
  }
  return last;
}

// ---------------------------------------------------------------------------
// Subquery flattening
// ---------------------------------------------------------------------------

Status Executor::FlattenSubqueries(sql::Expr* expr) {
  for (auto& child : expr->children) {
    Status s = FlattenSubqueries(child.get());
    if (!s.ok()) return s;
  }
  if (expr->subquery == nullptr) return Status::Ok();

  auto sub = ExecuteSelect(*expr->subquery);
  if (!sub.ok()) return sub.status();

  switch (expr->kind) {
    case sql::ExprKind::kSubquery: {
      Value v = sub->Scalar();
      expr->subquery.reset();
      expr->children.clear();
      if (v.is_null()) {
        expr->kind = sql::ExprKind::kNullLiteral;
      } else if (v.is_bool()) {
        expr->kind = sql::ExprKind::kBoolLiteral;
        expr->text = v.AsBool() ? "true" : "false";
      } else if (v.is_numeric()) {
        expr->kind = sql::ExprKind::kNumberLiteral;
        expr->text = v.ToDisplay();
      } else {
        expr->kind = sql::ExprKind::kStringLiteral;
        expr->text = v.AsString();
      }
      return Status::Ok();
    }
    case sql::ExprKind::kExists: {
      bool any = !sub->rows.empty();
      expr->subquery.reset();
      expr->kind = sql::ExprKind::kBoolLiteral;
      expr->text = any ? "true" : "false";
      return Status::Ok();
    }
    case sql::ExprKind::kIn: {
      for (const Row& row : sub->rows) {
        if (row.empty()) continue;
        sql::ExprPtr lit(new sql::Expr());
        const Value& v = row[0];
        if (v.is_null()) {
          lit->kind = sql::ExprKind::kNullLiteral;
        } else if (v.is_numeric()) {
          lit->kind = sql::ExprKind::kNumberLiteral;
          lit->text = v.ToDisplay();
        } else if (v.is_bool()) {
          lit->kind = sql::ExprKind::kBoolLiteral;
          lit->text = v.AsBool() ? "true" : "false";
        } else {
          lit->kind = sql::ExprKind::kStringLiteral;
          lit->text = v.AsString();
        }
        expr->children.push_back(std::move(lit));
      }
      expr->subquery.reset();
      return Status::Ok();
    }
    default:
      return Status::Error("unsupported subquery position");
  }
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecuteSelect(const sql::SelectStatement& original) {
  // Work on a copy so subquery flattening never mutates the caller's tree.
  sql::SelectPtr owned = original.CloneSelect();
  sql::SelectStatement& stmt = *owned;

  // ------------------------------ bind sources ----------------------------
  std::vector<BoundSource> sources;
  std::vector<std::unique_ptr<TableSchema>> temp_schemas;

  auto bind = [&](const sql::TableRef& ref) -> Status {
    BoundSource src;
    src.binding = ref.EffectiveName();
    if (ref.subquery != nullptr) {
      auto sub = ExecuteSelect(*ref.subquery);
      if (!sub.ok()) return sub.status();
      auto schema = std::make_unique<TableSchema>();
      schema->name = src.binding;
      for (const auto& col : sub->columns) {
        ColumnSchema c;
        c.name = col;
        c.type = DataType::Make(TypeId::kUnknown);
        schema->columns.push_back(std::move(c));
      }
      src.schema = schema.get();
      temp_schemas.push_back(std::move(schema));
      src.materialized = std::move(sub->rows);
    } else {
      const Table* table = db_->GetTable(ref.name);
      if (table == nullptr) return Status::Error("no such table: " + std::string(ref.name));
      src.table = table;
      src.schema = &table->schema();
    }
    src.null_row.assign(src.schema->columns.size(), Value::Null_());
    sources.push_back(std::move(src));
    return Status::Ok();
  };

  if (stmt.from.empty() && !stmt.items.empty()) {
    // FROM-less SELECT (e.g. SELECT 1+1): evaluate once with empty scope.
    EvalScope scope;
    scope.rng = &rng_;
    QueryResult out;
    Row row;
    for (auto& item : stmt.items) {
      Status s = FlattenSubqueries(item.expr.get());
      if (!s.ok()) return s;
      auto v = Eval(*item.expr, scope);
      if (!v.ok()) return v.status();
      out.columns.push_back(OutputNameFor(item));
      row.push_back(*v);
    }
    out.rows.push_back(std::move(row));
    return out;
  }

  for (const auto& ref : stmt.from) {
    Status s = bind(ref);
    if (!s.ok()) return s;
  }
  for (const auto& join : stmt.joins) {
    Status s = bind(join.table);
    if (!s.ok()) return s;
  }

  EvalScope scope;
  scope.rng = &rng_;
  for (const auto& src : sources) scope.AddSource(src.binding, src.schema);

  // Flatten subqueries in every expression position.
  for (auto& item : stmt.items) {
    if (item.expr->kind != sql::ExprKind::kStar) {
      Status s = FlattenSubqueries(item.expr.get());
      if (!s.ok()) return s;
    }
  }
  for (auto& join : stmt.joins) {
    if (join.on) {
      Status s = FlattenSubqueries(join.on.get());
      if (!s.ok()) return s;
    }
  }
  if (stmt.where) {
    Status s = FlattenSubqueries(stmt.where.get());
    if (!s.ok()) return s;
  }
  if (stmt.having) {
    Status s = FlattenSubqueries(stmt.having.get());
    if (!s.ok()) return s;
  }

  // Bind-time validation: every column reference must resolve against the
  // bound sources (so empty tables still reject bad queries, like a real
  // planner would).
  {
    Status bad = Status::Ok();
    auto validate = [&](const sql::Expr& root) {
      sql::VisitExpr(root, /*enter_subqueries=*/false, [&](const sql::Expr& e) {
        if (!bad.ok() || e.kind != sql::ExprKind::kColumnRef) return;
        size_t si = 0;
        int ci = -1;
        if (!scope.ResolvePosition(e.name_parts, &si, &ci)) {
          bad = Status::Error("unknown column: " + Join(sql::ToStringVector(e.name_parts), "."));
        }
      });
    };
    for (const auto& item : stmt.items) {
      if (item.expr->kind != sql::ExprKind::kStar) validate(*item.expr);
    }
    if (stmt.where) validate(*stmt.where);
    for (const auto& join : stmt.joins) {
      if (join.on) validate(*join.on);
    }
    for (const auto& g : stmt.group_by) validate(*g);
    if (!bad.ok()) return bad;
  }

  // ------------------- predicate pushdown (mini planner) ------------------
  // Split the WHERE conjunction into per-source filters (applied while
  // materializing each source, with index lookups when possible) and a
  // residual applied after joins. Filters on the null-padded side of an
  // outer join must NOT be pushed — they stay residual.
  std::vector<std::vector<const sql::Expr*>> source_filters(sources.size());
  std::vector<const sql::Expr*> residual_where;
  auto pushable = [&](size_t si) {
    if (si < stmt.from.size()) return true;  // FROM sources are inner
    const auto& join = stmt.joins[si - stmt.from.size()];
    return join.type == sql::JoinType::kInner || join.type == sql::JoinType::kCross;
  };
  if (stmt.where) {
    std::vector<const sql::Expr*> conjuncts;
    CollectConjuncts(*stmt.where, &conjuncts);
    for (const sql::Expr* conj : conjuncts) {
      // Which sources does this conjunct touch?
      int only_source = -2;  // -2 = none yet, -1 = multiple/unresolved
      sql::VisitExpr(*conj, false, [&](const sql::Expr& e) {
        if (e.kind != sql::ExprKind::kColumnRef) return;
        size_t si = 0;
        int ci = -1;
        if (!scope.ResolvePosition(e.name_parts, &si, &ci)) {
          only_source = -1;
          return;
        }
        if (only_source == -2) {
          only_source = static_cast<int>(si);
        } else if (only_source != static_cast<int>(si)) {
          only_source = -1;
        }
      });
      if (only_source >= 0 && pushable(static_cast<size_t>(only_source))) {
        source_filters[static_cast<size_t>(only_source)].push_back(conj);
      } else {
        residual_where.push_back(conj);
      }
    }
  }

  // Materializes one source's rows with its pushed filters (index-assisted
  // when an equality conjunct hits an indexed column).
  auto materialize = [&](size_t si) -> Result<std::vector<const Row*>> {
    const BoundSource& src = sources[si];
    const auto& filters = source_filters[si];
    std::vector<const Row*> rows;

    auto passes = [&](const Row& row) -> Result<bool> {
      for (size_t s2 = 0; s2 < sources.size(); ++s2) {
        scope.BindRow(s2, s2 == si ? &row : nullptr);
      }
      for (const sql::Expr* filter : filters) {
        auto v = Eval(*filter, scope);
        if (!v.ok()) return v.status();
        if (!IsTrue(*v)) return false;
      }
      return true;
    };

    // Index path: first equality-literal filter with a single-column index.
    if (src.table != nullptr) {
      for (const sql::Expr* filter : filters) {
        std::string column;
        Value value;
        if (!MatchEqualityLiteral(*filter, &column, &value)) continue;
        const Index* index = src.table->FindSingleColumnIndex(column);
        if (index == nullptr || index->schema().columns.size() != 1) continue;
        CompositeKey key;
        key.values.push_back(value);
        for (size_t slot : index->Lookup(key)) {
          if (!src.table->IsLive(slot)) continue;
          const Row& row = src.table->RowAt(slot);
          auto ok_row = passes(row);  // re-checks all filters, incl. this one
          if (!ok_row.ok()) return ok_row.status();
          if (*ok_row) rows.push_back(&row);
        }
        return rows;
      }
    }

    Status failed = Status::Ok();
    auto consider = [&](const Row& row) {
      if (!failed.ok()) return;
      if (filters.empty()) {
        rows.push_back(&row);
        return;
      }
      auto ok_row = passes(row);
      if (!ok_row.ok()) {
        failed = ok_row.status();
        return;
      }
      if (*ok_row) rows.push_back(&row);
    };
    if (src.table != nullptr) {
      src.table->ForEachLive([&](size_t, const Row& row) { consider(row); });
    } else {
      for (const Row& row : src.materialized) consider(row);
    }
    if (!failed.ok()) return failed;
    return rows;
  };

  // --------------------- initial tuples from source 0 ---------------------
  std::vector<Tuple> tuples;
  {
    auto rows = materialize(0);
    if (!rows.ok()) return rows.status();
    tuples.reserve(rows->size());
    for (const Row* row : *rows) tuples.push_back({row});
  }

  // ------------------------ implicit comma joins --------------------------
  for (size_t s = 1; s < stmt.from.size(); ++s) {
    auto rows = materialize(s);
    if (!rows.ok()) return rows.status();
    std::vector<Tuple> next;
    next.reserve(tuples.size() * rows->size());
    for (const Row* row : *rows) {
      for (const Tuple& t : tuples) {
        Tuple copy = t;
        copy.push_back(row);
        next.push_back(std::move(copy));
      }
    }
    tuples = std::move(next);
  }

  // ----------------------------- explicit joins ---------------------------
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    const sql::JoinClause& join = stmt.joins[j];
    size_t src_index = stmt.from.size() + j;
    const BoundSource& src = sources[src_index];

    // Right-side row count drives the join strategy; materialization is
    // deferred so an index nested loop never scans the table at all.
    size_t right_count = src.table != nullptr ? src.table->live_row_count()
                                              : src.materialized.size();
    std::vector<const Row*> right_rows;
    bool right_materialized = false;
    auto ensure_right_rows = [&]() -> Status {
      if (right_materialized) return Status::Ok();
      auto materialized_rows = materialize(src_index);
      if (!materialized_rows.ok()) return materialized_rows.status();
      right_rows = std::move(*materialized_rows);
      right_materialized = true;
      return Status::Ok();
    };

    // Normalize USING into an equality expression chain.
    sql::ExprPtr synthesized_on;
    const sql::Expr* on = join.on.get();
    if (on == nullptr && !join.using_columns.empty()) {
      for (const auto& col : join.using_columns) {
        auto eq = sql::MakeBinary(
            "=", sql::MakeColumnRef({sources[0].binding, std::string(col)}),
            sql::MakeColumnRef({src.binding, std::string(col)}));
        synthesized_on = synthesized_on
                             ? sql::MakeBinary("AND", std::move(synthesized_on), std::move(eq))
                             : std::move(eq);
      }
      on = synthesized_on.get();
    }

    // Plan: find an equality conjunct `left_expr = right_column` where
    // right_column belongs to the new source and left_expr only to old ones.
    int right_col = -1;
    const sql::Expr* left_key = nullptr;
    if (on != nullptr) {
      std::vector<const sql::Expr*> conjuncts;
      CollectConjuncts(*on, &conjuncts);
      for (const sql::Expr* conj : conjuncts) {
        if (conj->kind != sql::ExprKind::kBinary || (conj->text != "=" && conj->text != "=="))
          continue;
        for (int side = 0; side < 2; ++side) {
          const sql::Expr& a = *conj->children[static_cast<size_t>(side)];
          const sql::Expr& b = *conj->children[static_cast<size_t>(1 - side)];
          if (a.kind != sql::ExprKind::kColumnRef) continue;
          // `a` must resolve inside the new source.
          std::string_view qualifier = a.TableQualifier();
          if (!qualifier.empty() && !EqualsIgnoreCase(qualifier, src.binding)) continue;
          int ci = src.schema->ColumnIndex(a.ColumnName());
          if (ci < 0) continue;
          if (qualifier.empty()) {
            // Ambiguous unqualified name: only accept if no earlier source has it.
            bool ambiguous = false;
            for (size_t e = 0; e < src_index; ++e) {
              if (sources[e].schema->ColumnIndex(a.ColumnName()) >= 0) ambiguous = true;
            }
            if (ambiguous) continue;
          }
          // `b` must NOT reference the new source.
          bool touches_new = false;
          sql::VisitExpr(b, false, [&](const sql::Expr& e) {
            if (e.kind != sql::ExprKind::kColumnRef) return;
            std::string_view q = e.TableQualifier();
            if (!q.empty() && EqualsIgnoreCase(q, src.binding)) touches_new = true;
            if (q.empty() && src.schema->ColumnIndex(e.ColumnName()) >= 0) {
              bool elsewhere = false;
              for (size_t s2 = 0; s2 < src_index; ++s2) {
                if (sources[s2].schema->ColumnIndex(e.ColumnName()) >= 0) elsewhere = true;
              }
              if (!elsewhere) touches_new = true;
            }
          });
          if (touches_new) continue;
          right_col = ci;
          left_key = &b;
          break;
        }
        if (right_col >= 0) break;
      }
    }

    std::vector<Tuple> next;
    bool left_join = join.type == sql::JoinType::kLeft;

    if (right_col >= 0 && left_key != nullptr) {
      // Equality join. Probe an existing single-column index when the outer
      // side is small (index nested loop); otherwise build a hash table.
      // Both are O(1) probes — the contrast with the nested-loop expression
      // join below is what Fig. 3 measures.
      const Index* right_index = nullptr;
      if (src.table != nullptr && source_filters[src_index].empty() &&
          tuples.size() * 8 < right_count) {
        right_index = src.table->FindSingleColumnIndex(
            src.schema->columns[static_cast<size_t>(right_col)].name);
      }
      std::unordered_map<CompositeKey, std::vector<const Row*>, CompositeKeyHash> hash;
      if (right_index == nullptr) {
        Status s = ensure_right_rows();
        if (!s.ok()) return s;
        for (const Row* row : right_rows) {
          const Value& v = (*row)[static_cast<size_t>(right_col)];
          if (v.is_null()) continue;  // NULL never equi-joins
          CompositeKey key;
          key.values.push_back(v);
          hash[key].push_back(row);
        }
      }
      auto probe = [&](const CompositeKey& key) {
        std::vector<const Row*> matches;
        if (right_index != nullptr) {
          for (size_t slot : right_index->Lookup(key)) {
            if (src.table->IsLive(slot)) matches.push_back(&src.table->RowAt(slot));
          }
        } else {
          auto it = hash.find(key);
          if (it != hash.end()) matches = it->second;
        }
        return matches;
      };
      for (Tuple& t : tuples) {
        for (size_t s2 = 0; s2 < t.size(); ++s2) scope.BindRow(s2, t[s2]);
        scope.BindRow(src_index, nullptr);
        auto key_value = Eval(*left_key, scope);
        if (!key_value.ok()) return key_value.status();
        bool matched = false;
        if (!key_value->is_null()) {
          CompositeKey key;
          key.values.push_back(*key_value);
          for (const Row* row : probe(key)) {
            // Residual conjuncts of ON still apply.
            Tuple candidate = t;
            candidate.push_back(row);
            bool ok_row = true;
            if (on != nullptr) {
              for (size_t s2 = 0; s2 < candidate.size(); ++s2) {
                scope.BindRow(s2, candidate[s2]);
              }
              auto v = Eval(*on, scope);
              if (!v.ok()) return v.status();
              ok_row = IsTrue(*v);
            }
            if (ok_row) {
              next.push_back(std::move(candidate));
              matched = true;
            }
          }
        }
        if (left_join && !matched) {
          Tuple padded = t;
          padded.push_back(&src.null_row);
          next.push_back(std::move(padded));
        }
      }
    } else {
      // Nested-loop join evaluating the ON expression per pair. This is the
      // only option for expression joins (LIKE-on-concatenation etc.).
      Status s = ensure_right_rows();
      if (!s.ok()) return s;
      for (Tuple& t : tuples) {
        bool matched = false;
        for (const Row* row : right_rows) {
          Tuple candidate = t;
          candidate.push_back(row);
          bool ok_row = true;
          if (on != nullptr) {
            for (size_t s2 = 0; s2 < candidate.size(); ++s2) {
              scope.BindRow(s2, candidate[s2]);
            }
            auto v = Eval(*on, scope);
            if (!v.ok()) return v.status();
            ok_row = IsTrue(*v);
          }
          if (ok_row) {
            next.push_back(std::move(candidate));
            matched = true;
          }
        }
        if (left_join && !matched) {
          Tuple padded = t;
          padded.push_back(&src.null_row);
          next.push_back(std::move(padded));
        }
      }
    }
    tuples = std::move(next);
  }

  // --------------------------- residual WHERE -----------------------------
  if (!residual_where.empty()) {
    std::vector<Tuple> kept;
    kept.reserve(tuples.size());
    for (Tuple& t : tuples) {
      for (size_t s2 = 0; s2 < t.size(); ++s2) scope.BindRow(s2, t[s2]);
      bool ok_row = true;
      for (const sql::Expr* conj : residual_where) {
        auto v = Eval(*conj, scope);
        if (!v.ok()) return v.status();
        if (!IsTrue(*v)) {
          ok_row = false;
          break;
        }
      }
      if (ok_row) kept.push_back(std::move(t));
    }
    tuples = std::move(kept);
  }

  // ------------------------------ aggregation -----------------------------
  bool has_aggregate = !stmt.group_by.empty();
  for (const auto& item : stmt.items) {
    if (item.expr->kind != sql::ExprKind::kStar && ContainsAggregate(*item.expr)) {
      has_aggregate = true;
    }
  }
  if (stmt.having && ContainsAggregate(*stmt.having)) has_aggregate = true;

  QueryResult out;

  // Output column names.
  auto expand_star = [&](const sql::Expr& star, std::vector<std::string>* names) {
    for (size_t s2 = 0; s2 < sources.size(); ++s2) {
      if (!star.name_parts.empty() &&
          !EqualsIgnoreCase(star.name_parts.back(), sources[s2].binding)) {
        continue;
      }
      for (const auto& col : sources[s2].schema->columns) names->push_back(col.name);
    }
  };
  for (const auto& item : stmt.items) {
    if (item.expr->kind == sql::ExprKind::kStar) {
      expand_star(*item.expr, &out.columns);
    } else {
      out.columns.push_back(OutputNameFor(item));
    }
  }

  struct PendingRow {
    Row values;
    std::vector<Value> sort_key;
  };
  std::vector<PendingRow> pending;

  // Produces one output row from the currently bound scope.
  auto produce = [&](const std::map<std::string, Value>* aggregates) -> Status {
    scope.aggregates = aggregates;
    PendingRow row_out;
    for (const auto& item : stmt.items) {
      if (item.expr->kind == sql::ExprKind::kStar) {
        for (size_t s2 = 0; s2 < sources.size(); ++s2) {
          if (!item.expr->name_parts.empty() &&
              !EqualsIgnoreCase(item.expr->name_parts.back(), sources[s2].binding)) {
            continue;
          }
          const Row* bound = scope.sources()[s2].row;
          for (size_t c = 0; c < sources[s2].schema->columns.size(); ++c) {
            row_out.values.push_back(bound != nullptr && c < bound->size() ? (*bound)[c]
                                                                           : Value::Null_());
          }
        }
        continue;
      }
      auto v = Eval(*item.expr, scope);
      if (!v.ok()) return v.status();
      row_out.values.push_back(std::move(*v));
    }
    if (stmt.having) {
      auto hv = Eval(*stmt.having, scope);
      if (!hv.ok()) return hv.status();
      if (!IsTrue(*hv)) {
        scope.aggregates = nullptr;
        return Status::Ok();
      }
    }
    for (const auto& ob : stmt.order_by) {
      auto v = Eval(*ob.expr, scope);
      if (!v.ok()) return v.status();
      row_out.sort_key.push_back(std::move(*v));
    }
    pending.push_back(std::move(row_out));
    scope.aggregates = nullptr;
    return Status::Ok();
  };

  if (has_aggregate) {
    // Collect the distinct aggregate expressions appearing anywhere.
    std::map<std::string, const sql::Expr*> agg_exprs;
    auto collect = [&](const sql::Expr& e) {
      sql::VisitExpr(e, false, [&](const sql::Expr& node) {
        if (node.kind == sql::ExprKind::kFunction && IsAggregateName(node.text)) {
          agg_exprs.emplace(sql::PrintExpr(node), &node);
        }
      });
    };
    for (const auto& item : stmt.items) {
      if (item.expr->kind != sql::ExprKind::kStar) collect(*item.expr);
    }
    if (stmt.having) collect(*stmt.having);
    for (const auto& ob : stmt.order_by) collect(*ob.expr);

    // Group tuples. Fast path: a single-table GROUP BY on an indexed column
    // can read groups straight out of the index buckets (equal keys are
    // adjacent in the multimap), skipping per-row evaluation + hashing —
    // the modest win Fig. 8b measures.
    std::vector<std::pair<CompositeKey, std::vector<Tuple*>>> groups;
    bool grouped_via_index = false;
    if (stmt.group_by.size() == 1 &&
        stmt.group_by[0]->kind == sql::ExprKind::kColumnRef && sources.size() == 1 &&
        stmt.joins.empty() && stmt.where == nullptr && sources[0].table != nullptr) {
      const Index* index =
          sources[0].table->FindSingleColumnIndex(stmt.group_by[0]->ColumnName());
      if (index != nullptr && index->schema().columns.size() == 1) {
        const Table& table = *sources[0].table;
        // Iterate index entries: equal keys are adjacent, so groups form in
        // one pass with no per-row expression evaluation or key hashing.
        tuples.clear();
        tuples.reserve(table.live_row_count());
        index->ForEachEntry([&](const CompositeKey& key, size_t slot) {
          if (!table.IsLive(slot)) return;
          tuples.push_back({&table.RowAt(slot)});
          if (groups.empty() || !(groups.back().first == key)) {
            groups.emplace_back(key, std::vector<Tuple*>{});
          }
        });
        // Second pass attaches Tuple pointers (the vector is stable now).
        size_t ti = 0;
        size_t gi = 0;
        index->ForEachEntry([&](const CompositeKey& key, size_t slot) {
          if (!table.IsLive(slot)) return;
          if (!(groups[gi].first == key)) ++gi;
          groups[gi].second.push_back(&tuples[ti]);
          ++ti;
        });
        grouped_via_index = true;
      }
    }
    if (!grouped_via_index) {
      std::map<CompositeKey, std::vector<Tuple*>> group_map;
      if (stmt.group_by.empty()) {
        auto& all = group_map[CompositeKey{}];
        for (Tuple& t : tuples) all.push_back(&t);
      } else {
        for (Tuple& t : tuples) {
          for (size_t s2 = 0; s2 < t.size(); ++s2) scope.BindRow(s2, t[s2]);
          CompositeKey key;
          for (const auto& g : stmt.group_by) {
            auto v = Eval(*g, scope);
            if (!v.ok()) return v.status();
            key.values.push_back(std::move(*v));
          }
          group_map[key].push_back(&t);
        }
      }
      groups.reserve(group_map.size());
      for (auto& [key, members] : group_map) groups.emplace_back(key, std::move(members));
    }

    for (auto& [key, members] : groups) {
      if (members.empty() && !stmt.group_by.empty()) continue;
      // Compute each aggregate over the group.
      std::map<std::string, Value> agg_values;
      for (const auto& [text, node] : agg_exprs) {
        std::string fn = ToLower(node->text);
        bool star_arg =
            node->children.empty() || node->children[0]->kind == sql::ExprKind::kStar;
        size_t count = 0;
        double sum = 0.0;
        bool all_int = true;
        int64_t isum = 0;
        std::optional<Value> min_v;
        std::optional<Value> max_v;
        std::set<CompositeKey> distinct_seen;
        for (Tuple* t : members) {
          for (size_t s2 = 0; s2 < t->size(); ++s2) scope.BindRow(s2, (*t)[s2]);
          Value v;
          if (star_arg) {
            v = Value::Int(1);
          } else {
            auto r = Eval(*node->children[0], scope);
            if (!r.ok()) return r.status();
            v = std::move(*r);
          }
          if (v.is_null()) continue;
          if (node->distinct_arg) {
            CompositeKey dk;
            dk.values.push_back(v);
            if (!distinct_seen.insert(dk).second) continue;
          }
          ++count;
          if (v.is_numeric()) {
            sum += v.AsReal();
            if (v.is_int()) isum += v.AsInt();
            else all_int = false;
          } else {
            all_int = false;
          }
          if (!min_v.has_value() || v < *min_v) min_v = v;
          if (!max_v.has_value() || *max_v < v) max_v = v;
        }
        Value result;
        if (fn == "count") {
          result = Value::Int(static_cast<int64_t>(count));
        } else if (fn == "sum") {
          result = count == 0 ? Value::Null_()
                              : (all_int ? Value::Int(isum) : Value::Real(sum));
        } else if (fn == "avg") {
          result = count == 0 ? Value::Null_() : Value::Real(sum / count);
        } else if (fn == "min") {
          result = min_v.value_or(Value::Null_());
        } else if (fn == "max") {
          result = max_v.value_or(Value::Null_());
        }
        agg_values.emplace(text, std::move(result));
      }
      // Bind a representative tuple (for group-by column access).
      if (!members.empty()) {
        for (size_t s2 = 0; s2 < members[0]->size(); ++s2) {
          scope.BindRow(s2, (*members[0])[s2]);
        }
      } else {
        for (size_t s2 = 0; s2 < sources.size(); ++s2) {
          scope.BindRow(s2, &sources[s2].null_row);
        }
      }
      Status s = produce(&agg_values);
      if (!s.ok()) return s;
    }
    if (groups.empty() && stmt.group_by.empty()) {
      // Aggregate over empty input still yields one row (COUNT(*) = 0 ...).
      std::map<std::string, Value> agg_values;
      for (const auto& [text, node] : agg_exprs) {
        std::string fn = ToLower(node->text);
        agg_values.emplace(text, fn == "count" ? Value::Int(0) : Value::Null_());
      }
      for (size_t s2 = 0; s2 < sources.size(); ++s2) {
        scope.BindRow(s2, &sources[s2].null_row);
      }
      Status s = produce(&agg_values);
      if (!s.ok()) return s;
    }
  } else {
    for (Tuple& t : tuples) {
      for (size_t s2 = 0; s2 < t.size(); ++s2) scope.BindRow(s2, t[s2]);
      Status s = produce(nullptr);
      if (!s.ok()) return s;
    }
  }

  // ------------------------------- DISTINCT -------------------------------
  if (stmt.distinct) {
    std::set<CompositeKey> seen;
    std::vector<PendingRow> unique_rows;
    for (auto& row : pending) {
      CompositeKey key;
      key.values = row.values;
      if (seen.insert(key).second) unique_rows.push_back(std::move(row));
    }
    pending = std::move(unique_rows);
  }

  // ------------------------------- ORDER BY -------------------------------
  if (!stmt.order_by.empty()) {
    std::stable_sort(pending.begin(), pending.end(),
                     [&](const PendingRow& a, const PendingRow& b) {
                       for (size_t k = 0; k < a.sort_key.size(); ++k) {
                         int c = a.sort_key[k].Compare(b.sort_key[k]);
                         if (c != 0) return stmt.order_by[k].descending ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }

  // ---------------------------- LIMIT / OFFSET ----------------------------
  size_t begin = stmt.offset.has_value() && *stmt.offset > 0
                     ? static_cast<size_t>(*stmt.offset)
                     : 0;
  size_t end = pending.size();
  if (stmt.limit.has_value() && *stmt.limit >= 0) {
    end = std::min(end, begin + static_cast<size_t>(*stmt.limit));
  }
  for (size_t i = begin; i < end && i < pending.size(); ++i) {
    out.rows.push_back(std::move(pending[i].values));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Constraint validation
// ---------------------------------------------------------------------------

Status Executor::ValidateRow(Table& table, const Row& row, size_t self_slot) {
  const TableSchema& schema = table.schema();
  // Types, NOT NULL, enum domains.
  for (size_t c = 0; c < schema.columns.size(); ++c) {
    const ColumnSchema& col = schema.columns[c];
    const Value& v = c < row.size() ? row[c] : Value::Null_();
    if (v.is_null()) {
      if (col.not_null) {
        return Status::Error("NOT NULL violation: " + schema.name + "." + col.name);
      }
      continue;
    }
    if (!col.type.Accepts(v)) {
      return Status::Error("type mismatch for " + schema.name + "." + col.name + ": " +
                           v.ToDisplay() + " is not " + col.type.ToSql());
    }
    if (col.type.id == TypeId::kEnum && !col.type.enum_values.empty()) {
      bool member = false;
      for (const auto& allowed : col.type.enum_values) {
        if (v.AsString() == allowed) member = true;
      }
      if (!member) {
        return Status::Error("enum domain violation: " + schema.name + "." + col.name +
                             " = " + v.ToDisplay());
      }
    }
  }

  // CHECK constraints.
  if (!schema.checks.empty()) {
    EvalScope scope;
    scope.AddSource(schema.name, &schema);
    scope.BindRow(0, &row);
    for (const auto& check : schema.checks) {
      if (check.expression == nullptr) continue;
      auto v = Eval(*check.expression, scope);
      if (!v.ok()) return v.status();
      // SQL: CHECK passes on TRUE and NULL.
      if (!v->is_null() && !v->AsBool()) {
        return Status::Error("CHECK violation on " + schema.name +
                             (check.name.empty() ? "" : " (" + check.name + ")") + ": " +
                             check.expression_sql);
      }
    }
  }

  // Uniqueness (PK, UNIQUE columns, UNIQUE constraints).
  auto check_unique = [&](const std::vector<std::string>& columns,
                          const char* label) -> Status {
    std::vector<int> positions;
    CompositeKey key;
    bool any_null = false;
    for (const auto& col : columns) {
      int ci = schema.ColumnIndex(col);
      if (ci < 0) return Status::Ok();
      positions.push_back(ci);
      const Value& v = static_cast<size_t>(ci) < row.size() ? row[static_cast<size_t>(ci)]
                                                            : Value::Null_();
      if (v.is_null()) any_null = true;
      key.values.push_back(v);
    }
    if (any_null) return Status::Ok();  // SQL: NULLs never collide
    const Index* index = table.FindIndexOnColumns(columns);
    if (index != nullptr) {
      for (size_t slot : index->Lookup(key)) {
        if (slot != self_slot && table.IsLive(slot)) {
          return Status::Error(std::string(label) + " violation on " + schema.name);
        }
      }
      return Status::Ok();
    }
    // No index: scan. (Deliberately slow — this is what backing indexes buy.)
    Status violation = Status::Ok();
    table.ForEachLive([&](size_t slot, const Row& existing) {
      if (slot == self_slot || !violation.ok()) return;
      bool equal = true;
      for (size_t k = 0; k < positions.size(); ++k) {
        size_t ci = static_cast<size_t>(positions[k]);
        const Value& other = ci < existing.size() ? existing[ci] : Value::Null_();
        if (other.is_null() || key.values[k].Compare(other) != 0) equal = false;
      }
      if (equal) {
        violation = Status::Error(std::string(label) + " violation on " + schema.name);
      }
    });
    return violation;
  };

  if (!schema.primary_key.empty()) {
    Status s = check_unique(schema.primary_key, "PRIMARY KEY");
    if (!s.ok()) return s;
  }
  for (const auto& col : schema.columns) {
    if (col.unique) {
      Status s = check_unique({col.name}, "UNIQUE");
      if (!s.ok()) return s;
    }
  }
  for (const auto& unique_cols : schema.unique_constraints) {
    Status s = check_unique(unique_cols, "UNIQUE");
    if (!s.ok()) return s;
  }

  // Foreign keys: every non-null FK value must exist in the parent.
  for (const auto& fk : schema.foreign_keys) {
    const Table* parent = db_->GetTable(fk.ref_table);
    if (parent == nullptr) continue;  // dangling schema — tolerated
    std::vector<std::string> parent_cols =
        fk.ref_columns.empty() ? parent->schema().primary_key : fk.ref_columns;
    if (parent_cols.size() != fk.columns.size() || parent_cols.empty()) continue;

    CompositeKey key;
    bool any_null = false;
    for (const auto& col : fk.columns) {
      int ci = schema.ColumnIndex(col);
      if (ci < 0) {
        any_null = true;
        break;
      }
      const Value& v = static_cast<size_t>(ci) < row.size() ? row[static_cast<size_t>(ci)]
                                                            : Value::Null_();
      if (v.is_null()) any_null = true;
      key.values.push_back(v);
    }
    if (any_null) continue;

    const Index* parent_index = parent->FindIndexOnColumns(parent_cols);
    bool found = false;
    if (parent_index != nullptr) {
      for (size_t slot : parent_index->Lookup(key)) {
        if (parent->IsLive(slot)) found = true;
      }
    } else {
      std::vector<int> positions;
      for (const auto& col : parent_cols) positions.push_back(parent->schema().ColumnIndex(col));
      parent->ForEachLive([&](size_t, const Row& existing) {
        if (found) return;
        bool equal = true;
        for (size_t k = 0; k < positions.size(); ++k) {
          if (positions[k] < 0) {
            equal = false;
            break;
          }
          size_t ci = static_cast<size_t>(positions[k]);
          const Value& other = ci < existing.size() ? existing[ci] : Value::Null_();
          if (other.is_null() || key.values[k].Compare(other) != 0) equal = false;
        }
        if (equal) found = true;
      });
    }
    if (!found) {
      return Status::Error("FOREIGN KEY violation: " + schema.name + " -> " + fk.ref_table);
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// INSERT / UPDATE / DELETE
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecuteInsert(const sql::InsertStatement& stmt) {
  Table* table = db_->GetTable(stmt.table);
  if (table == nullptr) return Result<QueryResult>::Error("no such table: " + std::string(stmt.table));
  const TableSchema& schema = table->schema();

  // Resolve the target column positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (size_t c = 0; c < schema.columns.size(); ++c) positions.push_back(static_cast<int>(c));
  } else {
    for (const auto& col : stmt.columns) {
      int ci = schema.ColumnIndex(col);
      if (ci < 0) return Result<QueryResult>::Error("no such column: " + std::string(col));
      positions.push_back(ci);
    }
  }

  std::vector<Row> incoming;
  if (stmt.select != nullptr) {
    auto sub = ExecuteSelect(*stmt.select);
    if (!sub.ok()) return sub;
    incoming = std::move(sub->rows);
  } else {
    EvalScope scope;
    scope.rng = &rng_;
    for (const auto& value_row : stmt.rows) {
      Row row;
      for (const auto& expr : value_row) {
        auto v = Eval(*expr, scope);
        if (!v.ok()) return v.status();
        row.push_back(std::move(*v));
      }
      incoming.push_back(std::move(row));
    }
  }

  QueryResult out;
  for (Row& source_row : incoming) {
    if (source_row.size() != positions.size()) {
      return Result<QueryResult>::Error(
          "INSERT value count " + std::to_string(source_row.size()) + " does not match " +
          std::to_string(positions.size()) + " target columns on " + std::string(stmt.table));
    }
    Row full(schema.columns.size(), Value::Null_());
    for (size_t k = 0; k < positions.size(); ++k) {
      size_t ci = static_cast<size_t>(positions[k]);
      full[ci] = schema.columns[ci].type.Coerce(source_row[k]);
    }
    // Defaults and auto-increment for unset columns.
    for (size_t c = 0; c < schema.columns.size(); ++c) {
      if (!full[c].is_null()) {
        if (schema.columns[c].auto_increment && full[c].is_int()) {
          table->ObserveAutoValue(full[c].AsInt());
        }
        continue;
      }
      bool targeted = false;
      for (int p : positions) {
        if (static_cast<size_t>(p) == c) targeted = true;
      }
      if (targeted && !schema.columns[c].auto_increment) continue;
      if (schema.columns[c].auto_increment) {
        full[c] = Value::Int(table->NextAutoValue());
      } else if (schema.columns[c].default_value.has_value()) {
        full[c] = *schema.columns[c].default_value;
      }
    }
    Status s = ValidateRow(*table, full, kNoSlot);
    if (!s.ok()) return s;
    table->Insert(std::move(full));
    ++out.affected;
  }
  return out;
}

Result<QueryResult> Executor::ExecuteUpdate(const sql::UpdateStatement& original) {
  auto owned = original.CloneStatement();
  auto& stmt = static_cast<sql::UpdateStatement&>(*owned);

  Table* table = db_->GetTable(stmt.table);
  if (table == nullptr) return Result<QueryResult>::Error("no such table: " + std::string(stmt.table));
  const TableSchema& schema = table->schema();
  std::string binding(stmt.alias.empty() ? stmt.table : stmt.alias);

  if (stmt.where) {
    Status s = FlattenSubqueries(stmt.where.get());
    if (!s.ok()) return s;
  }
  for (auto& [col, expr] : stmt.assignments) {
    Status s = FlattenSubqueries(expr.get());
    if (!s.ok()) return s;
  }

  EvalScope scope;
  scope.rng = &rng_;
  scope.AddSource(binding, &schema);

  // Select matching slots (index fast path on equality conjunct).
  std::vector<size_t> slots;
  bool used_index = false;
  if (stmt.where) {
    std::vector<const sql::Expr*> conjuncts;
    CollectConjuncts(*stmt.where, &conjuncts);
    for (const sql::Expr* conj : conjuncts) {
      std::string column;
      Value value;
      if (!MatchEqualityLiteral(*conj, &column, &value)) continue;
      const Index* index = table->FindSingleColumnIndex(column);
      if (index == nullptr || index->schema().columns.size() != 1) continue;
      CompositeKey key;
      key.values.push_back(value);
      slots = index->Lookup(key);
      used_index = true;
      break;
    }
  }
  if (!used_index) slots = table->LiveSlots();

  std::vector<size_t> matched;
  for (size_t slot : slots) {
    if (!table->IsLive(slot)) continue;
    const Row& row = table->RowAt(slot);
    if (stmt.where) {
      scope.BindRow(0, &row);
      auto v = Eval(*stmt.where, scope);
      if (!v.ok()) return v.status();
      if (!IsTrue(*v)) continue;
    }
    matched.push_back(slot);
  }

  QueryResult out;
  for (size_t slot : matched) {
    Row updated = table->RowAt(slot);
    scope.BindRow(0, &table->RowAt(slot));
    for (const auto& [col, expr] : stmt.assignments) {
      int ci = schema.ColumnIndex(col);
      if (ci < 0) return Result<QueryResult>::Error("no such column: " + std::string(col));
      auto v = Eval(*expr, scope);
      if (!v.ok()) return v.status();
      updated[static_cast<size_t>(ci)] =
          schema.columns[static_cast<size_t>(ci)].type.Coerce(*v);
    }
    Status s = ValidateRow(*table, updated, slot);
    if (!s.ok()) return s;
    s = table->UpdateRow(slot, std::move(updated));
    if (!s.ok()) return s;
    ++out.affected;
  }
  return out;
}

Status Executor::DeleteRowsCascading(Table& table, std::vector<size_t> slots, int depth) {
  if (depth > kMaxCascadeDepth) return Status::Error("cascade depth exceeded");
  if (slots.empty()) return Status::Ok();

  const TableSchema& schema = table.schema();

  // Children first: find tables whose FKs reference this one.
  for (Table* child : db_->Tables()) {
    if (child == &table) continue;
    for (const auto& fk : child->schema().foreign_keys) {
      if (!EqualsIgnoreCase(fk.ref_table, schema.name)) continue;
      std::vector<std::string> parent_cols =
          fk.ref_columns.empty() ? schema.primary_key : fk.ref_columns;
      if (parent_cols.size() != fk.columns.size() || parent_cols.empty()) continue;
      std::vector<int> parent_pos;
      for (const auto& col : parent_cols) parent_pos.push_back(schema.ColumnIndex(col));
      std::vector<int> child_pos;
      for (const auto& col : fk.columns) child_pos.push_back(child->schema().ColumnIndex(col));

      for (size_t slot : slots) {
        if (!table.IsLive(slot)) continue;
        const Row& parent_row = table.RowAt(slot);
        CompositeKey key;
        bool usable = true;
        for (int p : parent_pos) {
          if (p < 0 || static_cast<size_t>(p) >= parent_row.size()) {
            usable = false;
            break;
          }
          key.values.push_back(parent_row[static_cast<size_t>(p)]);
        }
        if (!usable) continue;

        // Find referencing child rows (index when available).
        std::vector<size_t> child_slots;
        std::vector<std::string> child_cols = fk.columns;
        const Index* child_index = child->FindIndexOnColumns(child_cols);
        if (child_index != nullptr) {
          child_slots = child_index->Lookup(key);
        } else {
          child->ForEachLive([&](size_t cslot, const Row& crow) {
            bool equal = true;
            for (size_t k = 0; k < child_pos.size(); ++k) {
              if (child_pos[k] < 0) {
                equal = false;
                break;
              }
              size_t ci = static_cast<size_t>(child_pos[k]);
              const Value& v = ci < crow.size() ? crow[ci] : Value::Null_();
              if (v.is_null() || key.values[k].Compare(v) != 0) equal = false;
            }
            if (equal) child_slots.push_back(cslot);
          });
        }
        std::erase_if(child_slots, [&](size_t s) { return !child->IsLive(s); });
        if (child_slots.empty()) continue;
        if (!fk.on_delete_cascade) {
          return Status::Error("FOREIGN KEY restrict: rows in " + child->schema().name +
                               " still reference " + schema.name);
        }
        Status s = DeleteRowsCascading(*child, std::move(child_slots), depth + 1);
        if (!s.ok()) return s;
      }
    }
  }

  for (size_t slot : slots) {
    if (!table.IsLive(slot)) continue;
    Status s = table.DeleteRow(slot);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Result<QueryResult> Executor::ExecuteDelete(const sql::DeleteStatement& original) {
  auto owned = original.CloneStatement();
  auto& stmt = static_cast<sql::DeleteStatement&>(*owned);

  Table* table = db_->GetTable(stmt.table);
  if (table == nullptr) return Result<QueryResult>::Error("no such table: " + std::string(stmt.table));

  if (stmt.where) {
    Status s = FlattenSubqueries(stmt.where.get());
    if (!s.ok()) return s;
  }

  EvalScope scope;
  scope.rng = &rng_;
  scope.AddSource(std::string(stmt.table), &table->schema());

  // Index fast path on an equality conjunct, then residual filtering.
  std::vector<size_t> candidates;
  bool used_index = false;
  if (stmt.where) {
    std::vector<const sql::Expr*> conjuncts;
    CollectConjuncts(*stmt.where, &conjuncts);
    for (const sql::Expr* conj : conjuncts) {
      std::string column;
      Value value;
      if (!MatchEqualityLiteral(*conj, &column, &value)) continue;
      const Index* index = table->FindSingleColumnIndex(column);
      if (index == nullptr || index->schema().columns.size() != 1) continue;
      CompositeKey key;
      key.values.push_back(value);
      candidates = index->Lookup(key);
      used_index = true;
      break;
    }
  }
  if (!used_index) candidates = table->LiveSlots();

  std::vector<size_t> matched;
  for (size_t slot : candidates) {
    if (!table->IsLive(slot)) continue;
    const Row& row = table->RowAt(slot);
    if (stmt.where) {
      scope.BindRow(0, &row);
      auto v = Eval(*stmt.where, scope);
      if (!v.ok()) return v.status();
      if (!IsTrue(*v)) continue;
    }
    matched.push_back(slot);
  }

  size_t affected = matched.size();
  Status s = DeleteRowsCascading(*table, std::move(matched), 0);
  if (!s.ok()) return s;
  QueryResult out;
  out.affected = affected;
  return out;
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecuteCreateTable(const sql::CreateTableStatement& stmt) {
  if (stmt.if_not_exists && db_->GetTable(stmt.table) != nullptr) return QueryResult{};
  TableSchema schema = TableSchema::FromCreateTable(stmt);
  std::string table_name = schema.name;
  std::vector<std::string> pk = schema.primary_key;
  Status s = db_->CreateTable(std::move(schema));
  if (!s.ok()) return s;
  // Real DBMSs back the PK with a unique index; so do we (system index).
  if (!pk.empty()) {
    IndexSchema pk_index;
    pk_index.name = "pk_" + ToLower(table_name);
    pk_index.table = table_name;
    pk_index.columns = pk;
    pk_index.unique = true;
    pk_index.system = true;
    s = db_->CreateIndex(pk_index);
    if (!s.ok()) return s;
  }
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteCreateIndex(const sql::CreateIndexStatement& stmt) {
  Table* table = db_->GetTable(stmt.table);
  if (table == nullptr) return Result<QueryResult>::Error("no such table: " + std::string(stmt.table));
  if (stmt.if_not_exists) {
    for (const auto& index : table->indexes()) {
      if (EqualsIgnoreCase(index->schema().name, stmt.index)) return QueryResult{};
    }
  }
  IndexSchema schema;
  schema.name = stmt.index;
  schema.table = stmt.table;
  schema.columns = sql::ToStringVector(stmt.columns);
  schema.unique = stmt.unique;
  Status s = table->CreateIndex(schema);
  if (!s.ok()) return s;
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteAlterTable(const sql::AlterTableStatement& stmt) {
  Table* table = db_->GetTable(stmt.table);
  if (table == nullptr) {
    if (stmt.if_exists) return QueryResult{};
    return Result<QueryResult>::Error("no such table: " + std::string(stmt.table));
  }
  TableSchema& schema = table->schema_mutable();

  switch (stmt.action) {
    case sql::AlterAction::kAddColumn: {
      ColumnSchema col;
      col.name = stmt.column.name;
      col.type = DataType::FromTypeName(stmt.column.type);
      col.not_null = stmt.column.not_null;
      col.unique = stmt.column.unique;
      Value fill = Value::Null_();
      if (stmt.column.default_value) {
        EvalScope scope;
        scope.rng = &rng_;
        auto v = Eval(*stmt.column.default_value, scope);
        if (v.ok()) {
          fill = *v;
          col.default_value = *v;
        }
      }
      if (col.not_null && fill.is_null() && table->live_row_count() > 0) {
        return Result<QueryResult>::Error(
            "cannot add NOT NULL column without default to non-empty table");
      }
      Status s = table->AddColumn(col, fill);
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case sql::AlterAction::kDropColumn: {
      Status s = table->DropColumn(stmt.target_name);
      if (!s.ok() && stmt.if_exists) return QueryResult{};
      if (!s.ok()) return s;
      return QueryResult{};
    }
    case sql::AlterAction::kAddConstraint: {
      const auto& con = stmt.constraint;
      switch (con.kind) {
        case sql::TableConstraintKind::kCheck: {
          CheckConstraintSchema check;
          check.name = con.name;
          if (con.check) {
            check.expression_sql = sql::PrintExpr(*con.check);
            check.expression = std::shared_ptr<const sql::Expr>(con.check->Clone().release());
          }
          // Adding a CHECK revalidates the whole table — the full-scan cost
          // the Enumerated Types experiment (Fig. 8g) pays on every rename.
          if (check.expression != nullptr) {
            EvalScope scope;
            scope.AddSource(schema.name, &schema);
            Status violation = Status::Ok();
            table->ForEachLive([&](size_t, const Row& row) {
              if (!violation.ok()) return;
              scope.BindRow(0, &row);
              auto v = Eval(*check.expression, scope);
              if (!v.ok()) {
                violation = v.status();
              } else if (!v->is_null() && !v->AsBool()) {
                violation = Status::Error("existing row violates new CHECK");
              }
            });
            if (!violation.ok()) return violation;
          }
          schema.checks.push_back(std::move(check));
          return QueryResult{};
        }
        case sql::TableConstraintKind::kPrimaryKey: {
          schema.primary_key = sql::ToStringVector(con.columns);
          IndexSchema pk_index;
          pk_index.name = "pk_" + ToLower(schema.name);
          pk_index.table = schema.name;
          pk_index.columns = sql::ToStringVector(con.columns);
          pk_index.unique = true;
          pk_index.system = true;
          Status s = table->CreateIndex(pk_index);
          if (!s.ok()) return s;
          return QueryResult{};
        }
        case sql::TableConstraintKind::kForeignKey: {
          ForeignKeySchema fk;
          fk.name = con.name;
          fk.columns = sql::ToStringVector(con.columns);
          fk.ref_table = con.reference.table;
          fk.ref_columns = sql::ToStringVector(con.reference.columns);
          fk.on_delete_cascade = con.reference.on_delete_cascade;
          // Validate existing rows (full scan, like a real ADD CONSTRAINT).
          schema.foreign_keys.push_back(fk);
          Status violation = Status::Ok();
          table->ForEachLive([&](size_t slot, const Row& row) {
            if (!violation.ok()) return;
            Status s = ValidateRow(*table, row, slot);
            if (!s.ok()) violation = s;
          });
          if (!violation.ok()) {
            schema.foreign_keys.pop_back();
            return violation;
          }
          return QueryResult{};
        }
        case sql::TableConstraintKind::kUnique: {
          schema.unique_constraints.push_back(sql::ToStringVector(con.columns));
          return QueryResult{};
        }
      }
      return QueryResult{};
    }
    case sql::AlterAction::kDropConstraint: {
      size_t before = schema.checks.size() + schema.foreign_keys.size();
      std::erase_if(schema.checks, [&](const CheckConstraintSchema& c) {
        return EqualsIgnoreCase(c.name, stmt.target_name);
      });
      std::erase_if(schema.foreign_keys, [&](const ForeignKeySchema& fk) {
        return EqualsIgnoreCase(fk.name, stmt.target_name);
      });
      size_t after = schema.checks.size() + schema.foreign_keys.size();
      if (before == after && !stmt.if_exists) {
        return Result<QueryResult>::Error("no such constraint: " + std::string(stmt.target_name));
      }
      return QueryResult{};
    }
    case sql::AlterAction::kAlterColumnType: {
      int ci = schema.ColumnIndex(stmt.column.name);
      if (ci < 0) return Result<QueryResult>::Error("no such column: " + std::string(stmt.column.name));
      DataType new_type = DataType::FromTypeName(stmt.column.type);
      schema.columns[static_cast<size_t>(ci)].type = new_type;
      // Rewrite every value (full-table cost, as in a real ALTER TYPE).
      for (size_t slot : table->LiveSlots()) {
        Row row = table->RowAt(slot);
        row[static_cast<size_t>(ci)] = new_type.Coerce(row[static_cast<size_t>(ci)]);
        Status s = table->UpdateRow(slot, std::move(row));
        if (!s.ok()) return s;
      }
      return QueryResult{};
    }
    case sql::AlterAction::kRenameColumn: {
      int ci = schema.ColumnIndex(stmt.target_name);
      if (ci < 0) return Result<QueryResult>::Error("no such column: " + std::string(stmt.target_name));
      schema.columns[static_cast<size_t>(ci)].name = stmt.new_name;
      for (auto& pk : schema.primary_key) {
        if (EqualsIgnoreCase(pk, stmt.target_name)) pk = stmt.new_name;
      }
      return QueryResult{};
    }
    case sql::AlterAction::kRenameTable:
      return Result<QueryResult>::Error("RENAME TABLE is not supported by the engine");
    case sql::AlterAction::kUnknown:
      return Result<QueryResult>::Error("unsupported ALTER action");
  }
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteDropTable(const sql::DropTableStatement& stmt) {
  Status s = db_->DropTable(stmt.table);
  if (!s.ok() && stmt.if_exists) return QueryResult{};
  if (!s.ok()) return s;
  return QueryResult{};
}

Result<QueryResult> Executor::ExecuteDropIndex(const sql::DropIndexStatement& stmt) {
  Status s = db_->DropIndex(stmt.index);
  if (!s.ok() && stmt.if_exists) return QueryResult{};
  if (!s.ok()) return s;
  return QueryResult{};
}

}  // namespace sqlcheck
