#pragma once

#include <string>
#include <string_view>

namespace sqlcheck {

/// \brief SQL LIKE: `%` matches any run, `_` matches one char.
bool LikeMatch(const std::string& text, const std::string& pattern,
               bool case_insensitive = false);

/// \brief Word-boundary pattern match for the `[[:<:]]word[[:>:]]` POSIX
/// syntax the paper's multi-valued-attribute queries use. The pattern is a
/// literal with optional leading/trailing boundary markers; `%` wildcards at
/// the ends are tolerated.
bool WordBoundaryMatch(const std::string& text, const std::string& pattern);

/// \brief True if the pattern uses the word-boundary marker syntax.
bool HasWordBoundaryMarkers(std::string_view pattern);

/// \brief Dispatch helper: word-boundary match when markers are present,
/// plain LIKE otherwise.
bool SqlPatternMatch(const std::string& text, const std::string& pattern,
                     bool case_insensitive = false);

/// \brief Minimal regular-expression-ish matcher for REGEXP/RLIKE predicates:
/// supports `.`, `.*`, `^`, `$`, alternation-free literals, and the
/// `[[:<:]]`/`[[:>:]]` boundary markers. Enough for every pattern the paper's
/// workloads issue — and deliberately evaluated row-at-a-time, since "the
/// DBMS must scan and evaluate the expression for every row" is the
/// performance story being reproduced.
bool SimpleRegexMatch(const std::string& text, const std::string& pattern);

}  // namespace sqlcheck
