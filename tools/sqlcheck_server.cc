// The sqlcheck-server daemon: the multi-tenant deployment surface of the
// analysis engine. One TCP listener, one AnalysisSession per connection, a
// newline-delimited JSON protocol (docs/PROTOCOL.md), and per-tenant memory
// quotas so thousands of concurrent sessions fit a fixed budget
// (docs/OPERATIONS.md covers sizing).
//
// Exit codes:
//   0  clean shutdown (SIGINT/SIGTERM)
//   2  usage or bind error
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>

#include "common/strings.h"
#include "server/server.h"

namespace {

using namespace sqlcheck;

constexpr std::string_view kUsage = R"(usage: sqlcheck-server [options]

Serves the incremental SQL anti-pattern analyzer over TCP: one analysis
session per connection, newline-delimited JSON requests and responses
(see docs/PROTOCOL.md). Streamed findings are byte-identical to the batch
CLI's JSON output for the same statements.

options:
  --host <addr>               IPv4 address to bind (default: 127.0.0.1)
  --port <N>                  TCP port; 0 picks an ephemeral port and prints
                              it (default: 8617)
  --workers <N>               analysis worker threads (default: hardware)
  --max-sessions <N>          concurrent session cap; arrivals beyond it get
                              a `capacity` error (default: 10000)
  --idle-evict-secs <N>       evict sessions idle this many seconds, 0 = off
                              (default: 0)
  --max-line-bytes <N>        longest accepted request line (default: 1048576)
  --session-arena-cap <N>     per-session AST arena budget in bytes, 0 = off
  --max-statements <N>        per-session statement quota, 0 = off
  --max-ingest-bytes <N>      per-session ingested-SQL quota, 0 = off
  --interner-cap <N>          per-session interned-name quota, 0 = off
  --ingest-threads <N>        worker threads a bulk `script` load may use:
                              the statement stream shards across per-worker
                              sessions and merges back byte-identically
                              (0 = all hardware threads, default 1 — size it
                              against --workers, see docs/OPERATIONS.md)
  --request-deadline-ms <N>   per-request deadline: queued requests past it
                              answer `deadline_exceeded` without running, a
                              running check stops between statements, 0 = off
                              (default: 0)
  --max-queue-depth <N>       load shedding: requests queued across all
                              connections before new lines are refused with a
                              retryable `overloaded` error, 0 = off
                              (default: 0)
  --write-buffer-bytes <N>    per-connection response backlog before the
                              server stops reading that socket
                              (default: 8388608)
  --write-stall-ms <N>        disconnect a client whose backlog makes no
                              write progress this long, 0 = off (default: 0)
  --statement-budget-ms <N>   wall-clock budget per statement; an exceeder
                              still lands but its fingerprint is quarantined
                              (repeats refused O(1)), 0 = off (default: 0)
  --quarantine-cap <N>        quarantined-fingerprint LRU capacity
                              (default: 256)
  --fixes                     include the fix verification fields on finding
                              lines
  --verify-exec <on|off|required>
                              Tier-3 differential execution of rewrite fixes
                              (default: off); per-tier counts surface in the
                              `stats` op
  --verify-seed <N>           seed for the generated verification datasets
                              (default: 42)
  --disable <NAME[,NAME...]>  disable rules by anti-pattern name (repeatable)
  -h, --help                  show this help

exit codes: 0 = clean shutdown, 2 = usage or bind error
)";

int UsageError(const std::string& message) {
  std::cerr << "sqlcheck-server: " << message << "\n\n" << kUsage;
  return 2;
}

bool ParseSize(const std::string& value, size_t* out) {
  if (!IsAllDigits(value) || value.empty() || value.size() > 15) return false;
  *out = static_cast<size_t>(std::stoull(value));
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  // Belt (Server::Start also sets it) and suspenders: no disappearing client
  // may ever take the daemon down with SIGPIPE — writes surface EPIPE and
  // that connection alone is torn down silently.
  std::signal(SIGPIPE, SIG_IGN);

  server::ServerOptions options;
  options.analysis.parallelism = 1;  // concurrency comes from sessions

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    size_t number = 0;
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--host") {
      if (!value_of(&value)) return UsageError("--host requires a value");
      options.host = value;
    } else if (arg == "--port") {
      if (!value_of(&value) || !ParseSize(value, &number) || number > 65535) {
        return UsageError("--port expects 0..65535");
      }
      options.port = static_cast<uint16_t>(number);
    } else if (arg == "--workers") {
      if (!value_of(&value) || !ParseSize(value, &number) || number > 1024) {
        return UsageError("--workers expects a thread count");
      }
      options.workers = static_cast<int>(number);
    } else if (arg == "--max-sessions") {
      if (!value_of(&value) || !ParseSize(value, &number) || number == 0) {
        return UsageError("--max-sessions expects a positive count");
      }
      options.max_sessions = number;
    } else if (arg == "--idle-evict-secs") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--idle-evict-secs expects a number of seconds");
      }
      options.idle_evict_ms = static_cast<int>(number * 1000);
    } else if (arg == "--max-line-bytes") {
      if (!value_of(&value) || !ParseSize(value, &number) || number == 0) {
        return UsageError("--max-line-bytes expects a positive byte count");
      }
      options.max_line_bytes = number;
    } else if (arg == "--session-arena-cap") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--session-arena-cap expects a byte count");
      }
      options.analysis.limits.arena_cap_bytes = number;
    } else if (arg == "--max-statements") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--max-statements expects a count");
      }
      options.analysis.limits.max_statements = number;
    } else if (arg == "--max-ingest-bytes") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--max-ingest-bytes expects a byte count");
      }
      options.analysis.limits.max_ingest_bytes = number;
    } else if (arg == "--interner-cap") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--interner-cap expects a count");
      }
      options.analysis.limits.interner_cap_names = number;
    } else if (arg == "--request-deadline-ms") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--request-deadline-ms expects milliseconds");
      }
      options.request_deadline_ms = static_cast<int>(number);
    } else if (arg == "--max-queue-depth") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--max-queue-depth expects a count");
      }
      options.max_queue_depth = number;
    } else if (arg == "--write-buffer-bytes") {
      if (!value_of(&value) || !ParseSize(value, &number) || number == 0) {
        return UsageError("--write-buffer-bytes expects a positive byte count");
      }
      options.max_write_buffer_bytes = number;
    } else if (arg == "--write-stall-ms") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--write-stall-ms expects milliseconds");
      }
      options.write_stall_ms = static_cast<int>(number);
    } else if (arg == "--statement-budget-ms") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--statement-budget-ms expects milliseconds");
      }
      options.analysis.statement_budget_ms = static_cast<int>(number);
    } else if (arg == "--quarantine-cap") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--quarantine-cap expects a count");
      }
      options.analysis.quarantine_capacity = number;
    } else if (arg == "--ingest-threads") {
      if (!value_of(&value) || !ParseSize(value, &number) || number > 1024) {
        return UsageError("--ingest-threads expects a thread count");
      }
      options.analysis.ingest_parallelism = static_cast<int>(number);
    } else if (arg == "--verify-exec") {
      if (!value_of(&value)) return UsageError("--verify-exec requires a value");
      if (value == "off") {
        options.analysis.verify_exec.mode = ExecVerifyMode::kOff;
      } else if (value == "on") {
        options.analysis.verify_exec.mode = ExecVerifyMode::kOn;
      } else if (value == "required") {
        options.analysis.verify_exec.mode = ExecVerifyMode::kRequired;
      } else {
        return UsageError("--verify-exec expects on, off, or required");
      }
    } else if (arg == "--verify-seed") {
      if (!value_of(&value) || !ParseSize(value, &number)) {
        return UsageError("--verify-seed expects a number");
      }
      options.analysis.verify_exec.seed = number;
    } else if (arg == "--fixes") {
      options.include_fixes = true;
    } else if (arg == "--disable") {
      if (!value_of(&value)) return UsageError("--disable requires a value");
      for (const auto& name : Split(value, ',')) {
        std::string trimmed(Trim(name));
        if (!trimmed.empty()) {
          options.analysis.disabled_rules.push_back(std::move(trimmed));
        }
      }
    } else {
      return UsageError("unknown option '" + std::string(arg) + "'");
    }
  }

  server::SqlCheckServer srv(options);
  Status status = srv.Start();
  if (!status.ok()) {
    std::cerr << "sqlcheck-server: " << status.message() << "\n";
    return 2;
  }
  // The "listening" line is the startup handshake for scripts (and the smoke
  // test): flushed immediately so a pipe reader unblocks.
  std::printf("sqlcheck-server: listening on %s:%u\n", options.host.c_str(),
              srv.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) sigsuspend(&mask);

  srv.Stop();
  const server::ServerGauges& g = srv.gauges();
  std::fprintf(stderr,
               "sqlcheck-server: shutdown (accepted=%llu rejected=%llu "
               "evicted=%llu requests=%llu bytes_in=%llu bytes_out=%llu "
               "shed=%llu deadlines=%llu slow_clients=%llu)\n",
               static_cast<unsigned long long>(g.connections_accepted.load()),
               static_cast<unsigned long long>(g.connections_rejected.load()),
               static_cast<unsigned long long>(g.evictions.load()),
               static_cast<unsigned long long>(g.requests.load()),
               static_cast<unsigned long long>(g.bytes_in.load()),
               static_cast<unsigned long long>(g.bytes_out.load()),
               static_cast<unsigned long long>(g.requests_shed.load()),
               static_cast<unsigned long long>(g.deadlines_expired.load()),
               static_cast<unsigned long long>(g.slow_client_disconnects.load()));
  return 0;
}
