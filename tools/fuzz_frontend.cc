// libFuzzer harness for the SQL frontend: splitter -> lexer -> parser ->
// fingerprint over arbitrary bytes. The frontend's contract under hostile
// input is narrow and checkable without a model: no crash, no sanitizer
// report, no hang, and exceptions only of the declared std::exception kind.
// A few cheap structural invariants ride along — every split piece must view
// into the input buffer, and the canonical fingerprint must be stable under
// re-canonicalization (idempotence).
//
// Build (clang only): cmake -DSQLCHECK_BUILD_FUZZERS=ON, target fuzz_frontend.
//   $ ./fuzz_frontend corpus_dir -max_total_time=60
// Seed the corpus from the table-3 workload before the first run:
//   $ SQLCHECK_FUZZ_SEED_DIR=corpus_dir ./fuzz_frontend -runs=0
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "sql/fingerprint.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/splitter.h"
#include "workload/corpus.h"

namespace {

/// Writes one seed file per unique table-3 workload statement, so the fuzzer
/// starts from real SQL shapes instead of discovering the grammar from zero.
void DumpSeeds(const char* dir) {
  sqlcheck::workload::CorpusOptions options;
  options.repo_count = 24;  // a few hundred statements; diversity over bulk
  sqlcheck::workload::Corpus corpus = sqlcheck::workload::GenerateCorpus(options);
  size_t written = 0;
  for (const auto& statement : corpus.AllStatements()) {
    std::string path = std::string(dir) + "/seed_" + std::to_string(written) + ".sql";
    FILE* out = std::fopen(path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "fuzz_frontend: cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::fwrite(statement.sql.data(), 1, statement.sql.size(), out);
    std::fclose(out);
    ++written;
  }
  std::fprintf(stderr, "fuzz_frontend: wrote %zu seeds to %s\n", written, dir);
}

}  // namespace

extern "C" int LLVMFuzzerInitialize(int* /*argc*/, char*** /*argv*/) {
  // Seed-dump mode: emit the table-3 workload as a corpus and exit. An env
  // var rather than a flag keeps libFuzzer's own argv parsing untouched.
  const char* seed_dir = std::getenv("SQLCHECK_FUZZ_SEED_DIR");
  if (seed_dir != nullptr && *seed_dir != '\0') {
    DumpSeeds(seed_dir);
    std::exit(0);
  }
  return 0;
}

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);

  // Stage 1: split. Must never throw — the splitter is the streaming loop's
  // framing layer and runs before any recovery scaffolding exists.
  std::vector<std::string_view> pieces;
  bool complete = false;
  sqlcheck::sql::TokenBuffer buffer;
  pieces = sqlcheck::sql::SplitStatements(input, &complete, &buffer);
  for (std::string_view piece : pieces) {
    if (!piece.empty() &&
        (piece.data() < input.data() ||
         piece.data() + piece.size() > input.data() + input.size())) {
      __builtin_trap();  // a piece escaped the input buffer
    }
  }

  // Stage 2: lex + parse + fingerprint each piece. std::exception subclasses
  // are the declared failure mode for hostile input; anything else (raw
  // throw, abort, sanitizer hit) is a finding.
  sqlcheck::Arena arena;
  for (std::string_view piece : pieces) {
    try {
      sqlcheck::sql::Lex(piece, buffer);
      sqlcheck::sql::StatementPtr stmt =
          sqlcheck::sql::ParseStatement(piece, &arena, &buffer);
      (void)stmt;
      std::string canonical = sqlcheck::sql::CanonicalizeSql(piece);
      if (sqlcheck::sql::CanonicalizeSql(canonical) != canonical) {
        __builtin_trap();  // canonicalization must be idempotent
      }
    } catch (const std::exception&) {
      // Declared contract: malformed SQL may throw; the engine's append
      // paths catch exactly this and convert it to a statement failure.
    }
  }

  // Stage 3: the whole input as one script, exactly as AddScript would.
  try {
    std::vector<sqlcheck::sql::StatementPtr> stmts =
        sqlcheck::sql::ParseScript(input, &arena, &buffer);
    (void)stmts;
  } catch (const std::exception&) {
  }
  return 0;
}
