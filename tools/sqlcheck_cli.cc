// The sqlcheck command-line tool: the deployable surface of the paper's
// toolchain (§3, §7). Batch mode checks files (or stdin) and renders the
// ranked report as text, JSON, or SARIF 2.1.0; --follow turns the process
// into a long-lived monitor that feeds stdin line-by-line through the
// incremental AnalysisSession and reports findings per statement as they
// stream in, at O(rules) per statement regardless of history length.
//
// Exit codes (for CI gating):
//   0  clean — no anti-patterns found
//   1  findings reported
//   2  usage, I/O, or configuration error
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"
#include "core/emit.h"
#include "core/session.h"
#include "core/sqlcheck.h"
#include "fix/fix_engine.h"
#include "fix/fixers.h"
#include "persist/fingerprint_store.h"
#include "scan/scanner.h"
#include "sql/splitter.h"

namespace {

using namespace sqlcheck;

constexpr std::string_view kUsage = R"(usage: sqlcheck [options] [file.sql ...]
       sqlcheck scan <dir> [--store <path>] [options]   (corpus mode: scan --help)

Detects, ranks, and suggests fixes for SQL anti-patterns. With no files (or
"-"), reads stdin.

options:
  --format <text|json|sarif>  output format (default: text)
  --follow                    streaming mode: read input line by line and
                              report findings per completed statement as it
                              arrives (formats: text, or json as one JSON
                              object per statement)
  --fixes                     surface the full diagnosis: json gains the fix
                              verification fields, sarif gains fixes[] with
                              artifactChange replacements (ingestible by
                              GitHub code scanning)
  --apply <out.sql>           write the workload with every verified rewrite
                              applied in place (batch mode only)
  --verify-exec <on|off|required>
                              Tier-3 differential execution of rewrite fixes:
                              original and rewrite run on an ephemeral seeded
                              database and must agree under the fixer's
                              equivalence contract. off (default) stops at
                              re-analysis; on demotes divergent rewrites;
                              required also demotes rewrites the engine
                              cannot execute. Prints per-tier counts to
                              stderr after the batch report
  --verify-seed <N>           seed for the generated verification datasets
                              (default 42); same seed, same verdicts
  --explain <NAME>            describe one rule — detection scope, impact
                              flags, and its repair strategy — and exit
  --explain-all               describe every rule and exit; with --format md,
                              emit the markdown rule reference (docs/RULES.md
                              is generated from this, CI checks the drift)
  --color                     highlight text output with ANSI colors
  --top <N>                   emit only the N highest-impact findings
  --disable <NAME[,NAME...]>  disable rules by anti-pattern name, e.g.
                              --disable "Column Wildcard Usage" (repeatable)
  --rules                     list every rule with its category and exit
  --parallel <N>              worker threads for batch analysis (0 = all)
  --ingest-threads <N>        worker threads for bulk script ingestion: the
                              statement stream is parsed and analyzed in
                              contiguous shards, then merged — output is
                              byte-identical at any setting (0 = all,
                              default 1)
  -h, --help                  show this help

exit codes: 0 = clean, 1 = findings reported, 2 = usage or I/O error
)";

constexpr std::string_view kScanUsage = R"(usage: sqlcheck scan <dir> [options]

Walks a directory tree of repositories / SQL dumps, analyzes every statement
in isolation (SQL scripts are split; host-language sources go through the
embedded-SQL extractor; extensionless files are content-sniffed), and prints
a corpus prevalence report: per-rule occurrence counts, per-repository
distribution, and a severity histogram. First-level directories are the
"repositories" of the distribution tables.

With --store, analysis results are memoized in a persistent mmap'd
fingerprint store keyed by each statement's exact-canonical form: a warm
re-scan only analyzes statements it has never seen while the report stays
byte-identical to a cold run. The store invalidates itself when the rule
set or on-disk format version changes, and degrades to a cold scan (with a
warning) on any corruption or lock contention — never a crash or a wrong
report.

options:
  --store <path>       persistent fingerprint store (created on first scan)
  --no-store           force a cold scan even when --store is given
  --jobs <N>           worker shards (0 = auto: one per hardware thread,
                       capped at the file count; default 0)
  --report <text|json> report format on stdout (default: text); operational
                       telemetry (timings, store hits) goes to stderr
  --store-verify       validate the store's header and every record, print a
                       summary, and exit (no scan; <dir> not required)
  --store-compact      rewrite the store dropping duplicate and uncommitted
                       records under a bumped generation, and exit (no scan;
                       <dir> not required)
  -h, --help           show this help

exit codes: 0 = scan/maintenance completed (findings are expected output,
not an error), 1 = --store-verify found an invalid store, 2 = usage or I/O
error
)";

int ScanUsageError(const std::string& message) {
  std::cerr << "sqlcheck: " << message << "\n\n" << kScanUsage;
  return 2;
}

/// `sqlcheck scan` — the corpus-analytics entry point.
int RunScanCommand(int argc, char** argv) {
  std::string dir;
  std::string store_path;
  std::string report_format = "text";
  int jobs = 0;
  bool no_store = false;
  bool store_verify = false;
  bool store_compact = false;
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value_of = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "-h" || arg == "--help") {
      std::cout << kScanUsage;
      return 0;
    } else if (arg == "--store") {
      if (!value_of(&store_path)) return ScanUsageError("--store requires a path");
    } else if (arg == "--no-store") {
      no_store = true;
    } else if (arg == "--jobs") {
      if (!value_of(&value) || !IsAllDigits(value) || value.size() > 4) {
        return ScanUsageError("--jobs expects a shard count");
      }
      jobs = std::stoi(value);
    } else if (arg == "--report") {
      if (!value_of(&report_format) ||
          (report_format != "text" && report_format != "json")) {
        return ScanUsageError("--report expects text or json");
      }
    } else if (arg == "--store-verify") {
      store_verify = true;
    } else if (arg == "--store-compact") {
      store_compact = true;
    } else if (arg.size() > 1 && arg[0] == '-') {
      return ScanUsageError("unknown option '" + std::string(arg) + "'");
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return ScanUsageError("more than one scan root given");
    }
  }

  if (store_verify || store_compact) {
    if (store_path.empty()) {
      return ScanUsageError("--store-verify/--store-compact require --store <path>");
    }
    std::string summary;
    if (store_verify) {
      Status st = persist::FingerprintStore::Verify(store_path, &summary);
      if (!st.ok()) {
        std::cerr << "sqlcheck: store verification FAILED: " << st.message() << "\n";
        return 1;
      }
      std::cout << "store ok: " << summary << "\n";
      return 0;
    }
    uint64_t ruleset_hash =
        persist::FingerprintStore::RulesetHash(RuleRegistry::Default());
    Status st = persist::FingerprintStore::Compact(store_path, ruleset_hash, &summary);
    if (!st.ok()) {
      std::cerr << "sqlcheck: store compaction failed: " << st.message() << "\n";
      return 2;
    }
    std::cout << "store compacted: " << summary << "\n";
    return 0;
  }

  if (dir.empty()) return ScanUsageError("scan requires a directory to walk");

  scan::ScanOptions options;
  options.store_path = no_store ? std::string() : store_path;
  options.jobs = jobs;
  scan::CorpusScanner scanner(options);
  Result<scan::ScanReport> result = scanner.Scan(dir);
  if (!result.ok()) {
    std::cerr << "sqlcheck: " << result.message() << "\n";
    return 2;
  }
  const scan::ScanReport& report = result.value();
  std::cout << (report_format == "json" ? report.ToJson() : report.ToText());

  const scan::ScanSummary& summary = scanner.summary();
  std::fprintf(stderr,
               "sqlcheck: scanned %llu repos / %llu files / %llu statements "
               "in %.3fs (jobs=%d, skipped=%llu)\n",
               static_cast<unsigned long long>(report.repos),
               static_cast<unsigned long long>(report.files),
               static_cast<unsigned long long>(report.statements), summary.seconds,
               summary.jobs, static_cast<unsigned long long>(summary.files_skipped));
  std::fprintf(stderr,
               "sqlcheck: analyzed=%llu store_hits=%llu memo_hits=%llu "
               "files_replayed=%llu\n",
               static_cast<unsigned long long>(summary.analyzed),
               static_cast<unsigned long long>(summary.store_reused),
               static_cast<unsigned long long>(summary.memo_reused),
               static_cast<unsigned long long>(summary.files_reused));
  if (summary.store_enabled) {
    std::fprintf(stderr,
                 "sqlcheck: store: entries=%llu files=%llu appended=%llu "
                 "hits=%llu misses=%llu file_hits=%llu file_misses=%llu "
                 "bytes=%llu generation=%llu\n",
                 static_cast<unsigned long long>(summary.store.entries),
                 static_cast<unsigned long long>(summary.store.file_entries),
                 static_cast<unsigned long long>(summary.store.appended),
                 static_cast<unsigned long long>(summary.store.hits),
                 static_cast<unsigned long long>(summary.store.misses),
                 static_cast<unsigned long long>(summary.store.file_hits),
                 static_cast<unsigned long long>(summary.store.file_misses),
                 static_cast<unsigned long long>(summary.store.bytes),
                 static_cast<unsigned long long>(summary.store.generation));
    if (!summary.store.warning.empty()) {
      std::fprintf(stderr, "sqlcheck: store warning: %s\n",
                   summary.store.warning.c_str());
    }
  }
  return 0;
}

enum class Format { kText, kJson, kSarif, kMarkdown };

struct CliOptions {
  Format format = Format::kText;
  bool explain_all = false;
  bool follow = false;
  bool fixes = false;
  bool color = false;
  size_t top = 0;
  int parallelism = 1;
  int ingest_threads = 1;
  ExecVerifyOptions verify_exec;  ///< --verify-exec / --verify-seed.
  std::string apply_path;  ///< --apply target ("" = off).
  std::vector<std::string> disabled;
  std::vector<std::string> files;
};

int UsageError(const std::string& message) {
  std::cerr << "sqlcheck: " << message << "\n\n" << kUsage;
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* cli, int* exit_code) {
  auto value_of = [&](int* i, std::string_view flag, std::string* out) {
    if (*i + 1 >= argc) {
      *exit_code = UsageError(std::string(flag) + " requires a value");
      return false;
    }
    *out = argv[++*i];
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    std::string value;
    if (arg == "-h" || arg == "--help") {
      std::cout << kUsage;
      *exit_code = 0;
      return false;
    } else if (arg == "--rules") {
      std::cout << "sqlcheck rules (disable with --disable \"<name>\"):\n\n";
      for (int t = 0; t < kAntiPatternCount; ++t) {
        const ApInfo& info = InfoFor(static_cast<AntiPattern>(t));
        std::printf("  %-28s %-16s impact:%s%s%s%s%s\n", info.name,
                    CategoryName(info.category), info.performance ? " perf" : "",
                    info.maintainability ? " maint" : "",
                    info.data_amplification ? " amplification" : "",
                    info.data_integrity ? " integrity" : "",
                    info.accuracy ? " accuracy" : "");
      }
      *exit_code = 0;
      return false;
    } else if (arg == "--format") {
      if (!value_of(&i, arg, &value)) return false;
      if (value == "text") {
        cli->format = Format::kText;
      } else if (value == "json") {
        cli->format = Format::kJson;
      } else if (value == "sarif") {
        cli->format = Format::kSarif;
      } else if (value == "md") {
        cli->format = Format::kMarkdown;
      } else {
        *exit_code = UsageError("unknown format '" + value + "'");
        return false;
      }
    } else if (arg == "--follow") {
      cli->follow = true;
    } else if (arg == "--fixes") {
      cli->fixes = true;
    } else if (arg == "--apply") {
      if (!value_of(&i, arg, &value)) return false;
      cli->apply_path = value;
    } else if (arg == "--verify-exec") {
      if (!value_of(&i, arg, &value)) return false;
      if (value == "off") {
        cli->verify_exec.mode = ExecVerifyMode::kOff;
      } else if (value == "on") {
        cli->verify_exec.mode = ExecVerifyMode::kOn;
      } else if (value == "required") {
        cli->verify_exec.mode = ExecVerifyMode::kRequired;
      } else {
        *exit_code = UsageError("--verify-exec expects on, off, or required, got '" +
                                value + "'");
        return false;
      }
    } else if (arg == "--verify-seed") {
      if (!value_of(&i, arg, &value)) return false;
      if (!IsAllDigits(value) || value.size() > 18) {
        *exit_code = UsageError("--verify-seed expects a number, got '" + value + "'");
        return false;
      }
      cli->verify_exec.seed = std::stoull(value);
    } else if (arg == "--explain") {
      if (!value_of(&i, arg, &value)) return false;
      const ApInfo* info = FindApInfoByName(Trim(value));
      if (info == nullptr) {
        *exit_code = UsageError("--explain: unknown rule '" + value +
                                "' (see --rules for the catalog)");
        return false;
      }
      RuleRegistry registry = RuleRegistry::Default();
      const Rule* rule = registry.FindRule(info->type);
      std::printf("%s  (category: %s)\n", info->name, CategoryName(info->category));
      std::printf("  impact:%s%s%s%s%s\n", info->performance ? " performance" : "",
                  info->maintainability ? " maintainability" : "",
                  info->data_amplification ? " data-amplification" : "",
                  info->data_integrity ? " data-integrity" : "",
                  info->accuracy ? " accuracy" : "");
      std::printf("  detection: %s\n",
                  rule != nullptr &&
                          rule->query_scope() == QueryRuleScope::kStatementLocal
                      ? "statement-local (cached per unique statement)"
                      : "workload-sensitive (re-evaluated as the workload grows)");
      std::printf("  fix: %s\n", FixerContract(info->type));
      std::printf("  every mechanical rewrite climbs a tiered verification pipeline: "
                  "it must re-parse (tier 1),\n  re-analysis must no longer report the "
                  "anti-pattern (tier 2), and under --verify-exec the\n  rewrite must "
                  "execute to results equivalent to the original under the fixer's "
                  "declared\n  contract (tier 3); any failure demotes the fix to "
                  "guidance with the reason attached\n");
      *exit_code = 0;
      return false;
    } else if (arg == "--explain-all") {
      cli->explain_all = true;
    } else if (arg == "--color") {
      cli->color = true;
    } else if (arg == "--top") {
      if (!value_of(&i, arg, &value)) return false;
      // 9-digit cap keeps std::stoull comfortably in range.
      if (!IsAllDigits(value) || value.size() > 9) {
        *exit_code = UsageError("--top expects a number, got '" + value + "'");
        return false;
      }
      cli->top = static_cast<size_t>(std::stoull(value));
    } else if (arg == "--parallel") {
      if (!value_of(&i, arg, &value)) return false;
      if (!IsAllDigits(value) || value.size() > 4) {
        *exit_code = UsageError("--parallel expects a thread count, got '" + value + "'");
        return false;
      }
      cli->parallelism = std::stoi(value);
    } else if (arg == "--ingest-threads") {
      if (!value_of(&i, arg, &value)) return false;
      if (!IsAllDigits(value) || value.size() > 4) {
        *exit_code =
            UsageError("--ingest-threads expects a thread count, got '" + value + "'");
        return false;
      }
      cli->ingest_threads = std::stoi(value);
    } else if (arg == "--disable") {
      if (!value_of(&i, arg, &value)) return false;
      for (const auto& name : Split(value, ',')) {
        std::string trimmed(Trim(name));
        if (!trimmed.empty()) cli->disabled.push_back(std::move(trimmed));
      }
    } else if (arg.size() > 1 && arg[0] == '-' && arg != "-") {
      *exit_code = UsageError("unknown option '" + std::string(arg) + "'");
      return false;
    } else {
      cli->files.emplace_back(arg);
    }
  }
  return true;
}

std::string ImpactList(const ApInfo& info) {
  std::string out;
  auto add = [&](bool on, const char* label) {
    if (!on) return;
    if (!out.empty()) out += ", ";
    out += label;
  };
  add(info.performance, "performance");
  add(info.maintainability, "maintainability");
  add(info.data_amplification, "data-amplification");
  add(info.data_integrity, "data-integrity");
  add(info.accuracy, "accuracy");
  return out.empty() ? "—" : out;
}

const char* ScopeDescription(const Rule* rule) {
  return rule != nullptr && rule->query_scope() == QueryRuleScope::kStatementLocal
             ? "statement-local (analyzed once per unique statement, memoized)"
             : "workload-sensitive (re-evaluated as the workload grows)";
}

/// --explain-all: the whole 27-rule catalog. The md flavor IS docs/RULES.md —
/// CI regenerates it and fails on drift, so the rule reference can never fall
/// out of sync with the registry.
int ExplainAll(Format format) {
  RuleRegistry registry = RuleRegistry::Default();
  if (format == Format::kMarkdown) {
    std::printf(
        "<!-- GENERATED FILE - do not edit by hand.\n"
        "     Regenerate with: sqlcheck --explain-all --format md > docs/RULES.md\n"
        "     CI regenerates this file and fails the build on any diff. -->\n\n");
    std::printf("# Rule Reference\n\n");
    std::printf(
        "All %d anti-pattern rules, grouped by catalog category. **Slug** is the\n"
        "stable machine identifier used as the SARIF rule id; **Name** is the\n"
        "display name accepted by `--disable` and `--explain`. Detection scope\n"
        "explains the incremental-analysis cost model: statement-local rules are\n"
        "memoized per unique statement, workload-sensitive rules re-run as\n"
        "context accumulates. Every mechanical fix climbs a tiered verification\n"
        "pipeline: it must re-parse (tier 1), re-analysis must no longer report\n"
        "the anti-pattern (tier 2), and under `--verify-exec` the rewrite must\n"
        "execute to results equivalent to the original on an ephemeral seeded\n"
        "database, judged under the fixer's declared equivalence contract\n"
        "(tier 3). Any failure demotes the fix to guidance with the reason\n"
        "attached.\n",
        kAntiPatternCount);
    constexpr ApCategory kCategories[] = {ApCategory::kLogicalDesign,
                                          ApCategory::kPhysicalDesign,
                                          ApCategory::kQuery, ApCategory::kData};
    for (ApCategory category : kCategories) {
      std::printf("\n## %s\n", CategoryName(category));
      for (int t = 0; t < kAntiPatternCount; ++t) {
        const ApInfo& info = InfoFor(static_cast<AntiPattern>(t));
        if (info.category != category) continue;
        const Rule* rule = registry.FindRule(info.type);
        std::printf("\n### %s\n\n", info.name);
        std::printf("- **Slug:** `%s`\n", ApSlug(info.type).c_str());
        std::printf("- **Impact:** %s\n", ImpactList(info).c_str());
        std::printf("- **Detection:** %s\n", ScopeDescription(rule));
        std::printf("- **Fix:** %s\n", FixerContract(info.type));
      }
    }
    return 0;
  }
  for (int t = 0; t < kAntiPatternCount; ++t) {
    const ApInfo& info = InfoFor(static_cast<AntiPattern>(t));
    const Rule* rule = registry.FindRule(info.type);
    std::printf("%s  (category: %s)\n", info.name, CategoryName(info.category));
    std::printf("  slug: %s\n", ApSlug(info.type).c_str());
    std::printf("  impact: %s\n", ImpactList(info).c_str());
    std::printf("  detection: %s\n", ScopeDescription(rule));
    std::printf("  fix: %s\n\n", FixerContract(info.type));
  }
  return 0;
}

/// Streams findings for one just-checked statement (text flavor).
void PrintDeltaText(const Report& report, size_t statement_index, bool color) {
  const char* reset = color ? "\x1b[0m" : "";
  const char* bold = color ? "\x1b[1m" : "";
  for (const Finding& f : report.findings) {
    const Detection& d = f.ranked.detection;
    std::cout << "stmt " << statement_index << "  " << bold << ApName(d.type) << reset
              << " (score " << f.ranked.score << ")";
    if (!d.table.empty()) {
      std::cout << " at " << d.table;
      if (!d.column.empty()) std::cout << "." << d.column;
    }
    std::cout << ": " << d.message << "\n";
  }
  std::cout.flush();
}

/// Streams findings for one just-checked statement (NDJSON flavor: one
/// compact object per statement).
void PrintDeltaJson(const Report& report, size_t statement_index,
                    std::string_view sql) {
  std::cout << "{\"statement\": " << statement_index << ", \"sql\": \""
            << JsonEscape(sql) << "\", \"findings\": [";
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    const Detection& d = f.ranked.detection;
    std::cout << (i == 0 ? "" : ", ") << "{\"rule\": \"" << JsonEscape(ApName(d.type))
              << "\", \"score\": " << f.ranked.score << ", \"table\": \""
              << JsonEscape(d.table) << "\", \"column\": \"" << JsonEscape(d.column)
              << "\", \"message\": \"" << JsonEscape(d.message) << "\"}";
  }
  std::cout << "]}" << std::endl;  // flush per statement: monitors tail this
}

/// --follow loop: accumulate lines, peel off completed statements, and
/// Check each against the session. Statement completeness comes from the
/// splitter itself (a top-level terminating `;`), so a `;` inside a
/// BEGIN...END trigger body or a string literal keeps buffering instead of
/// mis-analyzing a fragment. Returns the number of findings streamed out.
size_t FollowStream(std::istream& in, AnalysisSession* session, const CliOptions& cli) {
  size_t findings = 0;
  std::string buffer;
  std::string line;
  auto drain = [&](bool flush) {
    if (Trim(buffer).empty()) return;
    bool terminated = false;
    std::vector<std::string_view> pieces = sql::SplitStatements(buffer, &terminated);
    size_t complete = flush || terminated ? pieces.size()
                      : pieces.empty()   ? 0
                                         : pieces.size() - 1;
    for (size_t p = 0; p < complete; ++p) {
      Report report = session->Check(pieces[p]);
      findings += report.findings.size();
      size_t index = session->statement_count() - 1;
      if (cli.format == Format::kJson) {
        PrintDeltaJson(report, index, pieces[p]);
      } else {
        PrintDeltaText(report, index, cli.color);
      }
    }
    // Keep the unterminated fragment (newline restored so a trailing `--`
    // comment cannot swallow the next line).
    // Keep the unterminated fragment. The pieces are views into `buffer`,
    // so materialize the tail before overwriting it.
    std::string remainder =
        complete < pieces.size() ? std::string(pieces.back()) + "\n" : std::string();
    buffer = std::move(remainder);
  };
  while (std::getline(in, line)) {
    buffer += line;
    buffer += '\n';
    // Any ';' in the buffer may have completed a statement — even
    // mid-line, with trailing comments or a second fragment after it. The
    // splitter's `complete` flag rejects the false positives (';' inside
    // strings or open BEGIN...END bodies), at the cost of re-lexing the
    // retained buffer; that buffer only spans the current open statement.
    if (buffer.find(';') == std::string::npos) continue;
    drain(/*flush=*/false);
  }
  drain(/*flush=*/true);
  return findings;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string_view(argv[1]) == "scan") {
    return RunScanCommand(argc, argv);
  }
  CliOptions cli;
  int exit_code = 0;
  if (!ParseArgs(argc, argv, &cli, &exit_code)) return exit_code;

  // Validate --disable against the known anti-pattern names up front.
  for (const auto& name : cli.disabled) {
    if (FindApInfoByName(name) == nullptr) {
      return UsageError("--disable: unknown rule '" + name +
                        "' (see --rules for the catalog)");
    }
  }
  if (cli.explain_all) return ExplainAll(cli.format);
  if (cli.format == Format::kMarkdown) {
    return UsageError("--format md is only meaningful with --explain-all");
  }
  if (cli.follow && cli.format == Format::kSarif) {
    return UsageError("--follow supports text and json output, not sarif");
  }
  if (cli.follow && !cli.apply_path.empty()) {
    return UsageError("--apply requires batch mode, not --follow");
  }

  SqlCheckOptions options;
  options.parallelism = cli.parallelism;
  options.ingest_parallelism = cli.ingest_threads;
  options.disabled_rules = cli.disabled;
  options.verify_exec = cli.verify_exec;
  AnalysisSession session(options);
  if (!session.status().ok()) {
    std::cerr << "sqlcheck: " << session.status().message() << "\n";
    return 2;
  }

  bool use_stdin = cli.files.empty() || (cli.files.size() == 1 && cli.files[0] == "-");

  if (cli.follow) {
    size_t findings = 0;
    if (use_stdin) {
      findings = FollowStream(std::cin, &session, cli);
    } else {
      for (const auto& path : cli.files) {
        std::ifstream in(path);
        if (!in) {
          std::cerr << "sqlcheck: cannot open '" << path << "'\n";
          return 2;
        }
        findings += FollowStream(in, &session, cli);
      }
    }
    return findings > 0 ? 1 : 0;
  }

  // Batch: ingest everything, snapshot once. The raw workload text is kept
  // for SARIF fix replacement regions (--fixes).
  std::string workload;
  if (use_stdin) {
    std::ostringstream content;
    content << std::cin.rdbuf();
    workload = content.str();
    session.AddScript(workload);
  } else {
    for (const auto& path : cli.files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "sqlcheck: cannot open '" << path << "'\n";
        return 2;
      }
      std::ostringstream content;
      content << in.rdbuf();
      std::string text = content.str();
      session.AddScript(text);
      workload += text;
    }
  }

  Report report = session.Snapshot();
  EmitOptions emit;
  emit.max_findings = cli.top;
  emit.include_fixes = cli.fixes;
  if (cli.files.size() == 1 && cli.files[0] != "-") {
    emit.artifact_uri = cli.files[0];
    if (cli.fixes) emit.artifact_content = workload;
  }
  switch (cli.format) {
    case Format::kText: std::cout << report.ToText(cli.top, cli.color); break;
    case Format::kJson: std::cout << ToJson(report, emit); break;
    case Format::kSarif: std::cout << ToSarif(report, emit); break;
    case Format::kMarkdown: break;  // rejected above: md pairs with --explain-all
  }

  if (cli.verify_exec.mode != ExecVerifyMode::kOff) {
    // Tier telemetry goes to stderr so the report stream stays parseable.
    const VerifyStats& vs = session.verify_stats();
    std::cerr << "sqlcheck: verify tiers — exec: " << vs.tier_exec
              << ", analysis: " << vs.tier_analysis << ", parse: " << vs.tier_parse
              << ", demoted: " << vs.demoted << " (exec runs: " << vs.exec_runs
              << ", infeasible: " << vs.exec_infeasible
              << ", memo hits: " << vs.memo_hits << "/"
              << (vs.memo_hits + vs.memo_misses) << ")\n";
  }

  if (!cli.apply_path.empty()) {
    size_t applied = 0;
    std::string rewritten = ApplyFixes(session.context(), report, &applied);
    std::ofstream out(cli.apply_path);
    if (!out) {
      std::cerr << "sqlcheck: cannot write '" << cli.apply_path << "'\n";
      return 2;
    }
    out << rewritten;
    std::cerr << "sqlcheck: wrote " << cli.apply_path << " (" << applied
              << " statement(s) rewritten)\n";
  }
  return report.empty() ? 0 : 1;
}
